"""Bill of materials: parallel associations and part explosion.

The paper's CAD/CAM motivation, on a gearbox: the schema has TWO
associations between Part and Usage (``parent`` and ``child`` — the
``A_ij(k)`` of §3.1), so every navigation must disambiguate with the
``[R(A,B)]`` annotation the algebra provides.

Run:  python examples/bill_of_materials.py
"""

from repro import ref
from repro.core.expression import AssocSpec, Associate, NonAssociate
from repro.core.predicates import value_equals
from repro.datasets import parts_explosion
from repro.engine.database import Database
from repro.viz import render_set


def explode(db, part_name, levels):
    """Navigate `levels` parent→child hops starting from one part name."""
    expr = ref("PartName").where(value_equals("PartName", part_name)) * ref("Part")
    for _ in range(levels):
        expr = Associate(expr, ref("Usage"), AssocSpec("Part", "Usage", "parent"))
        expr = Associate(expr, ref("Part"), AssocSpec("Usage", "Part", "child"))
    return db.evaluate(expr)


def main() -> None:
    dataset = parts_explosion()
    db = Database.from_dataset(dataset)

    print("=== the bill of materials ===")
    bom = db.evaluate(
        "pi(PartName * Part *[parent(Part, Usage)] Usage * Quantity)"
        "[PartName, Quantity; PartName:Quantity]"
    )
    print(render_set(bom, "(parent name, quantity) lines:"))

    print("\n=== ambiguity is rejected, as §3.1 requires ===")
    try:
        db.evaluate("Part * Usage")
    except Exception as exc:
        print(f"Part * Usage →  {exc}")

    print("\n=== one-level explosion of the gearbox ===")
    exploded = explode(db, "gearbox", 1)
    # Join every part's name back in (closure: the evaluated result
    # re-enters a new expression; the join finds ANY Part in the pattern,
    # so both parent and component names arrive).
    from repro.core.expression import Literal

    named_expr = ref("PartName") * Literal(exploded, "exploded", head="Part")
    result = db.evaluate(named_expr)
    names = {
        db.graph.value(v)
        for p in result
        for v in p.instances_of("PartName")
    }
    print("components:", sorted(names - {"gearbox"}))

    print("\n=== parts used nowhere (NonAssociate over the child role) ===")
    unused = NonAssociate(
        ref("Part"), ref("Usage"), AssocSpec("Part", "Usage", "child")
    )
    named = (ref("PartName") * unused).project(["PartName"])
    print(
        "never a child:",
        sorted(db.values(db.evaluate(named), "PartName")),
        " (the root assembly and the spare)",
    )

    print("\n=== where is the shaft used, and how many each time? ===")
    rows = db.evaluate(
        "pi(Quantity * Usage *[child(Usage, Part)] Part *"
        " PartName)[Quantity, PartName; Quantity:PartName]"
    )
    shaft = [
        p
        for p in rows
        if any(db.graph.value(v) == "shaft" for v in p.instances_of("PartName"))
    ]
    print(render_set(type(rows)(shaft)))


if __name__ == "__main__":
    main()
