"""Query by pattern: drawing Figure 3 as a template and running it.

§2's user model is visual: draw a class-level pattern, label the edges
with operators, mark AND/OR at the branch points, and let the system
translate the drawing into the algebra.  This example builds Figure 3 as
a :class:`PatternTemplate`, shows the compiled A-algebra expression, runs
it, and cross-checks the result with the direct subgraph matcher.

Run:  python examples/query_by_pattern.py
"""

from repro.core.predicates import value_equals
from repro.core.template import PatternTemplate, match
from repro.datasets import university
from repro.engine.database import Database
from repro.viz import render_set


def figure3_template() -> PatternTemplate:
    """Figure 3, as data::

        Name[CIS]—Department—Course—Section⟨OR⟩
            ├─*─ Teacher—Faculty—Specialty
            └─*─ Student⟨AND⟩
                   ├─*─ GPA
                   └─*─ EarnedCredit
    """
    section = PatternTemplate.node("Section", branch="or")
    section.link(PatternTemplate.node("Teacher").chain("Faculty", "Specialty"))
    student = PatternTemplate.node("Student")  # default branch: AND
    student.link("GPA").link("EarnedCredit")
    section.link(student)

    root = PatternTemplate.node("Name", value_equals("Name", "CIS"))
    department = PatternTemplate.node("Department")
    course = PatternTemplate.node("Course")
    course.link(section)
    department.link(course)
    root.link(department)
    return root


def main() -> None:
    dataset = university()
    db = Database.from_dataset(dataset)
    template = figure3_template()

    print("=== the template, compiled to the A-algebra ===")
    expr = template.compile(db.schema)
    print(expr)

    print("\n=== evaluated ===")
    result = db.evaluate(expr)
    print(render_set(result))
    print("specialties:", sorted(db.values(result, "Specialty")))
    print("GPAs:       ", sorted(db.values(result, "GPA")))

    print("\n=== cross-checked against the direct subgraph matcher ===")
    matched = match(template, db.graph)
    print("algebra == matcher:", result == matched)

    print("\n=== a non-association template (A-Complement edges) ===")
    # "|" pairs each section with every room it does NOT use — the raw
    # complement-edge view.  (The stronger "sections with no room at all"
    # is NonAssociate, a whole-operand operator — see Query 4 in
    # examples/university_tour.py.)
    not_using = PatternTemplate.node("Section").link("Room#", mode="|")
    print("compiled:", not_using.compile(db.schema))
    found = match(not_using, db.graph)
    print(f"{len(found)} (section, unused-room) pairs; e.g.:")
    print("\n".join(render_set(found).splitlines()[:4]))


if __name__ == "__main__":
    main()
