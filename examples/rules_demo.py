"""Knowledge rules: constraints-as-patterns over the university database.

The OSAM* context of the paper pairs the algebra with a rule language:
association semantics are "declared by rules which are then processed by a
rule processing component".  This demo declares two rules whose conditions
are the paper's own Query 4 patterns:

* ``room-required`` — corrective: a section inserted without a room gets
  the default room assigned automatically;
* ``teacher-watch`` — monitoring: unlinking a teacher from its last
  section logs a staffing violation.

Run:  python examples/rules_demo.py
"""

from repro import ref
from repro.datasets import university
from repro.engine.database import Database
from repro.rules import Rule, RuleEngine


def main() -> None:
    dataset = university()
    db = Database.from_dataset(dataset)
    engine = RuleEngine(db)
    log: list[str] = []

    def assign_default_room(database, event, result):
        default = database.insert_value("Room#", "R-DEFAULT")
        for pattern in result:
            for section in pattern.instances_of("Section"):
                database.link(section, default)
                log.append(f"assigned {default.label} to {section.label}")

    engine.register(
        Rule.make(
            "room-required",
            ref("Section") ^ ref("Room#"),
            assign_default_room,
            on=["insert"],
            classes=["Section"],
            description="every section must have a room",
        )
    )

    engine.register(
        Rule.make(
            "teacher-watch",
            ref("Section") ^ ref("Teacher"),
            lambda database, event, result: log.append(
                f"WARNING: {len(result)} staffing pattern(s) after {event.kind}"
            ),
            on=["unlink"],
            classes=["Section", "Teacher"],
            description="report sections losing their teacher",
        )
    )

    print("=== initial constraint check ===")
    for name, fires in engine.check_all().items():
        print(f"  {name}: {'VIOLATED' if fires else 'ok'}")
    print(
        "(the paper's own dataset ships section 102 without a room and\n"
        " section 201 without a teacher — both conditions fire)"
    )

    print("\n=== inserting a new section triggers the corrective rule ===")
    created = db.insert("Section")
    print(f"inserted {created['Section'].label}")
    for line in log:
        print(" ", line)
    log.clear()

    print("\n=== unlinking a teacher triggers the watcher ===")
    teachers = db.schema.resolve("Teacher", "Section")
    newton = dataset.people["newton"]["Teacher"]
    section = next(iter(sorted(db.graph.partners(teachers, newton))))
    db.unlink(newton, section)
    for line in log:
        print(" ", line)

    print("\n=== firing history ===")
    for firing in engine.firings:
        print(" ", firing)

    print("\n=== remaining violations ===")
    print(" ", engine.violations())


if __name__ == "__main__":
    main()
