"""University tour: the paper's Figures 1–3 and Queries 1–5, end to end.

Prints the schema graph, then runs every query of the paper both as an
algebra expression and as OQL text, showing the resulting association-sets
in the paper's figure notation.

Run:  python examples/university_tour.py
"""

from repro.core.expression import EvalTrace
from repro.datasets import university
from repro.engine.database import Database
from repro.viz import render_set, schema_to_dot

QUERIES = {
    "Query 1 — SS#s of teaching assistants": (
        "pi(TA * Grad * Student * Person * SS#)[SS#]",
        "SS#",
    ),
    "Query 3 — students teaching in their major department": (
        """pi(Student * Person * Name & Student * Department
            & Student * Grad * TA * Teacher * Department)[Name]""",
        "Name",
    ),
    "Query 4 — sections with no room or no teacher": (
        "pi(Section# * (Section ! Room# + Section ! Teacher))[Section#]",
        "Section#",
    ),
    "Query 5 — students taking both 6010 and 6020": (
        """pi((Name * Person * Student * Enrollment * Course * Course#)
            /{Student} sigma(Course#)[Course# = 6010 or Course# = 6020])[Name]""",
        "Name",
    ),
}

QUERY_2 = """
pi(sigma(Name)[Name = 'CIS'] * Department * Course *
   (Section * Teacher * Faculty * Specialty
    + Section * (Student * GPA & Student * EarnedCredit)))
  [Section, Specialty, GPA, EarnedCredit;
   Section:Specialty, Section:GPA, Section:EarnedCredit]
"""


def main() -> None:
    dataset = university()
    db = Database.from_dataset(dataset)

    print("=== Figure 1: the schema graph (DOT excerpt) ===")
    dot = schema_to_dot(db.schema)
    print("\n".join(dot.splitlines()[:12]), "\n  ...")

    print("\n=== Figure 2 flavour: one object across the lattice ===")
    alice = dataset.people["alice"]
    print(
        "Alice's instances:",
        ", ".join(f"{cls}={iid.label}" for cls, iid in sorted(alice.items())),
    )

    for title, (oql, cls) in QUERIES.items():
        print(f"\n=== {title} ===")
        print("OQL:", " ".join(oql.split()))
        result = db.evaluate(oql)
        print("patterns:")
        print(render_set(result))
        print("values:", sorted(db.values(result, cls), key=str))

    print("\n=== Query 2 — the heterogeneous OR query (Figure 3) ===")
    print("OQL:", " ".join(QUERY_2.split()))
    trace = EvalTrace()
    result = db.compile(QUERY_2).evaluate(db.graph, trace)
    print("patterns (two shapes in ONE result — closure + heterogeneity):")
    print(render_set(result))
    print("specialties:", sorted(db.values(result, "Specialty")))
    print("GPAs:", sorted(db.values(result, "GPA")))
    print("\nevaluation trace (cardinality per operator):")
    print(trace.pretty())


if __name__ == "__main__":
    main()
