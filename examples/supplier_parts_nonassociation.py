"""Non-association: the §1 suppliers-and-parts motivating example.

The paper's complaint about GEM/POSTQUEL/ARIEL/functional languages: they
can navigate ``Suppliers.Parts`` to get the pairs that ARE associated, but
have no construct for "s1 does not supply p2 and s2 does not supply p1".
The A-algebra has two: A-Complement (all non-associated pairs) and
NonAssociate (mutually non-associated patterns).  This example shows both,
next to the plain Associate navigation.

Run:  python examples/supplier_parts_nonassociation.py
"""

from repro import ref
from repro.datasets import supplier_parts
from repro.engine.database import Database
from repro.viz import render_set


def main() -> None:
    dataset = supplier_parts()
    db = Database.from_dataset(dataset)

    def names(result, cls):
        return sorted(db.values(result, cls))

    print("=== the world ===")
    pairs = db.evaluate(ref("SName") * ref("Supplier") * ref("Part") * ref("PName"))
    print(render_set(pairs, "supply relationships:"))

    print("\n=== 'dot' navigation (what GEM/POSTQUEL can do): Associate ===")
    supplies = db.evaluate(ref("Supplier") * ref("Part"))
    print(render_set(supplies))

    print("\n=== what they cannot say #1: A-Complement ===")
    print("every (supplier, part) pair NOT in the supply relation:")
    non_pairs = db.evaluate(ref("Supplier") | ref("Part"))
    print(render_set(non_pairs))

    print("\n=== what they cannot say #2: NonAssociate ===")
    print("suppliers and parts with NO supply relationship to the other side:")
    mutual = db.evaluate(ref("Supplier") ^ ref("Part"))
    print(render_set(mutual))
    print(
        "(p3, the flywheel, has no supplier at all — every supplier supplies\n"
        " something, so only the complement pairs with p3 survive)"
    )

    print("\n=== named version, in OQL ===")
    oql = "pi(PName * (Part ! Supplier))[PName]"
    result = db.evaluate(oql)
    print(f"{oql}\n  parts nobody supplies: {names(result, 'PName')}")

    oql = "pi(SName * (Supplier | Part) * PName)[SName, PName; SName:PName]"
    result = db.evaluate(oql)
    print(f"\n{oql}")
    print(render_set(result, "  (supplier-name, part-name) NON-supply pairs:"))


if __name__ == "__main__":
    main()
