"""Query optimization: the paper's §4 / Figure 10 walkthrough.

Takes ``expr = A * (B*E*F + B * (C*D*H • C*G))``, explores its rewrite
closure with the law-based optimizer, shows the paper's three rewrite
steps among the candidates, verifies that every candidate evaluates to the
same association-set, and compares estimated vs measured work.

Run:  python examples/query_optimization.py
"""

import time

from repro.core.expression import EvalTrace, Intersect, ref
from repro.datagen import figure10_dataset
from repro.optimizer import Optimizer


def original_expr():
    return ref("A") * (
        ref("B") * ref("E") * ref("F")
        + ref("B") * Intersect(ref("C") * ref("D") * ref("H"), ref("C") * ref("G"))
    )


def paper_final_expr():
    return ref("A") * (ref("B") * ref("E") * ref("F")) + Intersect(
        ref("A") * (ref("B") * (ref("C") * ref("D") * ref("H"))),
        ref("A") * (ref("B") * (ref("C") * ref("G"))),
        ["A", "B", "C"],
    )


def timed_eval(expr, graph):
    trace = EvalTrace()
    started = time.perf_counter()
    result = expr.evaluate(graph, trace)
    elapsed = time.perf_counter() - started
    return result, elapsed, trace.total_patterns


def main() -> None:
    ds = figure10_dataset(extent_size=30, density=0.12, seed=7)
    graph = ds.graph
    optimizer = Optimizer(graph, max_candidates=400)

    print("=== the Figure 10 expression ===")
    expr = original_expr()
    print(expr)

    print("\n=== rewrite closure (cheapest candidates by estimated cost) ===")
    print(optimizer.explain(expr, top=6))

    print("\n=== the paper's final form is among the equivalents ===")
    final = paper_final_expr()
    candidates = {c.expr: c for c in optimizer.equivalents(expr)}
    entry = candidates.get(final)
    print("found:", entry is not None)
    if entry is not None:
        print("derivation:", " → ".join(entry.derivation))

    print("\n=== all forms agree; measured work differs ===")
    reference, base_time, base_work = timed_eval(expr, graph)
    print(
        f"original: {len(reference):5d} result patterns, "
        f"{base_work:7d} intermediate patterns, {base_time * 1e3:8.2f} ms"
    )
    final_result, final_time, final_work = timed_eval(final, graph)
    assert final_result == reference
    print(
        f"paper's:  {len(final_result):5d} result patterns, "
        f"{final_work:7d} intermediate patterns, {final_time * 1e3:8.2f} ms"
    )
    best = optimizer.optimize(expr)
    best_result, best_time, best_work = timed_eval(best.expr, graph)
    assert best_result == reference
    print(
        f"chosen:   {len(best_result):5d} result patterns, "
        f"{best_work:7d} intermediate patterns, {best_time * 1e3:8.2f} ms"
    )
    print("\nchosen plan:", best.expr)
    print("via:", " → ".join(best.derivation) or "(original)")


if __name__ == "__main__":
    main()
