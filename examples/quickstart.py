"""Quickstart: define a schema, populate objects, query with the A-algebra.

Builds a tiny project-management database from scratch and runs algebra
queries over it three ways: the Python expression DSL, raw operators, and
OQL text.

Run:  python examples/quickstart.py
"""

from repro import Database, SchemaGraph, ref
from repro.core.predicates import value_equals
from repro.viz import render_set


def build_database() -> Database:
    """A tiny Engineer—Project—Deadline world."""
    schema = SchemaGraph("projects")
    schema.add_entity_class("Engineer")
    schema.add_entity_class("Project")
    schema.add_domain_class("EName")
    schema.add_domain_class("PName")
    schema.add_domain_class("Deadline")
    schema.add_association("Engineer", "Project", "works_on")
    schema.add_association("Engineer", "EName")
    schema.add_association("Project", "PName")
    schema.add_association("Project", "Deadline")
    schema.validate()

    db = Database(schema)
    engineers = {}
    for name in ("Ada", "Grace", "Edsger"):
        eng = db.insert("Engineer")["Engineer"]
        db.link(eng, db.insert_value("EName", name))
        engineers[name] = eng
    projects = {}
    for pname, deadline in (("compiler", "Q1"), ("kernel", "Q2"), ("proofs", "Q3")):
        proj = db.insert("Project")["Project"]
        db.link(proj, db.insert_value("PName", pname))
        db.link(proj, db.insert_value("Deadline", deadline))
        projects[pname] = proj

    db.link(engineers["Ada"], projects["compiler"], "works_on")
    db.link(engineers["Ada"], projects["kernel"], "works_on")
    db.link(engineers["Grace"], projects["compiler"], "works_on")
    # Edsger works on nothing — the NonAssociate demo below finds him.
    return db


def main() -> None:
    db = build_database()

    print("=== 1. Associate chain (expression DSL) ===")
    # Engineers with their projects' deadlines: EName—Engineer—Project—Deadline.
    expr = ref("EName") * ref("Engineer") * ref("Project") * ref("Deadline")
    result = db.evaluate(expr)
    print(render_set(result, f"{expr}  →"))

    print("\n=== 2. A-Select + A-Project ===")
    q1_projects = (
        ref("Engineer") * ref("Project") * ref("Deadline").where(
            value_equals("Deadline", "Q1")
        )
    ).project(["Engineer"])
    names = (
        ref("EName")
        * q1_projects.operand  # reuse the unprojected chain
    ).project(["EName"])
    print("engineers on Q1 projects:", sorted(db.values(db.evaluate(names), "EName")))

    print("\n=== 3. NonAssociate: who works on nothing? ===")
    idle = (ref("EName") * (ref("Engineer") ^ ref("Project"))).project(["EName"])
    print("idle engineers:", sorted(db.values(db.evaluate(idle), "EName")))

    print("\n=== 4. The same in OQL text ===")
    oql = "pi(EName * (Engineer ! Project))[EName]"
    result = db.evaluate(oql)
    print(f"{oql}\n  →", sorted(db.values(result, "EName")))

    print("\n=== 5. Closure: feed a result back into the algebra ===")
    from repro.core.expression import Literal

    busy = db.evaluate(ref("Engineer") * ref("Project"))
    named = Literal(busy, "busy-pairs", head="Engineer") * ref("EName")
    result = db.evaluate(named)
    print("busy engineer/project pairs with names:")
    print(render_set(result))


if __name__ == "__main__":
    main()
