"""Render every Figure 8 operator example in the paper's notation.

For each of the seven worked examples (8a–8g) this prints the operands,
the operator applied, and the resulting association-set, using the figure
glyphs (``——`` inter, ``- -`` complement, ``~~``/``~/~`` derived).  The
outputs are the same association-sets the regression tests assert.

Run:  python examples/paper_figures.py
"""

from repro.core.assoc_set import AssociationSet
from repro.core.edges import complement, inter
from repro.core.operators import (
    a_complement,
    a_difference,
    a_divide,
    a_intersect,
    a_project,
    associate,
    non_associate,
)
from repro.core.pattern import Pattern
from repro.datasets import figure7
from repro.viz import render_side_by_side, render_set


def P(*parts):
    return Pattern.build(*parts)


def show(title, operands, result):
    print(f"\n=== {title} ===")
    for label, aset in operands:
        print(render_set(aset, f"{label}:"))
    print(render_set(result, "result:"))


def main() -> None:
    f = figure7()
    g = f.graph

    print("The Figure 7 domain (regular edges):")
    for assoc in (f.ab, f.bc, f.cd):
        pairs = ", ".join(f"{a.label}—{b.label}" for a, b in sorted(g.edges(assoc)))
        print(f"  {assoc}: {pairs}")

    # Figure 8a — Associate.
    alpha = AssociationSet([P(inter(f.a1, f.b1)), P(f.a2), P(inter(f.a3, f.b2))])
    beta = AssociationSet(
        [P(inter(f.c1, f.d1)), P(inter(f.c2, f.d2)), P(f.c3), P(inter(f.c4, f.d3))]
    )
    show(
        "Figure 8a: α *[R(B,C)] β",
        [("α", alpha), ("β", beta)],
        associate(alpha, beta, g, f.bc),
    )

    # Figure 8b — A-Complement.
    alpha = AssociationSet([P(inter(f.a1, f.b1)), P(f.a2), P(inter(f.a4, f.b3))])
    beta = AssociationSet([P(inter(f.c1, f.d1)), P(inter(f.c2, f.d2)), P(f.c3)])
    show(
        "Figure 8b: α |[R(B,C)] β",
        [("α", alpha), ("β", beta)],
        a_complement(alpha, beta, g, f.bc),
    )

    # Figure 8c — A-Project.
    alpha = AssociationSet(
        [
            P(inter(f.a1, f.b1), inter(f.b1, f.c1), complement(f.c1, f.d1)),
            P(inter(f.a1, f.b1), inter(f.b1, f.c2), complement(f.c2, f.d2)),
            P(inter(f.b2, f.c3), inter(f.c3, f.d3)),
        ]
    )
    show(
        "Figure 8c: Π(α)[(A*B, D); (B:D)]",
        [("α", alpha)],
        a_project(alpha, ["A*B", "D"], ["B:D"]),
    )

    # Figure 8d — NonAssociate.
    alpha = AssociationSet([P(inter(f.a1, f.b1)), P(f.a2), P(inter(f.a3, f.b2))])
    beta = AssociationSet(
        [P(inter(f.c2, f.d2)), P(inter(f.c4, f.d3)), P(f.c3), P(f.d4)]
    )
    show(
        "Figure 8d: α ![R(B,C)] β",
        [("α", alpha), ("β", beta)],
        non_associate(alpha, beta, g, f.bc),
    )

    # Figure 8e — A-Intersect.
    alpha = AssociationSet(
        [
            P(inter(f.b1, f.c2), inter(f.c2, f.d1)),
            P(inter(f.a1, f.b1), inter(f.b1, f.c2)),
            P(inter(f.a3, f.b2)),
            P(inter(f.c4, f.d4)),
        ]
    )
    beta = AssociationSet(
        [
            P(inter(f.b1, f.c2), inter(f.c2, f.d2)),
            P(inter(f.b1, f.c2), inter(f.c2, f.d3)),
            P(inter(f.b1, f.c1), inter(f.c1, f.d3)),
            P(inter(f.c4, f.d4)),
        ]
    )
    show(
        "Figure 8e: α •{B,C} β",
        [("α", alpha), ("β", beta)],
        a_intersect(alpha, beta, ["B", "C"]),
    )

    # Figure 8f — A-Difference.
    alpha = AssociationSet(
        [
            P(inter(f.a1, f.b1), inter(f.b1, f.c1)),
            P(inter(f.a3, f.b2), inter(f.b2, f.c2)),
            P(inter(f.a1, f.b1), inter(f.b1, f.c2)),
        ]
    )
    beta = AssociationSet([P(inter(f.a1, f.b1)), P(inter(f.a3, f.b3))])
    show(
        "Figure 8f: α - β",
        [("α", alpha), ("β", beta)],
        a_difference(alpha, beta),
    )

    # Figure 8g — A-Divide.
    alpha = AssociationSet(
        [
            P(inter(f.a1, f.b1), inter(f.b1, f.c1)),
            P(inter(f.b1, f.c2), inter(f.c2, f.d1)),
            P(inter(f.b1, f.c4), inter(f.c4, f.d4)),
        ]
    )
    beta = AssociationSet(
        [P(f.d1), P(inter(f.a1, f.b1)), P(inter(f.b1, f.c2)), P(inter(f.c4, f.d4))]
    )
    show(
        "Figure 8g: α ÷{B} β",
        [("α", alpha), ("β", beta)],
        a_divide(alpha, beta, ["B"]),
    )

    # Bonus: side-by-side, Figure 8a style.
    print("\n=== Figure 8a, side by side ===")
    alpha = AssociationSet([P(inter(f.a1, f.b1)), P(f.a2), P(inter(f.a3, f.b2))])
    beta = AssociationSet(
        [P(inter(f.c1, f.d1)), P(inter(f.c2, f.d2)), P(f.c3), P(inter(f.c4, f.d3))]
    )
    print(
        render_side_by_side(
            alpha, associate(alpha, beta, g, f.bc), "α", "α *[R(B,C)] β"
        )
    )


if __name__ == "__main__":
    main()
