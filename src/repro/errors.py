"""Exception hierarchy for the A-algebra reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so a
caller can catch library failures without catching unrelated exceptions.
The sub-hierarchy mirrors the subsystems of the library: schema definition,
object graph population, algebra evaluation, OQL parsing, and rule
processing.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "UnknownClassError",
    "UnknownAssociationError",
    "AmbiguousAssociationError",
    "DuplicateDefinitionError",
    "ObjectGraphError",
    "UnknownInstanceError",
    "InvalidEdgeError",
    "AlgebraError",
    "PatternError",
    "DisconnectedPatternError",
    "EvaluationError",
    "PredicateError",
    "ProjectionError",
    "OQLError",
    "OQLSyntaxError",
    "OQLCompileError",
    "RuleError",
    "StorageError",
    "ViewError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class SchemaError(ReproError):
    """A schema-graph definition or lookup failed."""


class UnknownClassError(SchemaError):
    """A class name does not exist in the schema graph."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown class: {name!r}")
        self.name = name


class UnknownAssociationError(SchemaError):
    """No association exists between the two classes (with the given name)."""

    def __init__(self, left: str, right: str, name: str | None = None) -> None:
        suffix = f" named {name!r}" if name is not None else ""
        super().__init__(f"no association between {left!r} and {right!r}{suffix}")
        self.left = left
        self.right = right
        self.assoc_name = name


class AmbiguousAssociationError(SchemaError):
    """More than one association exists and the caller did not disambiguate."""

    def __init__(self, left: str, right: str, names: list[str]) -> None:
        super().__init__(
            f"ambiguous association between {left!r} and {right!r}: "
            f"candidates {sorted(names)!r}; pass an explicit association name"
        )
        self.left = left
        self.right = right
        self.names = list(names)


class DuplicateDefinitionError(SchemaError):
    """A class or association with the same identity was defined twice."""


class ObjectGraphError(ReproError):
    """An object-graph (extensional database) operation failed."""


class UnknownInstanceError(ObjectGraphError):
    """An IID was referenced that is not present in the object graph."""


class InvalidEdgeError(ObjectGraphError):
    """An edge was added whose endpoints do not match its association."""


class AlgebraError(ReproError):
    """An algebra-level operation failed."""


class PatternError(AlgebraError):
    """An association pattern was constructed or combined illegally."""


class DisconnectedPatternError(PatternError):
    """A pattern was required to be connected but is not."""


class EvaluationError(AlgebraError):
    """An algebra expression could not be evaluated."""


class PredicateError(AlgebraError):
    """An A-Select predicate failed to evaluate."""


class ProjectionError(AlgebraError):
    """An A-Project specification is invalid for the operand."""


class OQLError(ReproError):
    """Base class for OQL front-end failures."""


class OQLSyntaxError(OQLError):
    """The OQL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class OQLCompileError(OQLError):
    """The OQL parse tree could not be compiled against the schema."""


class RuleError(ReproError):
    """A knowledge rule is invalid or failed during triggering."""


class StorageError(ReproError):
    """Serialization or deserialization of a database failed."""


class ViewError(ReproError):
    """A materialized-view definition or maintenance operation failed."""
