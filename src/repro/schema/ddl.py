"""A textual schema-definition language (DDL) for schema graphs.

The OSAM* context of the paper defines schemas with a declarative language
(an "Intelligent Schema Design Tool" is cited); this module provides a
small equivalent so that whole databases — not just queries — have a
textual form::

    schema university

    entity Person, Student, Teacher
    domain SS#, Name

    isa Student : Person
    isa Teacher : Person

    assoc Person -- SS#
    assoc Person -- Name
    assoc Part -- Usage as parent      // named (A_ij(k)) edges
    assoc Part -- Usage as child

Grammar (line-oriented; ``//`` starts a comment — ``--`` is taken by
the edge syntax and ``#`` by class names like ``SS#``; blank lines are
ignored)::

    schema <name>
    entity <Name> ("," <Name>)*
    domain <Name> ("," <Name>)*
    isa    <Sub> ":" <Super>
    assoc  <Left> "--" <Right> ("as" <name>)?

:func:`parse_ddl` builds a validated :class:`SchemaGraph`;
:func:`schema_to_ddl` prints one back (round-trip property tested).
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.schema.graph import AssociationKind, SchemaGraph

__all__ = ["parse_ddl", "schema_to_ddl", "DDLError"]


class DDLError(SchemaError):
    """The DDL text is malformed."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"{message} (line {line})")
        self.line = line


def _split_names(payload: str, line_number: int) -> list[str]:
    names = [name.strip() for name in payload.split(",")]
    if any(not name for name in names):
        raise DDLError("empty name in declaration", line_number)
    return names


def parse_ddl(text: str) -> SchemaGraph:
    """Parse DDL ``text`` into a validated schema graph."""
    schema: SchemaGraph | None = None
    pending: list[tuple[int, str, str]] = []

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//", 1)[0].strip()
        if not line:
            continue
        keyword, _, payload = line.partition(" ")
        keyword = keyword.lower()
        payload = payload.strip()
        if keyword == "schema":
            if schema is not None:
                raise DDLError("duplicate schema declaration", line_number)
            if not payload:
                raise DDLError("schema declaration needs a name", line_number)
            schema = SchemaGraph(payload)
            continue
        if schema is None:
            raise DDLError("the first declaration must be 'schema <name>'", line_number)
        if keyword == "entity":
            for name in _split_names(payload, line_number):
                schema.add_entity_class(name)
        elif keyword == "domain":
            for name in _split_names(payload, line_number):
                schema.add_domain_class(name)
        elif keyword in ("isa", "assoc"):
            # Edge declarations may reference classes declared later;
            # defer them until all classes are in.
            pending.append((line_number, keyword, payload))
        else:
            raise DDLError(f"unknown declaration {keyword!r}", line_number)

    if schema is None:
        raise DDLError("empty DDL document", 1)

    for line_number, keyword, payload in pending:
        if keyword == "isa":
            sub, sep, sup = payload.partition(":")
            if not sep or not sub.strip() or not sup.strip():
                raise DDLError("isa needs '<Sub> : <Super>'", line_number)
            schema.add_generalization(sub.strip(), sup.strip())
        else:
            head, sep, name = payload.partition(" as ")
            assoc_name = name.strip() if sep else None
            left, edge_sep, right = head.partition("--")
            if not edge_sep or not left.strip() or not right.strip():
                raise DDLError("assoc needs '<Left> -- <Right>'", line_number)
            schema.add_association(left.strip(), right.strip(), assoc_name)
    schema.validate()
    return schema


def schema_to_ddl(schema: SchemaGraph) -> str:
    """Render a schema graph back to parseable DDL text."""
    entities = [c.name for c in schema.classes if not c.is_primitive]
    domains = [c.name for c in schema.classes if c.is_primitive]
    lines = [f"schema {schema.name}", ""]
    if entities:
        lines.append(f"entity {', '.join(entities)}")
    if domains:
        lines.append(f"domain {', '.join(domains)}")
    lines.append("")
    for assoc in schema.associations:
        if assoc.kind is AssociationKind.GENERALIZATION:
            lines.append(f"isa {assoc.left} : {assoc.right}")
    lines.append("")
    for assoc in schema.associations:
        if assoc.kind is AssociationKind.GENERALIZATION:
            continue
        default_name = f"{assoc.left}__{assoc.right}"
        suffix = f" as {assoc.name}" if assoc.name != default_name else ""
        lines.append(f"assoc {assoc.left} -- {assoc.right}{suffix}")
    return "\n".join(lines).strip() + "\n"
