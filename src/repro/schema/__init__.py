"""Schema Graph — the intensional view of an O-O database (§3.1)."""

from repro.schema.ddl import DDLError, parse_ddl, schema_to_ddl
from repro.schema.graph import (
    Association,
    AssociationKind,
    ClassDef,
    ClassKind,
    SchemaGraph,
)

__all__ = [
    "SchemaGraph",
    "ClassDef",
    "ClassKind",
    "Association",
    "AssociationKind",
    "parse_ddl",
    "schema_to_ddl",
    "DDLError",
]
