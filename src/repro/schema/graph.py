"""Schema Graph — the intensional database (§3.1).

``SG(C, A)``: vertices are object classes, edges are associations.  The
paper stresses that associations are *type-less* from the algebra's point of
view — aggregation, generalization, interaction etc. are semantics enforced
by the DBMS or by rules, not by the algebra.  We therefore store an
association *kind* purely as metadata: the algebra never branches on it,
but the object-graph builder uses generalization edges to auto-link the
instances of one object across a class lattice (dynamic inheritance, §2),
and renderers use kinds to draw the right figure glyphs.

Classes come in two flavours (Figure 1):

* **nonprimitive** — entity classes whose instances are real-world objects
  (rectangles in the figures);
* **primitive** — domain classes whose instances carry self-describing
  values such as integers and strings (circles in the figures).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import (
    AmbiguousAssociationError,
    DuplicateDefinitionError,
    SchemaError,
    UnknownAssociationError,
    UnknownClassError,
)

__all__ = ["ClassKind", "AssociationKind", "ClassDef", "Association", "SchemaGraph"]


class ClassKind(enum.Enum):
    """Rectangle or circle in the paper's schema figures."""

    NONPRIMITIVE = "nonprimitive"
    PRIMITIVE = "primitive"


class AssociationKind(enum.Enum):
    """Metadata tag for an association edge (type-less to the algebra)."""

    AGGREGATION = "aggregation"
    GENERALIZATION = "generalization"
    INTERACTION = "interaction"


@dataclass(frozen=True)
class ClassDef:
    """A vertex of the schema graph."""

    name: str
    kind: ClassKind = ClassKind.NONPRIMITIVE
    doc: str = ""

    @property
    def is_primitive(self) -> bool:
        return self.kind is ClassKind.PRIMITIVE


@dataclass(frozen=True)
class Association:
    """An edge ``A_ij(k)`` of the schema graph.

    ``name`` is the distinguishing number/label ``k`` of the paper — it
    disambiguates multiple edges between the same two classes.  ``left``
    and ``right`` record the declared orientation; the edge itself is
    bi-directional ("All edges are bi-directional", §2).

    For a generalization edge the convention is ``left`` = subclass,
    ``right`` = superclass.
    """

    left: str
    right: str
    name: str
    kind: AssociationKind = AssociationKind.AGGREGATION

    @property
    def key(self) -> tuple[str, str, str]:
        """Canonical identity of the edge (unordered endpoints + name)."""
        lo, hi = sorted((self.left, self.right))
        return (lo, hi, self.name)

    def joins(self, a: str, b: str) -> bool:
        """Whether this association connects classes ``a`` and ``b``."""
        return {self.left, self.right} == {a, b}

    def touches(self, cls: str) -> bool:
        return cls in (self.left, self.right)

    def other(self, cls: str) -> str:
        """The class at the opposite end from ``cls``."""
        if cls == self.left:
            return self.right
        if cls == self.right:
            return self.left
        raise SchemaError(f"class {cls!r} is not an endpoint of {self}")

    def __str__(self) -> str:
        return f"[{self.name}({self.left},{self.right})]"


class SchemaGraph:
    """A mutable schema graph with symmetric association lookup."""

    def __init__(self, name: str = "schema") -> None:
        self.name = name
        self._classes: dict[str, ClassDef] = {}
        self._associations: dict[tuple[str, str, str], Association] = {}
        self._incident: dict[str, set[tuple[str, str, str]]] = {}

    # ------------------------------------------------------------------
    # classes
    # ------------------------------------------------------------------

    def add_class(
        self,
        name: str,
        kind: ClassKind = ClassKind.NONPRIMITIVE,
        doc: str = "",
    ) -> ClassDef:
        """Declare a class.  Redeclaration with identical kind is an error."""
        if name in self._classes:
            raise DuplicateDefinitionError(f"class {name!r} already defined")
        cdef = ClassDef(name, kind, doc)
        self._classes[name] = cdef
        self._incident[name] = set()
        return cdef

    def add_entity_class(self, name: str, doc: str = "") -> ClassDef:
        """Shorthand for a nonprimitive class (a figure rectangle)."""
        return self.add_class(name, ClassKind.NONPRIMITIVE, doc)

    def add_domain_class(self, name: str, doc: str = "") -> ClassDef:
        """Shorthand for a primitive class (a figure circle)."""
        return self.add_class(name, ClassKind.PRIMITIVE, doc)

    def class_def(self, name: str) -> ClassDef:
        """The declaration of class ``name`` (raises if unknown)."""
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownClassError(name) from None

    def has_class(self, name: str) -> bool:
        """Whether a class named ``name`` is declared."""
        return name in self._classes

    @property
    def classes(self) -> tuple[ClassDef, ...]:
        return tuple(self._classes.values())

    @property
    def class_names(self) -> tuple[str, ...]:
        return tuple(self._classes)

    # ------------------------------------------------------------------
    # associations
    # ------------------------------------------------------------------

    def add_association(
        self,
        left: str,
        right: str,
        name: str | None = None,
        kind: AssociationKind = AssociationKind.AGGREGATION,
    ) -> Association:
        """Declare an association edge between two declared classes.

        ``name`` defaults to ``"<left>__<right>"``; supply explicit names
        when two classes share more than one edge (the ``k`` of
        ``A_ij(k)``).
        """
        for cls in (left, right):
            if cls not in self._classes:
                raise UnknownClassError(cls)
        if name is None:
            name = f"{left}__{right}"
        assoc = Association(left, right, name, kind)
        if assoc.key in self._associations:
            raise DuplicateDefinitionError(
                f"association {name!r} between {left!r} and {right!r} already defined"
            )
        self._associations[assoc.key] = assoc
        self._incident[left].add(assoc.key)
        self._incident[right].add(assoc.key)
        return assoc

    def add_generalization(self, subclass: str, superclass: str) -> Association:
        """Declare ``subclass`` *is-a* ``superclass`` (a G-edge)."""
        return self.add_association(
            subclass,
            superclass,
            name=f"isa_{subclass}_{superclass}",
            kind=AssociationKind.GENERALIZATION,
        )

    def associations_between(self, a: str, b: str) -> tuple[Association, ...]:
        """All edges joining classes ``a`` and ``b`` (possibly none)."""
        lo, hi = sorted((a, b))
        return tuple(
            assoc
            for key, assoc in self._associations.items()
            if key[0] == lo and key[1] == hi
        )

    def resolve(self, a: str, b: str, name: str | None = None) -> Association:
        """The unique association between ``a`` and ``b`` (or the named one).

        Raises :class:`UnknownAssociationError` when none exists and
        :class:`AmbiguousAssociationError` when several do and no name was
        given — mirroring the paper's rule that ``[R(A,B)]`` may be omitted
        only "if there is a unique association between these two classes".
        """
        candidates = self.associations_between(a, b)
        if name is not None:
            for assoc in candidates:
                if assoc.name == name:
                    return assoc
            raise UnknownAssociationError(a, b, name)
        if not candidates:
            raise UnknownAssociationError(a, b)
        if len(candidates) > 1:
            raise AmbiguousAssociationError(a, b, [c.name for c in candidates])
        return candidates[0]

    def association(self, key: tuple[str, str, str]) -> Association:
        """Look an association up by its canonical ``key``."""
        try:
            return self._associations[key]
        except KeyError:
            raise UnknownAssociationError(key[0], key[1], key[2]) from None

    @property
    def associations(self) -> tuple[Association, ...]:
        return tuple(self._associations.values())

    def incident(self, cls: str) -> tuple[Association, ...]:
        """Every association touching class ``cls``."""
        if cls not in self._classes:
            raise UnknownClassError(cls)
        return tuple(self._associations[key] for key in sorted(self._incident[cls]))

    def neighbors(self, cls: str) -> frozenset[str]:
        """Classes adjacent to ``cls`` in the schema graph."""
        return frozenset(assoc.other(cls) for assoc in self.incident(cls))

    # ------------------------------------------------------------------
    # generalization lattice helpers (dynamic inheritance, §2)
    # ------------------------------------------------------------------

    def direct_superclasses(self, cls: str) -> frozenset[str]:
        """Classes one is-a edge above ``cls``."""
        return frozenset(
            assoc.right
            for assoc in self.incident(cls)
            if assoc.kind is AssociationKind.GENERALIZATION and assoc.left == cls
        )

    def direct_subclasses(self, cls: str) -> frozenset[str]:
        """Classes one is-a edge below ``cls``."""
        return frozenset(
            assoc.left
            for assoc in self.incident(cls)
            if assoc.kind is AssociationKind.GENERALIZATION and assoc.right == cls
        )

    def superclasses(self, cls: str) -> frozenset[str]:
        """Transitive superclasses of ``cls`` (excluding ``cls`` itself)."""
        out: set[str] = set()
        frontier = [cls]
        while frontier:
            here = frontier.pop()
            for sup in self.direct_superclasses(here):
                if sup not in out:
                    out.add(sup)
                    frontier.append(sup)
        return frozenset(out)

    def subclasses(self, cls: str) -> frozenset[str]:
        """Transitive subclasses of ``cls`` (excluding ``cls`` itself)."""
        out: set[str] = set()
        frontier = [cls]
        while frontier:
            here = frontier.pop()
            for sub in self.direct_subclasses(here):
                if sub not in out:
                    out.add(sub)
                    frontier.append(sub)
        return frozenset(out)

    def generalization_path(self, subclass: str, superclass: str) -> list[str] | None:
        """A shortest is-a path from ``subclass`` up to ``superclass``.

        Returns the class sequence including both endpoints, or ``None``
        when ``superclass`` is not reachable upward.  Used by the OQL
        compiler to expand inheritance shorthand into explicit navigation,
        as §2 describes ("the query interpreter will translate it into the
        corresponding A-algebra expression based on the schema definition").
        """
        if subclass == superclass:
            return [subclass]
        frontier: list[list[str]] = [[subclass]]
        seen = {subclass}
        while frontier:
            next_frontier: list[list[str]] = []
            for path in frontier:
                for sup in sorted(self.direct_superclasses(path[-1])):
                    if sup in seen:
                        continue
                    if sup == superclass:
                        return path + [sup]
                    seen.add(sup)
                    next_frontier.append(path + [sup])
            frontier = next_frontier
        return None

    # ------------------------------------------------------------------
    # validation / traversal
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency; raises :class:`SchemaError` on failure."""
        for assoc in self._associations.values():
            for cls in (assoc.left, assoc.right):
                if cls not in self._classes:
                    raise SchemaError(f"{assoc} references unknown class {cls!r}")
            if assoc.kind is AssociationKind.GENERALIZATION:
                if self._classes[assoc.left].is_primitive:
                    raise SchemaError(
                        f"{assoc}: a primitive class cannot be a subclass"
                    )
        # The generalization relation must be acyclic (a hierarchy/lattice).
        state: dict[str, int] = {}

        def visit(cls: str) -> None:
            state[cls] = 1
            for sup in self.direct_superclasses(cls):
                mark = state.get(sup, 0)
                if mark == 1:
                    raise SchemaError(f"generalization cycle through {cls!r}")
                if mark == 0:
                    visit(sup)
            state[cls] = 2

        for cls in self._classes:
            if state.get(cls, 0) == 0:
                visit(cls)

    def path_between(self, src: str, dst: str) -> list[Association] | None:
        """A shortest association path between two classes (BFS).

        Used by query helpers to suggest navigation chains; returns ``None``
        when the classes are in different schema components.
        """
        if src == dst:
            return []
        if src not in self._classes:
            raise UnknownClassError(src)
        if dst not in self._classes:
            raise UnknownClassError(dst)
        frontier: list[tuple[str, list[Association]]] = [(src, [])]
        seen = {src}
        while frontier:
            next_frontier: list[tuple[str, list[Association]]] = []
            for here, path in frontier:
                for assoc in self.incident(here):
                    nxt = assoc.other(here)
                    if nxt in seen:
                        continue
                    if nxt == dst:
                        return path + [assoc]
                    seen.add(nxt)
                    next_frontier.append((nxt, path + [assoc]))
            frontier = next_frontier
        return None

    def __iter__(self) -> Iterator[ClassDef]:
        return iter(self._classes.values())

    def __contains__(self, name: object) -> bool:
        return name in self._classes

    def __str__(self) -> str:
        return (
            f"SchemaGraph({self.name!r}: {len(self._classes)} classes, "
            f"{len(self._associations)} associations)"
        )
