"""Rewrite rules derived from the algebraic laws (§3.3, §4).

Each :class:`RewriteRule` tries to transform the *root* of an expression;
the planner applies rules at every subtree via :func:`rebuild`.  Rules are
split into:

* ``SAFE_RULES`` — semantics-preserving on every input (laws a, c,
  select-pushdown, reassociation of linear chains, and law d under its
  full static conditions);
* ``UNSAFE_RULES`` — the paper's laws b), e), f), which our property
  testing showed to fail on degenerate inputs (retention special cases,
  NonAssociate's whole-operand freeness — see EXPERIMENTS.md).  They are
  available for study but the default optimizer does not use them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.expression import (
    Associate,
    ClassExtent,
    Complement,
    Difference,
    Divide,
    Expr,
    Intersect,
    Literal,
    NonAssociate,
    Project,
    Select,
    Union,
)
from repro.optimizer.analysis import (
    is_statically_homogeneous,
    predicate_classes,
    static_classes,
)

__all__ = ["RewriteRule", "SAFE_RULES", "UNSAFE_RULES", "rebuild", "children"]


@dataclass(frozen=True)
class RewriteRule:
    """A named root-level rewrite: returns a new Expr or None."""

    name: str
    law: str
    apply: Callable[[Expr], "Expr | None"]

    def __str__(self) -> str:
        return f"{self.name} [{self.law}]"


# ----------------------------------------------------------------------
# generic tree plumbing
# ----------------------------------------------------------------------


def children(expr: Expr) -> tuple[Expr, ...]:
    return expr.children()


def rebuild(expr: Expr, new_children: tuple[Expr, ...]) -> Expr:
    """Copy ``expr`` with its children replaced (same arity required)."""
    if isinstance(expr, (ClassExtent, Literal)):
        return expr
    if isinstance(expr, Associate):
        return Associate(new_children[0], new_children[1], expr.spec)
    if isinstance(expr, Complement):
        return Complement(new_children[0], new_children[1], expr.spec)
    if isinstance(expr, NonAssociate):
        return NonAssociate(new_children[0], new_children[1], expr.spec)
    if isinstance(expr, Intersect):
        return Intersect(new_children[0], new_children[1], expr.classes)
    if isinstance(expr, Union):
        return Union(new_children[0], new_children[1])
    if isinstance(expr, Difference):
        return Difference(new_children[0], new_children[1])
    if isinstance(expr, Divide):
        return Divide(new_children[0], new_children[1], expr.classes)
    if isinstance(expr, Select):
        return Select(new_children[0], expr.predicate)
    if isinstance(expr, Project):
        return Project(new_children[0], expr.templates, expr.links)
    raise TypeError(f"unknown expression node {expr!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# law a): α *[R] (β + γ)  =  α *[R] β  +  α *[R] γ
# ----------------------------------------------------------------------


def _associate_over_union_right(expr: Expr) -> Expr | None:
    if isinstance(expr, Associate) and isinstance(expr.right, Union):
        union = expr.right
        return Union(
            Associate(expr.left, union.left, expr.spec),
            Associate(expr.left, union.right, expr.spec),
        )
    return None


def _associate_over_union_left(expr: Expr) -> Expr | None:
    # (β + γ) *[R] α  =  β *[R] α + γ *[R] α  (a) + commutativity).
    if isinstance(expr, Associate) and isinstance(expr.left, Union):
        union = expr.left
        return Union(
            Associate(union.left, expr.right, expr.spec),
            Associate(union.right, expr.right, expr.spec),
        )
    return None


def _factor_associate_union(expr: Expr) -> Expr | None:
    """The reverse of law a): α*β + α*γ → α*(β+γ) (shrinks the tree)."""
    if (
        isinstance(expr, Union)
        and isinstance(expr.left, Associate)
        and isinstance(expr.right, Associate)
        and expr.left.left == expr.right.left
        and expr.left.spec == expr.right.spec
    ):
        union = Union(expr.left.right, expr.right.right)
        if expr.left.spec is None and union.head_class is None:
            # The factored Associate could not resolve its association via
            # the shorthand rule; refuse rather than build a dead tree.
            return None
        return Associate(expr.left.left, union, expr.left.spec)
    return None


# ----------------------------------------------------------------------
# law c): α •{X} (β + γ)  =  α •{X} β  +  α •{X} γ   (explicit {X} only)
# ----------------------------------------------------------------------


def _intersect_over_union_right(expr: Expr) -> Expr | None:
    if (
        isinstance(expr, Intersect)
        and expr.classes is not None
        and isinstance(expr.right, Union)
    ):
        union = expr.right
        return Union(
            Intersect(expr.left, union.left, expr.classes),
            Intersect(expr.left, union.right, expr.classes),
        )
    return None


def _intersect_over_union_left(expr: Expr) -> Expr | None:
    if (
        isinstance(expr, Intersect)
        and expr.classes is not None
        and isinstance(expr.left, Union)
    ):
        union = expr.left
        return Union(
            Intersect(union.left, expr.right, expr.classes),
            Intersect(union.right, expr.right, expr.classes),
        )
    return None


# ----------------------------------------------------------------------
# law d): α *[R(CL1,CL2)] (β •{W} γ) = (α*β) •{W∪X} (α*γ)
# ----------------------------------------------------------------------


def _associate_over_intersect(expr: Expr) -> Expr | None:
    if not (isinstance(expr, Associate) and isinstance(expr.right, Intersect)):
        return None
    alpha, inner = expr.left, expr.right
    x = static_classes(alpha)
    y = static_classes(inner.left)
    z = static_classes(inner.right)
    w = inner.classes if inner.classes is not None else (y & z)
    # CL2 — the class the intersect joins α through.
    cl2 = expr.spec.beta_class if expr.spec is not None else inner.head_class
    if cl2 is None or cl2 not in w:
        return None  # condition i)
    if (x & y) or (x & z):
        return None  # condition ii)
    if not is_statically_homogeneous(alpha):
        return None  # condition iii)
    # Implicit single-CL2-instance condition: satisfied when both branches
    # are linear chains (one instance per class) — analysis.is_linear is
    # exactly what is_statically_homogeneous checks for non-literals.
    if not (
        is_statically_homogeneous(inner.left)
        and is_statically_homogeneous(inner.right)
    ):
        return None
    return Intersect(
        Associate(alpha, inner.left, expr.spec),
        Associate(alpha, inner.right, expr.spec),
        frozenset(w) | x,
    )


# ----------------------------------------------------------------------
# select pushdown (derived from the operator definitions, not a §4 law)
# ----------------------------------------------------------------------


def _select_over_union(expr: Expr) -> Expr | None:
    if isinstance(expr, Select) and isinstance(expr.operand, Union):
        union = expr.operand
        return Union(
            Select(union.left, expr.predicate), Select(union.right, expr.predicate)
        )
    return None


def _select_pushdown_associate(expr: Expr) -> Expr | None:
    """σ(α*β)[P] → σ(α)[P]*β when P reads only α's classes (and dually).

    Sound because Associate only concatenates patterns: the instances P
    inspects come verbatim from the side that holds their classes.
    """
    if not (isinstance(expr, Select) and isinstance(expr.operand, Associate)):
        return None
    assoc = expr.operand
    needed = predicate_classes(expr.predicate)
    if "*" in needed:
        return None  # opaque callback — cannot push
    left_classes = static_classes(assoc.left)
    right_classes = static_classes(assoc.right)
    if needed and needed <= left_classes and not (needed & right_classes):
        return Associate(Select(assoc.left, expr.predicate), assoc.right, assoc.spec)
    if needed and needed <= right_classes and not (needed & left_classes):
        return Associate(assoc.left, Select(assoc.right, expr.predicate), assoc.spec)
    return None


# ----------------------------------------------------------------------
# simplifications (law-backed tree shrinkers)
# ----------------------------------------------------------------------


def _merge_nested_selects(expr: Expr) -> Expr | None:
    """σ(σ(α)[P₁])[P₂] → σ(α)[P₁ ∧ P₂] (one pass instead of two)."""
    if isinstance(expr, Select) and isinstance(expr.operand, Select):
        from repro.core.predicates import And

        inner = expr.operand
        return Select(inner.operand, And(inner.predicate, expr.predicate))
    return None


def _union_idempotency(expr: Expr) -> Expr | None:
    """α + α → α (§3.3.2(7) idempotency)."""
    if isinstance(expr, Union) and expr.left == expr.right:
        return expr.left
    return None


# ----------------------------------------------------------------------
# reassociation of linear chains (§3.3.2(1) conditional associativity)
# ----------------------------------------------------------------------


def _linear(expr: Expr) -> bool:
    from repro.optimizer.analysis import is_linear

    return is_linear(expr)


def _rotate_right(expr: Expr) -> Expr | None:
    """(a * b) * c → a * (b * c) for linear, class-disjoint chains."""
    if not (isinstance(expr, Associate) and isinstance(expr.left, Associate)):
        return None
    a, b, c = expr.left.left, expr.left.right, expr.right
    if expr.spec is not None or expr.left.spec is not None:
        return None  # keep explicit annotations pinned
    if not (_linear(a) and _linear(b) and _linear(c)):
        return None
    if static_classes(a) & static_classes(c):
        return None
    return Associate(a, Associate(b, c))


def _rotate_left(expr: Expr) -> Expr | None:
    """a * (b * c) → (a * b) * c under the same conditions."""
    if not (isinstance(expr, Associate) and isinstance(expr.right, Associate)):
        return None
    a, b, c = expr.left, expr.right.left, expr.right.right
    if expr.spec is not None or expr.right.spec is not None:
        return None
    if not (_linear(a) and _linear(b) and _linear(c)):
        return None
    if static_classes(a) & static_classes(c):
        return None
    return Associate(Associate(a, b), c)


# ----------------------------------------------------------------------
# unsafe rules: laws b), e), f) — degenerate-input caveats apply
# ----------------------------------------------------------------------


def _complement_over_union_right(expr: Expr) -> Expr | None:
    if isinstance(expr, Complement) and isinstance(expr.right, Union):
        union = expr.right
        return Union(
            Complement(expr.left, union.left, expr.spec),
            Complement(expr.left, union.right, expr.spec),
        )
    return None


def _complement_over_intersect(expr: Expr) -> Expr | None:
    if not (isinstance(expr, Complement) and isinstance(expr.right, Intersect)):
        return None
    alpha, inner = expr.left, expr.right
    x = static_classes(alpha)
    y = static_classes(inner.left)
    z = static_classes(inner.right)
    w = inner.classes if inner.classes is not None else (y & z)
    cl2 = expr.spec.beta_class if expr.spec is not None else inner.head_class
    if cl2 is None or cl2 not in w or (x & y) or (x & z):
        return None
    if not is_statically_homogeneous(alpha):
        return None
    return Intersect(
        Complement(alpha, inner.left, expr.spec),
        Complement(alpha, inner.right, expr.spec),
        frozenset(w) | x,
    )


def _nonassociate_over_intersect(expr: Expr) -> Expr | None:
    if not (isinstance(expr, NonAssociate) and isinstance(expr.right, Intersect)):
        return None
    alpha, inner = expr.left, expr.right
    x = static_classes(alpha)
    y = static_classes(inner.left)
    z = static_classes(inner.right)
    w = inner.classes if inner.classes is not None else (y & z)
    cl2 = expr.spec.beta_class if expr.spec is not None else inner.head_class
    if cl2 is None or cl2 not in w or (x & y) or (x & z):
        return None
    if not is_statically_homogeneous(alpha):
        return None
    return Intersect(
        NonAssociate(alpha, inner.left, expr.spec),
        NonAssociate(alpha, inner.right, expr.spec),
        frozenset(w) | x,
    )


SAFE_RULES: tuple[RewriteRule, ...] = (
    RewriteRule("associate-over-union-R", "law a)", _associate_over_union_right),
    RewriteRule("associate-over-union-L", "law a)", _associate_over_union_left),
    RewriteRule("factor-associate-union", "law a) reversed", _factor_associate_union),
    RewriteRule("intersect-over-union-R", "law c)", _intersect_over_union_right),
    RewriteRule("intersect-over-union-L", "law c)", _intersect_over_union_left),
    RewriteRule("associate-over-intersect", "law d)", _associate_over_intersect),
    RewriteRule("select-over-union", "σ/+ definition", _select_over_union),
    RewriteRule("select-pushdown", "σ/* definition", _select_pushdown_associate),
    RewriteRule("merge-selects", "σ definition", _merge_nested_selects),
    RewriteRule("union-idempotency", "law +-idempotency", _union_idempotency),
    RewriteRule("rotate-right", "associativity", _rotate_right),
    RewriteRule("rotate-left", "associativity", _rotate_left),
)

UNSAFE_RULES: tuple[RewriteRule, ...] = (
    RewriteRule("complement-over-union-R", "law b)", _complement_over_union_right),
    RewriteRule("complement-over-intersect", "law e)", _complement_over_intersect),
    RewriteRule("nonassociate-over-intersect", "law f)", _nonassociate_over_intersect),
)
