"""Cardinality and cost estimation.

Without statistics the model uses the same flavour of independence-and-
uniformity assumptions System R used — because its job is to *rank*
rewrite alternatives, not to predict wall-clock times:

* a class extent has its true cardinality;
* Associate multiplies the left cardinality by the association's average
  fan-out and by the fraction of the right class's extent present in the
  right operand;
* A-Complement uses the complement fan-out (extent size − fan-out);
* A-Intersect multiplies by a per-class matching probability ``1/|extent|``
  for every intersected class;
* Select applies a fixed default selectivity; Union adds; Difference and
  Divide keep/shrink the left input.

When a :class:`~repro.optimizer.stats.StatisticsCatalog` is supplied (and
has been analyzed), measured statistics replace the guesses: equality and
range selectivities come from equi-depth histograms (conjunction and
disjunction combined under independence), Associate/Complement fan-outs
from the measured fan-out distributions, and A-Intersect matching from
the degree-collision probability.  When a
:class:`~repro.optimizer.stats.FeedbackStore` is supplied, actual
cardinalities recorded by the executor override estimates for sub-plans
that have already run.  Every :class:`Estimate` carries its ``source``
(``exact`` / ``histogram`` / ``feedback`` / ``uniform``) so EXPLAIN can
say where a number came from.

``cost`` accumulates the work of producing every intermediate pattern —
the quantity the paper's §4 discussion of heterogeneous vs homogeneous
processing is about.  The unit is "patterns touched".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.expression import (
    Associate,
    ClassExtent,
    Complement,
    Difference,
    Divide,
    Expr,
    Intersect,
    Literal,
    NonAssociate,
    Project,
    Select,
    Union,
)
from repro.core.predicates import (
    And,
    ClassValues,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    ValueUnion,
)
from repro.objects.graph import ObjectGraph
from repro.optimizer.analysis import (
    edge_scannable,
    static_classes,
    value_index_probe,
)

__all__ = ["Estimate", "CostModel", "SELECT_SELECTIVITY"]

#: Default selectivity assumed for an A-Select predicate.
SELECT_SELECTIVITY = 0.33

#: Mirror-image comparison operators, for ``const op ClassValues`` forms.
_MIRROR_OPS = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _in_list_consts(value) -> tuple | None:
    """The constant pool of an IN-list right-hand side, or ``None``.

    Accepts a single :class:`Const` or a :class:`ValueUnion` whose leaves
    are all constants (nested unions flatten, matching ``values()``).
    """
    if isinstance(value, Const):
        return (value.value,)
    if isinstance(value, ValueUnion):
        out: list = []
        for operand in value.operands:
            part = _in_list_consts(operand)
            if part is None:
                return None
            out.extend(part)
        return tuple(out)
    return None


@dataclass(frozen=True)
class Estimate:
    """Estimated output cardinality and cumulative work of an expression.

    ``source`` names where the cardinality came from: ``"exact"`` (known
    by construction), ``"histogram"`` (measured statistics), ``"feedback"``
    (actual cardinality of a previous run) or ``"uniform"`` (the static
    fallback assumptions).
    """

    cardinality: float
    cost: float
    source: str = "uniform"

    def __add__(self, other: "Estimate") -> "Estimate":
        return Estimate(
            self.cardinality + other.cardinality,
            self.cost + other.cost,
            self.source,
        )


class CostModel:
    """Estimates expressions against one object graph's statistics.

    ``stats`` (optional) supplies measured statistics; ``feedback``
    (optional) supplies recorded actuals and defaults to the catalog's
    own store when a catalog is given.  With neither, behaviour is the
    original uniformity model.
    """

    def __init__(
        self,
        graph: ObjectGraph,
        stats=None,
        feedback=None,
    ) -> None:
        self.graph = graph
        self.schema = graph.schema
        self.stats = stats
        if feedback is None and stats is not None:
            feedback = stats.feedback
        self.feedback = feedback

    # ------------------------------------------------------------------
    # statistics accessors
    # ------------------------------------------------------------------

    def extent_size(self, cls: str) -> int:
        # Statistics read (no extent copy, no scan-counter pollution).
        return self.graph.extent_size(cls)

    def fanout(self, a_cls: str, b_cls: str, name: str | None = None) -> float:
        """Average number of B-partners per A-instance over ``R(A,B)``."""
        assoc = self.schema.resolve(a_cls, b_cls, name)
        left_size = self.extent_size(a_cls)
        if left_size == 0:
            return 0.0
        return self.graph.edge_count(assoc) / left_size

    @property
    def _live_stats(self):
        """The catalog, but only once it has actually been analyzed."""
        if self.stats is not None and self.stats.analyzed:
            return self.stats
        return None

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------

    def estimate(self, expr: Expr) -> Estimate:
        """Estimated cardinality and cumulative cost of ``expr``.

        Recorded feedback (an actual cardinality from a previous run of
        the same canonical sub-plan) overrides the model's estimate;
        estimates are clamped non-negative either way.
        """
        est = self._estimate(expr)
        card = max(est.cardinality, 0.0)
        cost = max(est.cost, 0.0)
        actual = self._feedback_actual(expr)
        if actual is not None:
            # Downstream work scales with the true cardinality, so shift
            # the cumulative cost by the estimation error as well.
            cost = max(cost + (actual - card), 0.0)
            return Estimate(float(actual), cost, "feedback")
        return Estimate(card, cost, est.source)

    def _feedback_actual(self, expr: Expr) -> int | None:
        if self.feedback is None or len(self.feedback) == 0:
            return None
        from repro.exec.cache import canonicalize  # local: avoid cycle

        entry = self.feedback.lookup(canonicalize(expr))
        return entry.actual if entry is not None else None

    def _estimate(self, expr: Expr) -> Estimate:
        if isinstance(expr, ClassExtent):
            size = self.extent_size(expr.name)
            return Estimate(size, size, "exact")
        if isinstance(expr, Literal):
            size = len(expr.value)
            return Estimate(size, 0.0, "exact")
        if isinstance(expr, Associate):
            return self._binary_graph(expr, complemented=False)
        if isinstance(expr, Complement):
            return self._binary_graph(expr, complemented=True)
        if isinstance(expr, NonAssociate):
            # NonAssociate ⊆ A-Complement; damp the complement estimate.
            return self._binary_graph(expr, complemented=True, damping=0.25)
        if isinstance(expr, Intersect):
            return self._intersect(expr)
        if isinstance(expr, Union):
            left = self.estimate(expr.left)
            right = self.estimate(expr.right)
            card = left.cardinality + right.cardinality
            return Estimate(card, left.cost + right.cost + card)
        if isinstance(expr, (Difference, Divide)):
            left = self.estimate(expr.left)
            right = self.estimate(expr.right)
            # Both operators return a subset of the left operand: never
            # estimate more than the left input produces.
            card = min(left.cardinality * 0.5, left.cardinality)
            work = left.cardinality * max(right.cardinality, 1.0)
            return Estimate(card, left.cost + right.cost + work)
        if isinstance(expr, Select):
            inner = self.estimate(expr.operand)
            selectivity, source = self._selectivity(expr.predicate)
            card = inner.cardinality * selectivity
            if value_index_probe(expr) is not None:
                # Answered from the per-class value index: the filter only
                # ever touches the qualifying patterns, not the whole input.
                return Estimate(card, inner.cost + max(card, 1.0), source)
            from repro.exec.columns import (  # local: avoid cycle
                compiled_select_probe,
            )

            if compiled_select_probe(expr) is not None:
                # Compiled column-mask σ: each row costs a bit test, not a
                # per-pattern object evaluation — an order of magnitude
                # cheaper than the object path over the same input.
                work = max(0.1 * inner.cardinality, 1.0)
                return Estimate(card, inner.cost + work, source)
            return Estimate(card, inner.cost + inner.cardinality, source)
        if isinstance(expr, Project):
            inner = self.estimate(expr.operand)
            return Estimate(
                inner.cardinality, inner.cost + inner.cardinality, inner.source
            )
        raise TypeError(f"unknown expression node {expr!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # predicate selectivity
    # ------------------------------------------------------------------

    def _selectivity(self, predicate: Predicate) -> tuple[float, str]:
        """Estimated fraction of patterns satisfying ``predicate``.

        Histogram-backed where the catalog can answer (equality/range
        comparisons between one class's values and a constant); Boolean
        combinators combine operand selectivities under independence;
        anything opaque falls back to :data:`SELECT_SELECTIVITY`.
        """
        if isinstance(predicate, Comparison):
            sel = self._comparison_selectivity(predicate)
            if sel is not None:
                return sel, "histogram"
            return SELECT_SELECTIVITY, "uniform"
        if isinstance(predicate, And):
            sel, source = 1.0, "uniform"
            for operand in predicate.operands:
                s, src = self._selectivity(operand)
                sel *= s
                if src == "histogram":
                    source = "histogram"
            return sel, source
        if isinstance(predicate, Or):
            miss, source = 1.0, "uniform"
            for operand in predicate.operands:
                s, src = self._selectivity(operand)
                miss *= 1.0 - s
                if src == "histogram":
                    source = "histogram"
            return 1.0 - miss, source
        if isinstance(predicate, Not):
            sel, source = self._selectivity(predicate.operand)
            return 1.0 - sel, source
        return SELECT_SELECTIVITY, "uniform"

    def _comparison_selectivity(self, predicate: Comparison) -> float | None:
        """Histogram answer for ``ClassValues op Const`` (either order)."""
        stats = self._live_stats
        if stats is None or predicate.quantifier != "exists":
            return None
        left, op, right = predicate.left, predicate.op, predicate.right
        if isinstance(left, Const) and isinstance(right, ClassValues):
            mirrored = _MIRROR_OPS.get(op)
            if mirrored is None:
                return None
            left, op, right = right, mirrored, left
        if op == "in" and isinstance(left, ClassValues):
            # IN-list: sum of the per-element equality selectivities,
            # capped at 1 (distinct constants select disjoint rows).
            histogram = stats.histogram(left.cls)
            consts = _in_list_consts(right)
            if histogram is None or consts is None:
                return None
            total = 0.0
            for value in consts:
                sel = histogram.selectivity_eq(value)
                if sel is None:
                    return None
                total += sel
            return min(total, 1.0)
        if not (isinstance(left, ClassValues) and isinstance(right, Const)):
            return None
        histogram = stats.histogram(left.cls)
        if histogram is None:
            return None
        return histogram.selectivity_cmp(op, right.value)

    # ------------------------------------------------------------------
    # graph operators
    # ------------------------------------------------------------------

    def _binary_graph(
        self, expr, complemented: bool, damping: float = 1.0
    ) -> Estimate:
        left = self.estimate(expr.left)
        right = self.estimate(expr.right)
        try:
            assoc, a_cls, b_cls = expr.resolve(self.graph)
        except Exception:
            # Unresolvable statically (e.g. an unhinted literal): fall back
            # to a generic quadratic guess.
            card = left.cardinality * right.cardinality * 0.1 * damping
            return Estimate(card, left.cost + right.cost + card)
        source = "uniform"
        stats = self._live_stats
        summary = (
            stats.fanout_summary(a_cls, b_cls, assoc.name)
            if stats is not None
            else None
        )
        if summary is not None:
            per_instance = (
                summary.complement_mean if complemented else summary.mean
            )
            source = "histogram"
        else:
            per_instance = self.fanout(a_cls, b_cls, assoc.name)
            if complemented:
                per_instance = max(self.extent_size(b_cls) - per_instance, 0.0)
        b_size = self.extent_size(b_cls)
        fraction = right.cardinality / b_size if b_size else 0.0
        card = left.cardinality * per_instance * min(fraction, 1.0) * damping
        work = self._strategy_work(expr, assoc, a_cls, b_cls, left, right, per_instance)
        return Estimate(card, left.cost + right.cost + work + card, source)

    def _strategy_work(
        self, expr, assoc, a_cls: str, b_cls: str, left, right, per_instance: float
    ) -> float:
        """Index-aware work of one binary graph node (patterns touched).

        Mirrors the physical planner's strategy choices: an edge-scannable
        Associate is one pass over the association's edge list; any other
        Associate is an index-nested-loop driven from the cheaper side
        (Associate is commutative, so the executor picks the smaller
        operand).  Complement-flavoured operators keep the generic
        drive-from-the-left estimate.
        """
        if isinstance(expr, Associate):
            if edge_scannable(expr, self.graph):
                return float(self.graph.edge_count(assoc))
            reverse = self.fanout(b_cls, a_cls, assoc.name)
            return min(
                left.cardinality * max(per_instance, 1.0),
                right.cardinality * max(reverse, 1.0),
            )
        return left.cardinality * max(per_instance, 1.0)

    def _intersect(self, expr: Intersect) -> Estimate:
        left = self.estimate(expr.left)
        right = self.estimate(expr.right)
        classes = expr.classes
        if classes is None:
            classes = static_classes(expr.left) & static_classes(expr.right)
        stats = self._live_stats
        source = "uniform"
        match_probability = 1.0
        for cls in classes:
            measured = stats.match_probability(cls) if stats is not None else None
            if measured is not None:
                match_probability *= measured
                source = "histogram"
                continue
            size = self.extent_size(cls) if self.schema.has_class(cls) else 1
            match_probability /= max(size, 1)
        card = left.cardinality * right.cardinality * match_probability
        work = left.cardinality + right.cardinality + card
        return Estimate(card, left.cost + right.cost + work, source)
