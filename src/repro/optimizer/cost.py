"""Cardinality and cost estimation.

The model is deliberately simple — the same flavour of independence-and-
uniformity assumptions System R used — because its job is to *rank*
rewrite alternatives, not to predict wall-clock times:

* a class extent has its true cardinality;
* Associate multiplies the left cardinality by the association's average
  fan-out and by the fraction of the right class's extent present in the
  right operand;
* A-Complement uses the complement fan-out (extent size − fan-out);
* A-Intersect multiplies by a per-class matching probability ``1/|extent|``
  for every intersected class;
* Select applies a fixed default selectivity; Union adds; Difference and
  Divide keep/shrink the left input.

``cost`` accumulates the work of producing every intermediate pattern —
the quantity the paper's §4 discussion of heterogeneous vs homogeneous
processing is about.  The unit is "patterns touched".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.expression import (
    Associate,
    ClassExtent,
    Complement,
    Difference,
    Divide,
    Expr,
    Intersect,
    Literal,
    NonAssociate,
    Project,
    Select,
    Union,
)
from repro.objects.graph import ObjectGraph
from repro.optimizer.analysis import (
    edge_scannable,
    static_classes,
    value_index_probe,
)

__all__ = ["Estimate", "CostModel", "SELECT_SELECTIVITY"]

#: Default selectivity assumed for an A-Select predicate.
SELECT_SELECTIVITY = 0.33


@dataclass(frozen=True)
class Estimate:
    """Estimated output cardinality and cumulative work of an expression."""

    cardinality: float
    cost: float

    def __add__(self, other: "Estimate") -> "Estimate":
        return Estimate(
            self.cardinality + other.cardinality, self.cost + other.cost
        )


class CostModel:
    """Estimates expressions against one object graph's statistics."""

    def __init__(self, graph: ObjectGraph) -> None:
        self.graph = graph
        self.schema = graph.schema

    # ------------------------------------------------------------------
    # statistics accessors
    # ------------------------------------------------------------------

    def extent_size(self, cls: str) -> int:
        # Statistics read (no extent copy, no scan-counter pollution).
        return self.graph.extent_size(cls)

    def fanout(self, a_cls: str, b_cls: str, name: str | None = None) -> float:
        """Average number of B-partners per A-instance over ``R(A,B)``."""
        assoc = self.schema.resolve(a_cls, b_cls, name)
        left_size = self.extent_size(a_cls)
        if left_size == 0:
            return 0.0
        return self.graph.edge_count(assoc) / left_size

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------

    def estimate(self, expr: Expr) -> Estimate:
        """Estimated cardinality and cumulative cost of ``expr``."""
        if isinstance(expr, ClassExtent):
            size = self.extent_size(expr.name)
            return Estimate(size, size)
        if isinstance(expr, Literal):
            size = len(expr.value)
            return Estimate(size, 0.0)
        if isinstance(expr, Associate):
            return self._binary_graph(expr, complemented=False)
        if isinstance(expr, Complement):
            return self._binary_graph(expr, complemented=True)
        if isinstance(expr, NonAssociate):
            # NonAssociate ⊆ A-Complement; damp the complement estimate.
            return self._binary_graph(expr, complemented=True, damping=0.25)
        if isinstance(expr, Intersect):
            return self._intersect(expr)
        if isinstance(expr, Union):
            left = self.estimate(expr.left)
            right = self.estimate(expr.right)
            card = left.cardinality + right.cardinality
            return Estimate(card, left.cost + right.cost + card)
        if isinstance(expr, Difference):
            left = self.estimate(expr.left)
            right = self.estimate(expr.right)
            card = left.cardinality * 0.5
            work = left.cardinality * max(right.cardinality, 1.0)
            return Estimate(card, left.cost + right.cost + work)
        if isinstance(expr, Divide):
            left = self.estimate(expr.left)
            right = self.estimate(expr.right)
            card = left.cardinality * 0.5
            work = left.cardinality * max(right.cardinality, 1.0)
            return Estimate(card, left.cost + right.cost + work)
        if isinstance(expr, Select):
            inner = self.estimate(expr.operand)
            card = inner.cardinality * SELECT_SELECTIVITY
            if value_index_probe(expr) is not None:
                # Answered from the per-class value index: the filter only
                # ever touches the qualifying patterns, not the whole input.
                return Estimate(card, inner.cost + max(card, 1.0))
            return Estimate(card, inner.cost + inner.cardinality)
        if isinstance(expr, Project):
            inner = self.estimate(expr.operand)
            return Estimate(inner.cardinality, inner.cost + inner.cardinality)
        raise TypeError(f"unknown expression node {expr!r}")  # pragma: no cover

    def _binary_graph(
        self, expr, complemented: bool, damping: float = 1.0
    ) -> Estimate:
        left = self.estimate(expr.left)
        right = self.estimate(expr.right)
        try:
            assoc, a_cls, b_cls = expr.resolve(self.graph)
        except Exception:
            # Unresolvable statically (e.g. an unhinted literal): fall back
            # to a generic quadratic guess.
            card = left.cardinality * right.cardinality * 0.1 * damping
            return Estimate(card, left.cost + right.cost + card)
        per_instance = self.fanout(a_cls, b_cls, assoc.name)
        if complemented:
            per_instance = max(self.extent_size(b_cls) - per_instance, 0.0)
        b_size = self.extent_size(b_cls)
        fraction = right.cardinality / b_size if b_size else 0.0
        card = left.cardinality * per_instance * min(fraction, 1.0) * damping
        work = self._strategy_work(expr, assoc, a_cls, b_cls, left, right, per_instance)
        return Estimate(card, left.cost + right.cost + work + card)

    def _strategy_work(
        self, expr, assoc, a_cls: str, b_cls: str, left, right, per_instance: float
    ) -> float:
        """Index-aware work of one binary graph node (patterns touched).

        Mirrors the physical planner's strategy choices: an edge-scannable
        Associate is one pass over the association's edge list; any other
        Associate is an index-nested-loop driven from the cheaper side
        (Associate is commutative, so the executor picks the smaller
        operand).  Complement-flavoured operators keep the generic
        drive-from-the-left estimate.
        """
        if isinstance(expr, Associate):
            if edge_scannable(expr, self.graph):
                return float(self.graph.edge_count(assoc))
            reverse = self.fanout(b_cls, a_cls, assoc.name)
            return min(
                left.cardinality * max(per_instance, 1.0),
                right.cardinality * max(reverse, 1.0),
            )
        return left.cardinality * max(per_instance, 1.0)

    def _intersect(self, expr: Intersect) -> Estimate:
        left = self.estimate(expr.left)
        right = self.estimate(expr.right)
        classes = expr.classes
        if classes is None:
            classes = static_classes(expr.left) & static_classes(expr.right)
        match_probability = 1.0
        for cls in classes:
            size = self.extent_size(cls) if self.schema.has_class(cls) else 1
            match_probability /= max(size, 1)
        card = left.cardinality * right.cardinality * match_probability
        work = left.cardinality + right.cardinality + card
        return Estimate(card, left.cost + right.cost + work)
