"""Static analysis of algebra expressions.

The §4 rewrite side conditions speak about the *classes* of the operand
association-sets ("X ∩ Y = φ", "CL₂ ∈ W") and about homogeneity.  At
optimization time the operands have not been evaluated, so the planner
works with static over-approximations derived from the expression tree:

* :func:`static_classes` — the classes that can occur in the result;
* :func:`is_linear` / :func:`is_statically_homogeneous` — an expression
  built as a chain of Associates over distinct class extents (possibly
  selected) always yields a homogeneous association-set: every result
  pattern holds exactly one instance per chain class, linked in the same
  chain topology by Inter-patterns.
"""

from __future__ import annotations

from repro.core.expression import (
    Associate,
    ClassExtent,
    Complement,
    Difference,
    Divide,
    Expr,
    Intersect,
    Literal,
    NonAssociate,
    Project,
    Select,
    Union,
)
from repro.core.homogeneity import is_homogeneous
from repro.core.predicates import (
    And,
    Apply,
    ClassInstances,
    ClassValues,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    ValueExpr,
    ValueUnion,
)

__all__ = [
    "static_classes",
    "is_linear",
    "is_statically_homogeneous",
    "predicate_classes",
    "edge_scannable",
    "value_index_probe",
]


def static_classes(expr: Expr) -> frozenset[str]:
    """Classes that may appear in the expression's result patterns."""
    if isinstance(expr, ClassExtent):
        return frozenset({expr.name})
    if isinstance(expr, Literal):
        return expr.value.classes()
    if isinstance(expr, (Associate, Complement, NonAssociate, Intersect, Union)):
        return static_classes(expr.left) | static_classes(expr.right)
    if isinstance(expr, (Difference, Divide)):
        return static_classes(expr.left)
    if isinstance(expr, Select):
        return static_classes(expr.operand)
    if isinstance(expr, Project):
        out: set[str] = set()
        for template in expr.templates:
            out.update(template.classes)
        return frozenset(out)
    raise TypeError(f"unknown expression node {expr!r}")  # pragma: no cover


def is_linear(expr: Expr) -> bool:
    """Whether the expression is a *linear* chain in the paper's sense.

    Linear = class extents joined by Associates over pairwise-distinct
    classes, optionally wrapped in Selects.  Linear expressions evaluate
    to homogeneous association-sets with one instance per chain class.
    """
    return _linear_classes(expr) is not None


def _linear_classes(expr: Expr) -> frozenset[str] | None:
    if isinstance(expr, ClassExtent):
        return frozenset({expr.name})
    if isinstance(expr, Select):
        return _linear_classes(expr.operand)
    if isinstance(expr, Associate):
        left = _linear_classes(expr.left)
        right = _linear_classes(expr.right)
        if left is None or right is None or left & right:
            return None
        return left | right
    return None


def is_statically_homogeneous(expr: Expr) -> bool:
    """Conservative static homogeneity check (used by rewrite conditions).

    Literals are inspected directly; everything else falls back to
    linearity.  ``False`` means "cannot prove", not "heterogeneous".
    """
    if isinstance(expr, Literal):
        return is_homogeneous(expr.value)
    return is_linear(expr)


def predicate_classes(predicate: Predicate) -> frozenset[str]:
    """Classes a predicate reads — the select-pushdown condition."""
    out: set[str] = set()
    _collect_predicate(predicate, out)
    return frozenset(out)


def _collect_predicate(predicate: Predicate, out: set[str]) -> None:
    if isinstance(predicate, Comparison):
        _collect_value(predicate.left, out)
        _collect_value(predicate.right, out)
    elif isinstance(predicate, (And, Or)):
        for operand in predicate.operands:
            _collect_predicate(operand, out)
    elif isinstance(predicate, Not):
        _collect_predicate(predicate.operand, out)
    else:
        reads = getattr(predicate, "reads_classes", None)
        if reads is not None:
            out.update(reads())
        else:
            # Callbacks and unknown predicates may read anything: poison
            # the analysis with a wildcard callers treat as "all classes".
            out.add("*")


def edge_scannable(expr: Expr, graph) -> bool:
    """Whether an Associate is answerable straight from the edge list.

    True when both operands are bare class extents matching the resolved
    association's two (distinct) end classes: the result is then exactly
    one two-vertex pattern per association edge, which the physical layer
    reads from its adjacency index and the cost model prices as a single
    pass over the edges.
    """
    if not isinstance(expr, Associate):
        return False
    if not (
        isinstance(expr.left, ClassExtent) and isinstance(expr.right, ClassExtent)
    ):
        return False
    try:
        _, a_cls, b_cls = expr.resolve(graph)
    except Exception:
        return False
    return (
        expr.left.name == a_cls and expr.right.name == b_cls and a_cls != b_cls
    )


def value_index_probe(expr: Expr):
    """Match ``σ(X)[X = const]`` (either comparison order).

    Returns ``(class, value)`` when the Select over a bare extent is
    answerable from the per-class value index — an existential equality
    between the class's values and a non-None constant — else ``None``.
    """
    if not isinstance(expr, Select) or not isinstance(expr.operand, ClassExtent):
        return None
    predicate = expr.predicate
    if not isinstance(predicate, Comparison) or predicate.op != "=":
        return None
    if predicate.quantifier != "exists":
        return None
    left, right = predicate.left, predicate.right
    if isinstance(left, Const) and isinstance(right, ClassValues):
        left, right = right, left
    if not (isinstance(left, ClassValues) and isinstance(right, Const)):
        return None
    if left.cls != expr.operand.name or right.value is None:
        return None
    return left.cls, right.value


def _collect_value(value: ValueExpr, out: set[str]) -> None:
    if isinstance(value, (ClassValues, ClassInstances)):
        out.add(value.cls)
    elif isinstance(value, Apply):
        _collect_value(value.operand, out)
    elif isinstance(value, ValueUnion):
        for operand in value.operands:
            _collect_value(operand, out)
