"""Parallel decomposition of A-Union plans (§4).

The paper singles out the rewritten Figure 10 form as "particularly
suitable for a parallel system, since it is an A-Union of two
sub-expressions, each of which can be evaluated independently and produces
a homogeneous association-set with simpler structure".

:func:`decompose_unions` splits a plan into its maximal top-level A-Union
branches; :func:`evaluate_parallel` evaluates the branches concurrently
and unions the results.  (CPython threads do not speed up this pure-Python
workload — the point is the *correct independent decomposition* the paper
describes; on the paper's parallel hardware each branch would go to its
own processor.)
"""

from __future__ import annotations

from concurrent.futures import Executor, ThreadPoolExecutor

from repro.core.assoc_set import AssociationSet
from repro.core.expression import Expr, Union
from repro.core.operators import a_union
from repro.objects.graph import ObjectGraph

__all__ = ["decompose_unions", "evaluate_parallel"]


def decompose_unions(expr: Expr) -> list[Expr]:
    """The maximal top-level A-Union branches of ``expr``.

    A non-Union root yields ``[expr]``.  Branches are independent: A-Union
    just lumps their results together (§4's observation a)), so they can be
    evaluated in any order or concurrently.
    """
    if isinstance(expr, Union):
        return decompose_unions(expr.left) + decompose_unions(expr.right)
    return [expr]


def evaluate_parallel(
    expr: Expr,
    graph: ObjectGraph,
    executor: Executor | None = None,
    max_workers: int = 4,
) -> AssociationSet:
    """Evaluate ``expr`` by running its A-Union branches concurrently."""
    branches = decompose_unions(expr)
    if len(branches) == 1:
        return expr.evaluate(graph)
    if executor is not None:
        return _gather(executor, branches, graph)
    # Own the pool through a context manager so it is shut down on every
    # exit path; a failed branch additionally cancels the not-yet-started
    # ones instead of letting them run to completion for nothing.
    with ThreadPoolExecutor(max_workers) as pool:
        return _gather(pool, branches, graph)


def _gather(pool: Executor, branches: list[Expr], graph: ObjectGraph) -> AssociationSet:
    futures = [pool.submit(branch.evaluate, graph) for branch in branches]
    result = AssociationSet.empty()
    try:
        for future in futures:
            result = a_union(result, future.result())
    except BaseException:
        for future in futures:
            future.cancel()
        raise
    return result
