"""Statistics catalog and execution feedback for data-driven planning.

§4 of the paper motivates the algebraic laws as a search space of
alternative expressions "with different performances" — but ranking those
alternatives well requires knowing the data.  This module holds the two
knowledge sources the :class:`~repro.optimizer.cost.CostModel` consumes:

* :class:`StatisticsCatalog` — ``ANALYZE``-style measured statistics:
  per-class extent counts and distinct counts, equi-depth histograms over
  primitive-class values, and per-association fan-out *distributions*
  (mean, quantiles, max, participation and a degree-collision probability
  for both the regular and the complement fan-out — not just means).
  Populated by :meth:`StatisticsCatalog.analyze` (full scan, or sampled
  with ``sample=N``), kept fresh incrementally from the same mutation
  events that :class:`~repro.exec.indexes.IndexManager` consumes, and
  stamped with a monotonically increasing ``version``.

* :class:`FeedbackStore` — actual cardinalities per canonical sub-plan,
  recorded by the executor as queries run (the numbers ``EXPLAIN
  ANALYZE`` pairs with estimates).  The cost model consults feedback
  before estimating, so a previously executed sub-plan is costed with its
  *true* cardinality and a mis-planned query converges after one run.

Both structures are advisory: dropping them never changes results, only
plan choice.  Every refresh notifies subscribers (the plan cache drops
plan choices stamped with an older stats version for the refreshed
classes) and bumps ``repro_stats_refresh_total`` / ``repro_stats_version``.
"""

from __future__ import annotations

import random
import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable

from repro.objects.graph import ObjectGraph
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "AssociationStats",
    "ClassStats",
    "EquiDepthHistogram",
    "FanoutSummary",
    "FeedbackEntry",
    "FeedbackStore",
    "StatisticsCatalog",
]

#: Dependency wildcard (mirrors :data:`repro.exec.cache.ANY` without the
#: import — keeping this module free of :mod:`repro.exec` imports avoids a
#: package-initialization cycle).
ANY = "*"

#: Default number of equi-depth histogram buckets.
DEFAULT_BINS = 16


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Bin:
    """One equi-depth bucket: closed value range, count, distinct count."""

    lo: Any
    hi: Any
    count: int
    distinct: int


class EquiDepthHistogram:
    """Equi-depth histogram over one primitive class's values.

    Buckets hold roughly equal counts, but a run of identical values is
    never split across buckets — a heavy hitter therefore occupies whole
    buckets with ``lo == hi`` and its equality selectivity is *exact*,
    which is the property that makes equi-depth robust under skew.
    """

    def __init__(self, bins: tuple[_Bin, ...], total: int, distinct: int) -> None:
        self.bins = bins
        self.total = total
        self.distinct = distinct

    @classmethod
    def build(
        cls, values: Iterable[Any], bins: int = DEFAULT_BINS
    ) -> "EquiDepthHistogram | None":
        """Build from raw values; ``None`` when the values do not sort."""
        vals = list(values)
        if not vals:
            return cls((), 0, 0)
        try:
            vals.sort()
        except TypeError:
            return None
        total = len(vals)
        target = max(1, -(-total // bins))  # ceil division
        out: list[_Bin] = []
        distinct_total = 0
        i = 0
        while i < total:
            j = min(i + target, total)
            while j < total and vals[j] == vals[j - 1]:
                j += 1  # keep runs of one value inside one bucket
            chunk = vals[i:j]
            # runs-in-sorted-order distinct count (no hashing required)
            distinct = 1 + sum(
                1 for k in range(1, len(chunk)) if chunk[k] != chunk[k - 1]
            )
            out.append(_Bin(chunk[0], chunk[-1], len(chunk), distinct))
            distinct_total += distinct
            i = j
        return cls(tuple(out), total, distinct_total)

    def selectivity_eq(self, value: Any) -> float | None:
        """Estimated fraction of values equal to ``value``.

        ``None`` when the value is not comparable with the bucket bounds
        (caller falls back to the uniform default).
        """
        if self.total == 0:
            return 0.0
        matching = 0.0
        try:
            for b in self.bins:
                if b.lo <= value <= b.hi:
                    # lo == hi means the bucket is a pure run of one value
                    # (necessarily == value here): exact. Mixed bucket:
                    # assume the bucket's distinct values share its count.
                    matching += b.count if b.lo == b.hi else b.count / b.distinct
        except TypeError:
            return None
        return matching / self.total

    def selectivity_cmp(self, op: str, value: Any) -> float | None:
        """Estimated fraction satisfying ``v <op> value`` for an ordering op."""
        if self.total == 0:
            return 0.0
        if op == "=":
            return self.selectivity_eq(value)
        if op == "!=":
            eq = self.selectivity_eq(value)
            return None if eq is None else 1.0 - eq
        if op not in ("<", "<=", ">", ">="):
            return None
        below = 0.0  # estimated count with v < value
        at = 0.0  # estimated count with v == value
        try:
            for b in self.bins:
                if b.hi < value:
                    below += b.count
                elif b.lo > value:
                    continue
                elif b.lo == b.hi:
                    at += b.count
                else:
                    frac = self._interpolate(b, value)
                    below += b.count * frac
                    at += b.count / b.distinct
        except TypeError:
            return None
        at = min(at, self.total - below)
        if op == "<":
            sel = below / self.total
        elif op == "<=":
            sel = (below + at) / self.total
        elif op == ">=":
            sel = 1.0 - below / self.total
        else:  # ">"
            sel = 1.0 - (below + at) / self.total
        return min(max(sel, 0.0), 1.0)

    @staticmethod
    def _interpolate(b: _Bin, value: Any) -> float:
        """Fraction of a mixed bucket strictly below ``value``."""
        if isinstance(b.lo, (int, float)) and isinstance(b.hi, (int, float)) and isinstance(value, (int, float)):
            width = float(b.hi) - float(b.lo)
            if width > 0:
                return min(max((float(value) - float(b.lo)) / width, 0.0), 1.0)
        return 0.5  # non-numeric bounds: assume the middle

    def __len__(self) -> int:
        return len(self.bins)

    def __str__(self) -> str:
        return f"EquiDepthHistogram({len(self.bins)} bucket(s), {self.total} value(s))"


# ----------------------------------------------------------------------
# per-class / per-association statistics
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ClassStats:
    """Measured statistics of one class extent."""

    cls: str
    count: int
    distinct: int
    histogram: EquiDepthHistogram | None
    sampled: bool = False


@dataclass(frozen=True)
class FanoutSummary:
    """Fan-out distribution of one association, seen from one end class.

    ``collision`` is the probability that two independent edge-endpoint
    draws land on the same instance (the Herfindahl index of the degree
    distribution): ``sum((deg_i / edges)^2)``.  Uniform participation
    gives ``~1/|extent|`` — the System-R assumption — while concentrated
    participation gives a much larger value, which is what A-Intersect
    matching estimates need on skewed data.
    """

    cls: str
    mean: float
    p50: float
    p90: float
    max: float
    participating: int
    collision: float
    complement_mean: float
    complement_p50: float
    complement_p90: float


@dataclass(frozen=True)
class AssociationStats:
    """Measured statistics of one association (both directions)."""

    key: tuple[str, str, str]
    edges: int
    directions: dict[str, FanoutSummary] = field(default_factory=dict)


def _quantile(sorted_values: list[float], zeros: int, q: float) -> float:
    """Quantile over ``zeros`` implicit zeros followed by sorted values."""
    n = zeros + len(sorted_values)
    if n == 0:
        return 0.0
    index = min(int(q * (n - 1)), n - 1)
    if index < zeros:
        return 0.0
    return float(sorted_values[index - zeros])


# ----------------------------------------------------------------------
# execution feedback
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FeedbackEntry:
    """One observed actual cardinality for a canonical sub-plan."""

    actual: int
    deps: frozenset[str]
    stats_version: int


class FeedbackStore:
    """Bounded, thread-safe map: canonical sub-plan → actual cardinality.

    Keys are canonical expressions (hashable); values remember the class
    dependencies of the sub-plan so mutation events can invalidate the
    actuals they made stale.  Insertion order doubles as the eviction
    order (oldest first) once ``capacity`` is exceeded.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        #: Stats version stamped onto new entries (kept current by the
        #: owning catalog; standalone stores stamp 0).
        self.stats_version = 0
        self._entries: "OrderedDict[Hashable, FeedbackEntry]" = OrderedDict()
        self._lock = threading.Lock()

    def record(
        self, key: Hashable, actual: int, deps: frozenset[str] = frozenset()
    ) -> None:
        entry = FeedbackEntry(int(actual), deps, self.stats_version)
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def lookup(self, key: Hashable) -> FeedbackEntry | None:
        with self._lock:
            return self._entries.get(key)

    def invalidate_classes(self, classes: Iterable[str]) -> int:
        """Drop entries depending on any of ``classes``; return the count."""
        touched = set(classes)
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if ANY in entry.deps or entry.deps & touched
            ]
            for key in stale:
                del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __str__(self) -> str:
        return f"FeedbackStore({len(self._entries)} entr(y/ies))"


# ----------------------------------------------------------------------
# the catalog
# ----------------------------------------------------------------------


class StatisticsCatalog:
    """Measured statistics of one object graph, with incremental upkeep.

    Until :meth:`analyze` has run (``version == 0``) the catalog is
    dormant and consumers fall back to the uniformity model.  After a
    scan, mutation events accumulate per-class staleness counters; once a
    class has absorbed more than ``stale_fraction`` of its analyzed
    count (floored at ``min_stale_events``), that class is automatically
    re-analyzed — bumping the version and notifying subscribers, exactly
    like an explicit targeted :meth:`analyze`.
    """

    def __init__(
        self,
        graph: ObjectGraph,
        metrics: MetricsRegistry | None = None,
        stale_fraction: float = 0.25,
        min_stale_events: int = 8,
        histogram_bins: int = DEFAULT_BINS,
    ) -> None:
        self.graph = graph
        self.schema = graph.schema
        self.metrics = metrics
        self.stale_fraction = stale_fraction
        self.min_stale_events = min_stale_events
        self.histogram_bins = histogram_bins
        self.version = 0
        self.feedback = FeedbackStore()
        self._classes: dict[str, ClassStats] = {}
        self._assocs: dict[tuple[str, str, str], AssociationStats] = {}
        self._dirty: Counter = Counter()
        self._subscribers: list[Callable[[frozenset[str]], None]] = []
        #: Optional column-store provider (duck-typed: ``is_materialized``
        #: + ``values_snapshot``).  Attached by the executor; when a
        #: class's typed column is materialized, histogram/distinct
        #: builders read its values from the column instead of boxing
        #: every object, and auto-refresh rescans become column-only.
        self._columns = None
        if metrics is not None:
            self._m_refresh = metrics.counter(
                "repro_stats_refresh_total",
                "Statistics (re-)analyze passes, by reason",
            )
            self._m_version = metrics.gauge(
                "repro_stats_version", "Current statistics catalog version"
            )
            self._m_version.set(0)

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------

    @property
    def analyzed(self) -> bool:
        """Whether at least one ANALYZE pass has run."""
        return self.version > 0

    def subscribe(self, fn: Callable[[frozenset[str]], None]) -> None:
        """Call ``fn(refreshed_classes)`` after every (re-)analyze pass."""
        self._subscribers.append(fn)

    def attach_columns(self, provider) -> None:
        """Attach a :class:`~repro.exec.columns.ColumnStore` (duck-typed).

        Purely an accelerator: analyze passes over a class whose column is
        materialized read values straight out of the typed column, and the
        staleness auto-refresh downgrades to a column-only rescan for such
        classes (association fan-outs are left to the normal thresholds).
        """
        self._columns = provider

    def analyze(
        self,
        sample: int | None = None,
        seed: int = 0,
        classes: Iterable[str] | None = None,
        reason: str = "analyze",
    ) -> int:
        """Scan the graph (optionally sampled) and refresh the catalog.

        ``classes`` restricts the pass to those classes (and the
        associations incident to them); the statistics of every other
        class — and any plan choice depending only on them — survive.
        Returns the new stats version.
        """
        rng = random.Random(seed)
        if classes is None:
            targets = {cdef.name for cdef in self.schema.classes}
        else:
            targets = set(classes)
        for cls in sorted(targets):
            if self.schema.has_class(cls):
                self._classes[cls] = self._analyze_class(cls, sample, rng)
        for assoc in self.schema.associations:
            if assoc.left in targets or assoc.right in targets:
                self._assocs[assoc.key] = self._analyze_association(
                    assoc, sample, rng
                )
        for cls in targets:
            self._dirty.pop(cls, None)
        self.version += 1
        self.feedback.stats_version = self.version
        if self.metrics is not None:
            self._m_refresh.inc(reason=reason)
            self._m_version.set(self.version)
        refreshed = frozenset(targets)
        for fn in self._subscribers:
            fn(refreshed)
        return self.version

    def _analyze_class(
        self, cls: str, sample: int | None, rng: random.Random
    ) -> ClassStats:
        extent = self.graph.extent(cls)
        count = len(extent)
        if not self.schema.class_def(cls).is_primitive:
            return ClassStats(cls, count, count, None)
        sampled = sample is not None and count > sample
        values = None
        if not sampled and self._columns is not None:
            # A materialized column already holds every live value boxed
            # once — scan it instead of re-boxing through the object graph.
            values = self._columns.values_snapshot(cls)
        if values is None:
            instances = sorted(extent)
            if sampled:
                instances = rng.sample(instances, sample)
            values = [self.graph.value(i) for i in instances]
        histogram = EquiDepthHistogram.build(values, self.histogram_bins)
        distinct = len(set(map(repr, values)))
        return ClassStats(cls, count, distinct, histogram, sampled)

    def _analyze_association(
        self, assoc, sample: int | None, rng: random.Random
    ) -> AssociationStats:
        edges = self.graph.edge_count(assoc)
        degrees: dict[str, Counter] = {assoc.left: Counter(), assoc.right: Counter()}
        for a, b in self.graph.edges(assoc):
            degrees[assoc.left][a] += 1
            degrees[assoc.right][b] += 1
        directions: dict[str, FanoutSummary] = {}
        for cls, opposite in ((assoc.left, assoc.right), (assoc.right, assoc.left)):
            directions[cls] = self._fanout_summary(
                cls, opposite, degrees[cls], edges, sample, rng
            )
        return AssociationStats(assoc.key, edges, directions)

    def _fanout_summary(
        self,
        cls: str,
        opposite: str,
        degree: Counter,
        edges: int,
        sample: int | None,
        rng: random.Random,
    ) -> FanoutSummary:
        n_src = self.graph.extent_size(cls)
        sizes = sorted(degree.values())
        if sample is not None and len(sizes) > sample:
            sizes = sorted(rng.sample(sizes, sample))
        participating = len(degree)
        zeros = max(n_src - participating, 0)
        mean = edges / n_src if n_src else 0.0
        p50 = _quantile(sizes, zeros, 0.5)
        p90 = _quantile(sizes, zeros, 0.9)
        p10 = _quantile(sizes, zeros, 0.1)
        mx = float(sizes[-1]) if sizes else 0.0
        deg_total = sum(sizes)
        collision = (
            sum((d / deg_total) ** 2 for d in sizes) if deg_total else 0.0
        )
        opp = float(self.graph.extent_size(opposite))
        return FanoutSummary(
            cls=cls,
            mean=mean,
            p50=p50,
            p90=p90,
            max=mx,
            participating=participating,
            collision=collision,
            complement_mean=max(opp - mean, 0.0),
            complement_p50=max(opp - p50, 0.0),
            complement_p90=max(opp - p10, 0.0),
        )

    # ------------------------------------------------------------------
    # incremental upkeep
    # ------------------------------------------------------------------

    def apply(self, event) -> None:
        """Fold one mutation event into the staleness accounting.

        Dormant catalogs ignore events entirely.  Analyzed ones count
        events per touched class and re-analyze a class (auto-refresh)
        once its counter crosses the staleness threshold.
        """
        if not self.analyzed:
            return
        touched = {i.cls for i in event.instances}
        self.feedback.invalidate_classes(touched)
        for cls in touched:
            self._dirty[cls] += 1
        stale = sorted(cls for cls in touched if self._dirty[cls] >= self._threshold(cls))
        if not stale:
            return
        # Classes whose typed column is materialized get a targeted cheap
        # rescan — one pass over the column's live values, no association
        # re-analysis (fan-outs keep their own staleness accounting).
        columnar = [cls for cls in stale if self._column_backed(cls)]
        rest = [cls for cls in stale if cls not in columnar]
        if columnar:
            self._rescan_columns(columnar)
        if rest:
            self.analyze(classes=rest, reason="auto")

    def _column_backed(self, cls: str) -> bool:
        """Whether ``cls`` can be auto-refreshed from its typed column."""
        return (
            self._columns is not None
            and self.schema.has_class(cls)
            and self.schema.class_def(cls).is_primitive
            and self._columns.is_materialized(cls)
        )

    def _rescan_columns(self, classes: list[str]) -> int:
        """Column-only re-analyze: rebuild class stats from live column
        values, skip the association scans, and publish a new version the
        same way :meth:`analyze` does (subscribers, metrics, dirty reset).
        """
        for cls in classes:
            values = self._columns.values_snapshot(cls)
            if values is None:  # raced a reset: fall back to the full path
                self._classes[cls] = self._analyze_class(cls, None, random.Random(0))
            else:
                histogram = EquiDepthHistogram.build(values, self.histogram_bins)
                distinct = len(set(map(repr, values)))
                self._classes[cls] = ClassStats(
                    cls, len(values), distinct, histogram
                )
            self._dirty.pop(cls, None)
        self.version += 1
        self.feedback.stats_version = self.version
        if self.metrics is not None:
            self._m_refresh.inc(reason="auto-column")
            self._m_version.set(self.version)
        refreshed = frozenset(classes)
        for fn in self._subscribers:
            fn(refreshed)
        return self.version

    def _threshold(self, cls: str) -> int:
        stats = self._classes.get(cls)
        base = stats.count if stats is not None else self.graph.extent_size(cls)
        return max(self.min_stale_events, int(self.stale_fraction * base))

    def on_out_of_band(self) -> None:
        """The graph moved without events: feedback is untrustworthy and
        every statistic is suspect — clear the former, re-analyze if the
        catalog was live (mirrors the executor's full index rebuild)."""
        self.feedback.clear()
        if self.analyzed:
            self.analyze(reason="out-of-band")

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def class_stats(self, cls: str) -> ClassStats | None:
        return self._classes.get(cls)

    def histogram(self, cls: str) -> EquiDepthHistogram | None:
        stats = self._classes.get(cls)
        return stats.histogram if stats is not None else None

    def association_stats(self, key: tuple[str, str, str]) -> AssociationStats | None:
        return self._assocs.get(key)

    def fanout_summary(
        self, a_cls: str, b_cls: str, name: str | None = None
    ) -> FanoutSummary | None:
        """The fan-out distribution of ``R(A, B)`` seen from ``a_cls``."""
        try:
            assoc = self.schema.resolve(a_cls, b_cls, name)
        except Exception:
            return None
        stats = self._assocs.get(assoc.key)
        return stats.directions.get(a_cls) if stats is not None else None

    def match_probability(self, cls: str) -> float | None:
        """P(two independent edge-endpoint draws pick the same instance).

        Aggregated over every analyzed association incident to ``cls``,
        weighted by edge count — the overlap statistic A-Intersect
        matching estimates use.  ``None`` when no incident association
        has been analyzed (or none has edges).
        """
        acc = 0.0
        weight = 0
        for stats in self._assocs.values():
            direction = stats.directions.get(cls)
            if direction is None or stats.edges == 0:
                continue
            acc += stats.edges * direction.collision
            weight += stats.edges
        if weight == 0:
            return None
        return acc / weight

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """A human-readable statistics table (the ``\\stats`` view)."""
        lines = [
            f"StatisticsCatalog version {self.version} — "
            f"{len(self._classes)} class(es), {len(self._assocs)} association(s), "
            f"{len(self.feedback)} feedback entr(y/ies)"
        ]
        if not self.analyzed:
            lines.append("  (not analyzed yet — run ANALYZE)")
            return "\n".join(lines)
        lines.append(
            f"  {'class':<14} {'count':>7} {'distinct':>8} "
            f"{'hist.buckets':>12} {'sampled':>7}"
        )
        for cls in sorted(self._classes):
            s = self._classes[cls]
            buckets = len(s.histogram) if s.histogram is not None else 0
            lines.append(
                f"  {s.cls:<14} {s.count:>7} {s.distinct:>8} "
                f"{buckets:>12} {'yes' if s.sampled else 'no':>7}"
            )
        lines.append(
            f"  {'association':<22} {'from':<12} {'edges':>6} {'mean':>6} "
            f"{'p50':>5} {'p90':>5} {'max':>5} {'comp.mean':>9} {'collision':>9}"
        )
        for key in sorted(self._assocs):
            stats = self._assocs[key]
            label = f"{key[0]}—{key[1]}[{key[2]}]"
            for cls in sorted(stats.directions):
                d = stats.directions[cls]
                lines.append(
                    f"  {label:<22} {cls:<12} {stats.edges:>6} {d.mean:>6.2f} "
                    f"{d.p50:>5.1f} {d.p90:>5.1f} {d.max:>5.0f} "
                    f"{d.complement_mean:>9.1f} {d.collision:>9.4f}"
                )
                label = ""
        return "\n".join(lines)

    def __str__(self) -> str:
        return (
            f"StatisticsCatalog(v{self.version}, {len(self._classes)} class(es), "
            f"{len(self._assocs)} association(s))"
        )
