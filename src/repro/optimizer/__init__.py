"""Query optimizer: law-based rewriting + cardinality cost model (§4).

The paper's §4 argues that the operators' mathematical properties "provide
ways for transforming a query expression into alternative expressions
which produce the same result but with different performances", and works
the Figure 10 example.  This package makes that concrete:

* :mod:`repro.optimizer.analysis` — static class sets, linearity and
  homogeneity of expressions (the rewrite side conditions);
* :mod:`repro.optimizer.rewrites` — one rewrite rule per algebraic law,
  applicable at any subtree;
* :mod:`repro.optimizer.cost` — a cardinality/cost model fed by object
  graph statistics;
* :mod:`repro.optimizer.stats` — the ANALYZE-style statistics catalog
  (histograms, fan-out distributions, execution feedback) behind it;
* :mod:`repro.optimizer.planner` — bounded exploration of the rewrite
  space and cheapest-plan selection.
"""

from repro.optimizer.analysis import is_statically_homogeneous, static_classes
from repro.optimizer.cost import CostModel, Estimate
from repro.optimizer.planner import Optimizer, PlanCandidate
from repro.optimizer.rewrites import SAFE_RULES, UNSAFE_RULES, RewriteRule
from repro.optimizer.stats import FeedbackStore, StatisticsCatalog

__all__ = [
    "Optimizer",
    "PlanCandidate",
    "CostModel",
    "Estimate",
    "StatisticsCatalog",
    "FeedbackStore",
    "RewriteRule",
    "SAFE_RULES",
    "UNSAFE_RULES",
    "static_classes",
    "is_statically_homogeneous",
]
