"""Plan exploration and selection.

The planner enumerates the rewrite closure of a query (bounded breadth-
first search, applying every rule at every subtree), costs each candidate
with the :class:`~repro.optimizer.cost.CostModel`, and returns the
cheapest.  This mirrors §4's framing: the laws "provide ways for
transforming a query expression into alternative expressions which produce
the same result but with different performances", and selectivity decides
among them.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from repro.core.expression import Expr
from repro.objects.graph import ObjectGraph
from repro.obs.metrics import MetricsRegistry
from repro.optimizer.cost import CostModel, Estimate
from repro.optimizer.rewrites import SAFE_RULES, RewriteRule, children, rebuild

__all__ = ["PlanCandidate", "Optimizer"]


@dataclass(frozen=True)
class PlanCandidate:
    """One equivalent expression with its estimate and derivation."""

    expr: Expr
    estimate: Estimate
    derivation: tuple[str, ...]

    def __str__(self) -> str:
        rules = " → ".join(self.derivation) if self.derivation else "(original)"
        return (
            f"cost={self.estimate.cost:12.1f} card={self.estimate.cardinality:10.1f}"
            f"  {self.expr}    via {rules}"
        )


class Optimizer:
    """Bounded-search optimizer over one object graph."""

    def __init__(
        self,
        graph: ObjectGraph,
        rules: tuple[RewriteRule, ...] = SAFE_RULES,
        max_candidates: int = 200,
        metrics: MetricsRegistry | None = None,
        cost_model: CostModel | None = None,
    ) -> None:
        self.graph = graph
        self.rules = rules
        self.max_candidates = max_candidates
        self.cost_model = cost_model if cost_model is not None else CostModel(graph)
        self.metrics = metrics
        if metrics is not None:
            self._m_plans = metrics.counter(
                "repro_plans_considered_total", "Candidate plans costed"
            )
            self._m_rewrites = metrics.counter(
                "repro_rewrites_applied_total", "Accepted rewrites, by rule"
            )
            self._m_planning = metrics.histogram(
                "repro_planning_seconds", "Wall-clock seconds per optimize() call"
            )

    # ------------------------------------------------------------------
    # rewrite closure
    # ------------------------------------------------------------------

    def _rewrites_at_any_subtree(self, expr: Expr, rule: RewriteRule):
        """Yield every expression obtained by applying ``rule`` once."""
        root_result = rule.apply(expr)
        if root_result is not None:
            yield root_result
        kids = children(expr)
        for index, child in enumerate(kids):
            for rewritten_child in self._rewrites_at_any_subtree(child, rule):
                new_kids = kids[:index] + (rewritten_child,) + kids[index + 1 :]
                yield rebuild(expr, new_kids)

    def equivalents(self, expr: Expr) -> list[PlanCandidate]:
        """The bounded rewrite closure of ``expr`` (original included)."""
        seen: dict[Expr, tuple[str, ...]] = {expr: ()}
        queue: deque[Expr] = deque([expr])
        while queue and len(seen) < self.max_candidates:
            current = queue.popleft()
            derivation = seen[current]
            for rule in self.rules:
                for candidate in self._rewrites_at_any_subtree(current, rule):
                    if candidate in seen:
                        continue
                    seen[candidate] = derivation + (rule.name,)
                    queue.append(candidate)
                    if self.metrics is not None:
                        self._m_rewrites.inc(rule=rule.name)
                    if len(seen) >= self.max_candidates:
                        break
        if self.metrics is not None:
            self._m_plans.inc(len(seen))
        return [
            PlanCandidate(e, self.cost_model.estimate(e), derivation)
            for e, derivation in seen.items()
        ]

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------

    def optimize(self, expr: Expr) -> PlanCandidate:
        """The cheapest equivalent plan (may be the original)."""
        started = time.perf_counter()
        candidates = self.equivalents(expr)
        best = min(candidates, key=lambda candidate: candidate.estimate.cost)
        if self.metrics is not None:
            self._m_planning.observe(time.perf_counter() - started)
        return best

    def explain(self, expr: Expr, top: int = 10) -> str:
        """A cost-ordered table of candidate plans for inspection.

        Includes a per-node estimate breakdown of the cheapest plan so a
        bad choice is diagnosable: each node reports where its cardinality
        came from (``exact`` / ``histogram`` / ``feedback`` / ``uniform``).
        """
        candidates = sorted(
            self.equivalents(expr), key=lambda c: c.estimate.cost
        )
        lines = [f"{len(candidates)} candidate plan(s); cheapest first:"]
        lines += [f"  {candidate}" for candidate in candidates[:top]]
        lines.append("cheapest plan estimates (per node):")
        lines += self._node_estimates(candidates[0].expr)
        return "\n".join(lines)

    def _node_estimates(self, expr: Expr, depth: int = 0) -> list[str]:
        estimate = self.cost_model.estimate(expr)
        lines = [
            f"  card={estimate.cardinality:10.1f}  src={estimate.source:<9}"
            f"  {'  ' * depth}{expr}"
        ]
        for child in expr.children():
            lines += self._node_estimates(child, depth + 1)
        return lines
