"""Engine-wide metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a named collection of metrics in the
Prometheus data model: monotonically increasing :class:`Counter`\\ s,
up-and-down :class:`Gauge`\\ s, and :class:`Histogram`\\ s with fixed
bucket boundaries.  Every metric supports label dimensions (``kind=``,
``rule=``, ``cls=``...) keyed per label-set, so one counter tracks e.g.
mutation events *by kind* without a metric per kind.

The engine facade, the optimizer, the rule engine and the object graph
are all instrumented against a registry (see ``docs/observability.md``
for the full metric inventory); :func:`repro.obs.export.metrics_to_prometheus`
renders the exposition text.

Metrics are thread-safe (a lock per metric) because parallel plan
evaluation (:mod:`repro.optimizer.parallel`) touches the object graph's
counters from worker threads.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Iterator

__all__ = [
    "Counter",
    "CounterChild",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_BUCKETS",
    "CARDINALITY_BUCKETS",
    "Q_ERROR_BUCKETS",
]

#: Default histogram buckets for wall-clock seconds (sub-ms to seconds).
TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Default histogram buckets for result-set cardinalities.
CARDINALITY_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)

#: Buckets for the cost model's estimate-vs-actual q-error (1.0 = exact).
Q_ERROR_BUCKETS = (1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 25.0, 100.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    for label in labels:
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name {label!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base of all metric types: a validated name, help text, and a lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def __str__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Counter(Metric):
    """A monotonically increasing count, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def child(self, **labels: Any) -> "CounterChild":
        """One labelled series with the label key resolved once.

        For hot paths (e.g. the WAL appending per mutation): a child's
        :meth:`~CounterChild.inc` skips per-call label validation and
        sorting.
        """
        return CounterChild(self, _label_key(labels))

    def value(self, **labels: Any) -> float:
        """Current value of one labelled series (0.0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every labelled series."""
        return sum(self._values.values())

    def samples(self) -> list[tuple[dict[str, str], float]]:
        """``(labels, value)`` pairs, sorted by label-set."""
        with self._lock:
            return [(dict(key), value) for key, value in sorted(self._values.items())]


class CounterChild:
    """One pre-resolved labelled series of a :class:`Counter`."""

    __slots__ = ("_counter", "_key")

    def __init__(self, counter: Counter, key: LabelKey) -> None:
        self._counter = counter
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        values = self._counter._values
        with self._counter._lock:
            values[self._key] = values.get(self._key, 0.0) + amount


class Gauge(Metric):
    """A value that can go up and down (live instances, live edges...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set the labelled series to ``value``."""
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` to the labelled series."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        """Subtract ``amount`` from the labelled series."""
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        """Current value of one labelled series (0.0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[tuple[dict[str, str], float]]:
        """``(labels, value)`` pairs, sorted by label-set."""
        with self._lock:
            return [(dict(key), value) for key, value in sorted(self._values.items())]


class _HistogramSeries:
    """Per-label-set histogram state: bucket counts, sum, count."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # + 1 for +Inf
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Observations bucketed against fixed upper bounds (Prometheus style).

    A value lands in the first bucket whose upper bound is >= the value
    (``le`` semantics); an implicit ``+Inf`` bucket catches the rest.
    """

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: tuple[float, ...] = TIME_BUCKETS
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name}: buckets must strictly increase")
        self.buckets = bounds
        self._series: dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation in the labelled series."""
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[index] += 1
                    break
            else:
                series.bucket_counts[-1] += 1
            series.sum += value
            series.count += 1

    def count(self, **labels: Any) -> int:
        """Number of observations in one labelled series."""
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0

    def total(self, **labels: Any) -> float:
        """Sum of observed values in one labelled series."""
        series = self._series.get(_label_key(labels))
        return series.sum if series is not None else 0.0

    def bucket_counts(self, **labels: Any) -> list[tuple[float, int]]:
        """Cumulative ``(upper-bound, count)`` pairs, ``+Inf`` last."""
        series = self._series.get(_label_key(labels))
        counts = (
            series.bucket_counts
            if series is not None
            else [0] * (len(self.buckets) + 1)
        )
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip((*self.buckets, float("inf")), counts):
            running += count
            out.append((bound, running))
        return out

    def samples(self) -> list[tuple[dict[str, str], "_HistogramSeries"]]:
        """``(labels, series)`` pairs, sorted by label-set."""
        with self._lock:
            return [(dict(key), series) for key, series in sorted(self._series.items())]


class MetricsRegistry:
    """Get-or-create home for every metric of one engine instance.

    Accessors are idempotent: asking twice for the same name returns the
    same object, so independent subsystems (database, optimizer, rules)
    can share series without coordination.  Re-registering a name as a
    different metric type raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls: type, name: str, *args: Any) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, *args)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = TIME_BUCKETS
    ) -> Histogram:
        """Get or create a histogram (``buckets`` only applies on creation)."""
        return self._get_or_create(Histogram, name, help, buckets)

    def get(self, name: str) -> Metric | None:
        """The registered metric of that name, or ``None``."""
        return self._metrics.get(name)

    def metrics(self) -> tuple[Metric, ...]:
        """Every registered metric, sorted by name."""
        return tuple(metric for _, metric in sorted(self._metrics.items()))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self.metrics())

    def __len__(self) -> int:
        return len(self._metrics)

    def __str__(self) -> str:
        return f"MetricsRegistry({len(self)} metric(s))"
