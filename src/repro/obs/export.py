"""Exporters: spans and metrics in interchange formats.

* :func:`spans_to_tree` — the human-readable annotated span tree the
  ``repro trace`` CLI prints;
* :func:`spans_to_jsonl` — one JSON object per span (ids link children to
  parents) for log pipelines;
* :func:`spans_to_chrome_trace` — Chrome ``trace_event`` JSON; load the
  dump in ``chrome://tracing`` / Perfetto for a query flamegraph;
* :func:`spans_from_wire` — the inverse of :func:`spans_to_jsonl`:
  rebuild :class:`~repro.obs.span.Span` trees from wire records, which
  is how the server client stitches a remote span tree under its local
  ``client.call`` span (see :mod:`repro.server.client`);
* :func:`metrics_to_prometheus` — Prometheus text exposition format 0.0.4;
* :func:`metrics_to_json` — the same registry as plain JSON data.

All functions accepting spans take a :class:`~repro.obs.span.Tracer`, a
single :class:`~repro.obs.span.Span`, or an iterable of root spans.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable

from repro.obs.span import OperatorKind, Span, Tracer
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "spans_to_tree",
    "spans_to_jsonl",
    "spans_to_chrome_trace",
    "spans_from_wire",
    "metrics_to_prometheus",
    "metrics_to_json",
]


def _roots(spans: "Tracer | Span | Iterable[Span]") -> list[Span]:
    if isinstance(spans, Tracer):
        return list(spans.roots)
    if isinstance(spans, Span):
        return [spans]
    return list(spans)


# ----------------------------------------------------------------------
# span exporters
# ----------------------------------------------------------------------


def spans_to_tree(spans: "Tracer | Span | Iterable[Span]") -> str:
    """Render a span forest as an indented, annotated text tree."""
    lines = [f"{'patterns':>9}  {'ms':>9}  {'self-ms':>9}  span"]
    for root in _roots(spans):
        for span, depth in root.walk():
            card = "?" if span.output_cardinality is None else span.output_cardinality
            lines.append(
                f"{card:>9}  {span.seconds * 1e3:>9.3f}  "
                f"{span.self_seconds * 1e3:>9.3f}  "
                f"{'  ' * depth}{span.name} [{span.kind.label}]"
            )
    return "\n".join(lines)


def spans_to_jsonl(spans: "Tracer | Span | Iterable[Span]") -> str:
    """One JSON object per span, pre-order; ``parent`` links by ``id``."""
    lines: list[str] = []
    next_id = 0

    def emit(span: Span, parent: int | None) -> None:
        nonlocal next_id
        span_id = next_id
        next_id += 1
        lines.append(
            json.dumps(
                {
                    "id": span_id,
                    "parent": parent,
                    "name": span.name,
                    "kind": span.kind.label,
                    "start": span.start,
                    "seconds": span.seconds,
                    "output_cardinality": span.output_cardinality,
                    "input_cardinalities": list(span.input_cardinalities),
                    "attributes": span.attributes,
                },
                default=str,
                sort_keys=True,
            )
        )
        for child in span.children:
            emit(child, span_id)

    for root in _roots(spans):
        emit(root, None)
    return "\n".join(lines)


def spans_to_chrome_trace(
    spans: "Tracer | Span | Iterable[Span]", pid: int = 1, tid: int = 1
) -> dict[str, Any]:
    """Chrome ``trace_event`` JSON (complete ``"X"`` events, µs units).

    Returns the JSON-serialisable dict; ``json.dumps`` it into a file and
    open it in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    roots = _roots(spans)
    starts = [span.start for root in roots for span, _ in root.walk()]
    origin = min(starts) if starts else 0.0
    events: list[dict[str, Any]] = []
    for root in roots:
        for span, _ in root.walk():
            events.append(
                {
                    "name": span.name,
                    "cat": span.kind.label,
                    "ph": "X",
                    "ts": (span.start - origin) * 1e6,
                    "dur": span.seconds * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "output_cardinality": span.output_cardinality,
                        "input_cardinalities": list(span.input_cardinalities),
                        **{k: str(v) for k, v in span.attributes.items()},
                    },
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


_KIND_BY_LABEL = {kind.value: kind for kind in OperatorKind}


def spans_from_wire(records: Iterable[dict[str, Any]]) -> list[Span]:
    """Rebuild span trees from :func:`spans_to_jsonl`-shaped records.

    Accepts the parsed JSON objects (``id``/``parent`` links, as a
    ``query`` response's ``trace`` field carries them) in pre-order and
    returns the root :class:`~repro.obs.span.Span`\\ s with children
    re-attached.  Unknown operator kinds map to ``OperatorKind.OTHER``;
    timing is preserved as recorded (the emitter's clock), so a caller
    merging trees from another process should rebase the roots into its
    own timeline first.
    """
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    for record in records:
        span = Span(
            name=str(record.get("name", "?")),
            kind=_KIND_BY_LABEL.get(record.get("kind"), OperatorKind.OTHER),
            start=float(record.get("start", 0.0)),
            output_cardinality=record.get("output_cardinality"),
            attributes=dict(record.get("attributes") or {}),
        )
        span.end = span.start + float(record.get("seconds", 0.0))
        by_id[record["id"]] = span
        parent = record.get("parent")
        if parent is None or parent not in by_id:
            roots.append(span)
        else:
            by_id[parent].children.append(span)
    return roots


# ----------------------------------------------------------------------
# metrics exporters
# ----------------------------------------------------------------------


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    escaped = (
        v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        for v in merged.values()
    )
    return "{" + ",".join(f'{k}="{v}"' for k, v in zip(merged, escaped)) + "}"


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.samples():
                lines.append(
                    f"{metric.name}{_format_labels(labels)} {_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for labels, series in metric.samples():
                running = 0
                for bound, count in zip(
                    (*metric.buckets, math.inf), series.bucket_counts
                ):
                    running += count
                    le = _format_labels(labels, {"le": _format_value(bound)})
                    lines.append(f"{metric.name}_bucket{le} {running}")
                lines.append(
                    f"{metric.name}_sum{_format_labels(labels)} "
                    f"{_format_value(series.sum)}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(labels)} {series.count}"
                )
    return "\n".join(lines) + "\n"


def metrics_to_json(registry: MetricsRegistry) -> dict[str, Any]:
    """A registry as plain JSON data (name → kind, help, samples)."""
    out: dict[str, Any] = {}
    for metric in registry.metrics():
        entry: dict[str, Any] = {"kind": metric.kind, "help": metric.help}
        if isinstance(metric, (Counter, Gauge)):
            entry["samples"] = [
                {"labels": labels, "value": value}
                for labels, value in metric.samples()
            ]
        elif isinstance(metric, Histogram):
            entry["buckets"] = list(metric.buckets)
            entry["samples"] = [
                {
                    "labels": labels,
                    "bucket_counts": list(series.bucket_counts),
                    "sum": series.sum,
                    "count": series.count,
                }
                for labels, series in metric.samples()
            ]
        out[metric.name] = entry
    return out
