"""Observability: span-tree tracing, metrics, exporters, EXPLAIN ANALYZE.

Three layers, all engine-agnostic and dependency-free:

* :mod:`repro.obs.span` — :class:`Tracer`/:class:`Span` trees mirroring
  expression trees, each span carrying a structured :class:`OperatorKind`,
  cardinalities, wall time and attributes;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms, instrumented across the engine
  facade, optimizer, rule engine and object graph;
* :mod:`repro.obs.export` / :mod:`repro.obs.explain` — JSON-lines and
  Chrome ``trace_event`` span exports, Prometheus text exposition, and
  :func:`explain_analyze` estimate-vs-actual plan reports.

Quickstart::

    from repro import Database, ref
    from repro.datasets import university
    from repro.obs import Tracer, spans_to_tree

    db = Database.from_dataset(university())
    tracer = Tracer()
    db.evaluate(ref("TA") * ref("Grad"), trace=tracer)
    print(spans_to_tree(tracer))
    print(db.explain_analyze("pi(TA * Grad)[TA]"))

See ``docs/observability.md`` for the span model, the metric inventory
and the ``repro trace`` / ``repro metrics`` CLI subcommands.
"""

from repro.obs.explain import ExplainNode, ExplainReport, explain_analyze
from repro.obs.export import (
    metrics_to_json,
    metrics_to_prometheus,
    spans_to_chrome_trace,
    spans_to_jsonl,
    spans_to_tree,
)
from repro.obs.metrics import (
    CARDINALITY_BUCKETS,
    Q_ERROR_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.span import OperatorKind, Span, Tracer

__all__ = [
    "OperatorKind",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_BUCKETS",
    "CARDINALITY_BUCKETS",
    "Q_ERROR_BUCKETS",
    "spans_to_tree",
    "spans_to_jsonl",
    "spans_to_chrome_trace",
    "metrics_to_prometheus",
    "metrics_to_json",
    "ExplainNode",
    "ExplainReport",
    "explain_analyze",
]
