"""Observability: span-tree tracing, metrics, exporters, EXPLAIN ANALYZE.

Four layers, all engine-agnostic and dependency-free:

* :mod:`repro.obs.span` — :class:`Tracer`/:class:`Span` trees mirroring
  expression trees, each span carrying a structured :class:`OperatorKind`,
  cardinalities, wall time and attributes;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms, instrumented across the engine
  facade, optimizer, rule engine and object graph;
* :mod:`repro.obs.export` / :mod:`repro.obs.explain` — JSON-lines and
  Chrome ``trace_event`` span exports (plus :func:`spans_from_wire`, the
  inverse used for cross-process trace stitching), Prometheus text
  exposition, and :func:`explain_analyze` estimate-vs-actual plan
  reports;
* :mod:`repro.obs.events` — :class:`EventLog`, a bounded thread-safe
  ring of typed JSON events (the operational journal the query service
  writes), and :class:`SlowQueryLog` for slow-query capture records.

Quickstart::

    from repro import Database, ref
    from repro.datasets import university
    from repro.obs import Tracer, spans_to_tree

    db = Database.from_dataset(university())
    tracer = Tracer()
    db.evaluate(ref("TA") * ref("Grad"), trace=tracer)
    print(spans_to_tree(tracer))
    print(db.explain_analyze("pi(TA * Grad)[TA]"))

See ``docs/observability.md`` for the span model, the metric inventory
and the ``repro trace`` / ``repro metrics`` CLI subcommands.
"""

from repro.obs.events import Event, EventLog, SlowQueryLog, events_to_jsonl
from repro.obs.explain import ExplainNode, ExplainReport, explain_analyze
from repro.obs.export import (
    metrics_to_json,
    metrics_to_prometheus,
    spans_from_wire,
    spans_to_chrome_trace,
    spans_to_jsonl,
    spans_to_tree,
)
from repro.obs.metrics import (
    CARDINALITY_BUCKETS,
    Q_ERROR_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.span import OperatorKind, Span, Tracer

__all__ = [
    "OperatorKind",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_BUCKETS",
    "CARDINALITY_BUCKETS",
    "Q_ERROR_BUCKETS",
    "Event",
    "EventLog",
    "SlowQueryLog",
    "events_to_jsonl",
    "spans_to_tree",
    "spans_to_jsonl",
    "spans_to_chrome_trace",
    "spans_from_wire",
    "metrics_to_prometheus",
    "metrics_to_json",
    "ExplainNode",
    "ExplainReport",
    "explain_analyze",
]
