"""Structured event log: a bounded, thread-safe ring of typed JSON events.

An :class:`EventLog` is the operational journal of a running engine or
service: every noteworthy state transition — a request starting or
finishing, an admission shed, a deadline expiry, a mutation batch, a
plan-cache invalidation, a statistics refresh, an adaptive re-plan, a
slow-query capture — lands as one :class:`Event` carrying a type, a
monotonically increasing sequence number, a wall-clock timestamp, an
optional ``trace_id`` correlating it with a distributed trace, and free-
form JSON data.

The ring is append-capped: when ``capacity`` events are held, emitting a
new one drops the oldest and bumps ``repro_events_dropped_total`` — an
operator who scrapes too rarely sees the gap in the sequence numbers and
the drop counter instead of silently missing history.  A capacity of
zero disables the log entirely (:meth:`EventLog.emit` becomes a cheap
no-op), which is what the observability-overhead benchmark compares
against.

:class:`SlowQueryLog` is a sibling ring for full slow-query capture
records (query text, chosen plan, per-node q-errors, admission state)
— bulky payloads that would crowd ordinary events out of the main ring.

Consumers: the ``events`` / ``slow_queries`` wire ops and the
``/events`` / ``/slow-queries`` HTTP admin routes of
:mod:`repro.server`, and the ``repro events`` / ``repro slow-queries``
CLI subcommands.  Like the rest of :mod:`repro.obs`, stdlib-only.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.metrics import MetricsRegistry

__all__ = ["Event", "EventLog", "SlowQueryLog", "events_to_jsonl"]


@dataclass(frozen=True)
class Event:
    """One structured log event.

    ``seq`` increases by one per emitted event (drops leave gaps visible
    to a consumer resuming from a remembered sequence number); ``ts`` is
    wall-clock Unix time, ``type`` a dotted lower-case identifier
    (``"request.finish"``, ``"admission.shed"``...), ``trace_id`` the
    distributed-trace correlation id when the triggering request carried
    one, and ``data`` the free-form JSON payload.
    """

    seq: int
    ts: float
    type: str
    data: dict[str, Any] = field(default_factory=dict)
    trace_id: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """The event as plain JSON data (the wire/export form)."""
        out: dict[str, Any] = {
            "seq": self.seq,
            "ts": round(self.ts, 6),
            "type": self.type,
            "data": self.data,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out

    def __str__(self) -> str:
        return f"Event(#{self.seq} {self.type} {self.data})"


class EventLog:
    """A thread-safe, append-capped ring of :class:`Event`\\ s.

    ``emit`` never blocks on consumers and never grows beyond
    ``capacity``; overflow drops the oldest event and counts it.  With a
    metrics registry attached, ``repro_events_total{type}`` counts
    emissions and ``repro_events_dropped_total`` counts ring overwrites.
    """

    def __init__(
        self, capacity: int = 1024, metrics: MetricsRegistry | None = None
    ) -> None:
        self.capacity = max(int(capacity), 0)
        self._events: deque[Event] = deque(maxlen=self.capacity or 1)
        self._seq = 0
        self._dropped = 0
        self._lock = threading.Lock()
        self._m_events = self._m_dropped = None
        if metrics is not None:
            self._m_events = metrics.counter(
                "repro_events_total", "Structured log events emitted, by type"
            )
            self._m_dropped = metrics.counter(
                "repro_events_dropped_total",
                "Events dropped because the ring was at capacity",
            )

    @property
    def enabled(self) -> bool:
        """Whether events are recorded at all (``capacity > 0``)."""
        return self.capacity > 0

    def emit(
        self, type: str, trace_id: str | None = None, **data: Any
    ) -> Event | None:
        """Append one event; returns it (``None`` when the log is disabled).

        Keyword arguments become the event's ``data`` payload and must be
        JSON-serialisable (enforced lazily, at export time).
        """
        if not self.enabled:
            return None
        now = time.time()
        with self._lock:
            self._seq += 1
            event = Event(self._seq, now, type, data, trace_id)
            if len(self._events) == self.capacity:
                self._events.popleft()
                self._dropped += 1
                if self._m_dropped is not None:
                    self._m_dropped.inc()
            self._events.append(event)
        if self._m_events is not None:
            self._m_events.inc(type=type)
        return event

    def events(
        self,
        type: str | None = None,
        after: int | None = None,
        limit: int | None = None,
    ) -> list[Event]:
        """A snapshot of held events, oldest first.

        ``type`` filters exactly, ``after`` returns only events with a
        sequence number strictly greater (the tail-following cursor), and
        ``limit`` keeps the *newest* N of whatever matched.
        """
        with self._lock:
            out = list(self._events)
        if type is not None:
            out = [e for e in out if e.type == type]
        if after is not None:
            out = [e for e in out if e.seq > after]
        if limit is not None and limit >= 0:
            out = out[len(out) - min(limit, len(out)):]
        return out

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently emitted event (0 = none)."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow since creation."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._events) if self.enabled else 0

    def __str__(self) -> str:
        return (
            f"EventLog({len(self)}/{self.capacity} event(s), "
            f"{self._dropped} dropped)"
        )


def events_to_jsonl(events: "EventLog | Iterable[Event]") -> str:
    """Events as JSON-lines (one compact object per line, oldest first)."""
    if isinstance(events, EventLog):
        events = events.events()
    return "\n".join(
        json.dumps(event.to_dict(), sort_keys=True, default=str)
        for event in events
    )


class SlowQueryLog:
    """A bounded ring of slow-query capture records.

    Each record is a plain JSON-ready dict (query text, plan, per-node
    q-errors, admission state — see
    :meth:`repro.server.service.QueryService`); the log only bounds and
    counts them.  ``repro_slow_queries_total{reason}`` distinguishes
    *why* a query was captured: ``latency`` (wall clock over the
    threshold) or ``q_error`` (cost-model mis-estimate over the
    threshold).
    """

    def __init__(
        self, capacity: int = 128, metrics: MetricsRegistry | None = None
    ) -> None:
        self.capacity = max(int(capacity), 1)
        self._records: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._total = 0
        self._m_slow = None
        if metrics is not None:
            self._m_slow = metrics.counter(
                "repro_slow_queries_total", "Slow queries captured, by reason"
            )

    def record(self, entry: dict[str, Any]) -> dict[str, Any]:
        """Append one capture record (its ``reason`` labels the metric)."""
        with self._lock:
            self._total += 1
            self._records.append(entry)
        if self._m_slow is not None:
            self._m_slow.inc(reason=str(entry.get("reason", "latency")))
        return entry

    def records(self, limit: int | None = None) -> list[dict[str, Any]]:
        """A snapshot, oldest first; ``limit`` keeps the newest N."""
        with self._lock:
            out = list(self._records)
        if limit is not None and limit >= 0:
            out = out[len(out) - min(limit, len(out)):]
        return out

    @property
    def total(self) -> int:
        """Slow queries captured since creation (drops included)."""
        return self._total

    def __len__(self) -> int:
        return len(self._records)

    def __str__(self) -> str:
        return f"SlowQueryLog({len(self)}/{self.capacity} record(s))"
