"""EXPLAIN ANALYZE: the plan tree with estimated vs actual cardinalities.

:func:`explain_analyze` evaluates an expression under a span tracer, then
walks the expression tree and its (structurally identical) span tree in
lock-step, pairing each node's **estimated** cardinality from the
optimizer's :class:`~repro.optimizer.cost.CostModel` with the **actual**
cardinality and wall time the evaluation observed.  The per-node *q-error*
(``max(est, act) / min(est, act)``, floored at 1 pattern) is the standard
cost-model accuracy measure; reports feed it into the
``repro_estimate_q_error`` histogram so accuracy is tracked over time.

The expression/optimizer imports happen inside the function bodies so this
module stays importable while :mod:`repro.core.expression` (which imports
:mod:`repro.obs.span`) is itself still initialising.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.obs.metrics import MetricsRegistry, Q_ERROR_BUCKETS
from repro.obs.span import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.expression import Expr
    from repro.objects.graph import ObjectGraph
    from repro.optimizer.cost import CostModel

__all__ = ["ExplainNode", "ExplainReport", "explain_analyze"]


@dataclass(frozen=True)
class ExplainNode:
    """One plan node annotated with estimate, actuals and timing."""

    text: str
    kind: str
    estimated: float
    actual: int
    seconds: float
    self_seconds: float
    children: tuple["ExplainNode", ...] = ()
    #: Physical strategy the executor chose ("edge-scan", "index-join",
    #: ...); None when the naive logical evaluator produced the trace.
    strategy: str | None = None
    #: Where the estimate came from ("exact", "histogram", "feedback",
    #: "uniform"); None for reports built before sources were tracked.
    source: str | None = None
    #: Cardinality of the compiled selection bitmask a ``compact-select``
    #: node intersected with its operand (the number of vertex ids whose
    #: column values satisfy the predicate); None for every other node.
    mask_card: int | None = None
    #: Per-shard actual cardinalities for nodes executed under the
    #: sharded scatter-gather executor (index = shard id); None for
    #: single-process nodes.  The spread across entries is the skew the
    #: ``repro_shard_skew_ratio`` gauge summarizes.
    shard_cards: tuple[int, ...] | None = None

    @property
    def q_error(self) -> float:
        """``max(est, act) / min(est, act)``, both floored at 1 pattern."""
        est = max(self.estimated, 1.0)
        act = max(float(self.actual), 1.0)
        return max(est, act) / min(est, act)

    def walk(self, depth: int = 0) -> Iterator[tuple["ExplainNode", int]]:
        """Yield ``(node, depth)`` pairs, pre-order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)


@dataclass(frozen=True)
class ExplainReport:
    """The annotated plan tree plus the query's actual result."""

    root: ExplainNode
    result: Any  # the AssociationSet the evaluation produced

    def walk(self) -> Iterator[tuple[ExplainNode, int]]:
        """Every plan node with its depth, pre-order."""
        yield from self.root.walk()

    @property
    def total_seconds(self) -> float:
        """Inclusive wall time of the whole evaluation."""
        return self.root.seconds

    @property
    def mean_q_error(self) -> float:
        """Mean per-node q-error (1.0 = every estimate exact)."""
        errors = [node.q_error for node, _ in self.walk()]
        return sum(errors) / len(errors)

    @property
    def max_q_error(self) -> float:
        """Worst per-node q-error."""
        return max(node.q_error for node, _ in self.walk())

    def pretty(self) -> str:
        """The EXPLAIN ANALYZE table: one row per plan node, tree-indented."""
        lines = [
            "EXPLAIN ANALYZE",
            f"{'est.card':>10}  {'act.card':>8}  {'ms':>8}  {'q-err':>7}  "
            f"{'src':<9}  node",
        ]
        for node, depth in self.walk():
            via = f" via {node.strategy}" if node.strategy is not None else ""
            if node.mask_card is not None:
                via += f" (mask={node.mask_card})"
            if node.shard_cards is not None:
                via += f" (shards={'/'.join(str(c) for c in node.shard_cards)})"
            source = node.source if node.source is not None else "-"
            lines.append(
                f"{node.estimated:>10.1f}  {node.actual:>8}  "
                f"{node.seconds * 1e3:>8.3f}  {node.q_error:>7.2f}  "
                f"{source:<9}  "
                f"{'  ' * depth}{node.text} [{node.kind}]{via}"
            )
        lines.append(
            f"total: {len(self.result)} pattern(s) in "
            f"{self.total_seconds * 1e3:.3f} ms; mean q-error "
            f"{self.mean_q_error:.2f}, max {self.max_q_error:.2f}"
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()


def explain_analyze(
    expr: "Expr",
    graph: "ObjectGraph",
    cost_model: "CostModel | None" = None,
    metrics: MetricsRegistry | None = None,
    executor: Any = None,
) -> ExplainReport:
    """Evaluate ``expr`` with tracing and pair estimates with actuals.

    ``cost_model`` defaults to a fresh :class:`CostModel` over ``graph``;
    if ``metrics`` is given, every node's q-error is observed in the
    ``repro_estimate_q_error`` histogram (labelled by operator kind).
    With an ``executor`` (:class:`repro.exec.Executor`) the evaluation
    runs through the physical engine — each report node then carries the
    chosen ``strategy`` — with the sub-plan cache bypassed so every node
    truly executes (a cache hit would truncate the plan tree mid-report).
    Without one, the naive logical evaluator runs and ``strategy`` stays
    ``None``.
    """
    from repro.optimizer.cost import CostModel

    model = cost_model if cost_model is not None else CostModel(graph)
    tracer = Tracer()
    if executor is not None:
        result = executor.run(expr, trace=tracer, use_cache=False)
    else:
        result = expr.evaluate(graph, tracer)
    root_span = tracer.roots[-1]

    def build(node: "Expr", span: Span) -> ExplainNode:
        children = tuple(
            build(child, child_span)
            for child, child_span in zip(node.children(), span.children, strict=True)
        )
        estimate = model.estimate(node)
        return ExplainNode(
            text=str(node),
            kind=node.kind.label,
            estimated=estimate.cardinality,
            actual=span.output_cardinality or 0,
            seconds=span.seconds,
            self_seconds=span.self_seconds,
            children=children,
            strategy=span.attributes.get("strategy"),
            source=getattr(estimate, "source", None),
            mask_card=span.attributes.get("mask_card"),
        )

    root = build(expr, root_span)
    if metrics is not None:
        histogram = metrics.histogram(
            "repro_estimate_q_error",
            "Cost-model estimate vs actual cardinality q-error per plan node",
            buckets=Q_ERROR_BUCKETS,
        )
        for node, _ in root.walk():
            histogram.observe(node.q_error, kind=node.kind)
    return ExplainReport(root, result)
