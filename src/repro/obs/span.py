"""Span-tree tracing: hierarchical, structured query instrumentation.

A :class:`Span` is one timed operation — typically the evaluation of one
A-algebra expression node — carrying a structured :class:`OperatorKind`,
its output cardinality, wall time, arbitrary attributes, and child spans.
Because :meth:`~repro.core.expression.Expr.evaluate` opens a child span
for every subexpression, the span tree of a query mirrors its expression
tree exactly; the optimization section's unit of work (intermediate-result
cardinalities, §4/Figure 10) falls out of the tree structurally instead of
being re-parsed from rendered operator text.

The module is deliberately dependency-free (stdlib only) so that
:mod:`repro.core.expression` can depend on it without an import cycle;
exporters live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import enum
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["OperatorKind", "Span", "Tracer"]


class OperatorKind(enum.Enum):
    """Structured classification of expression nodes (and other spans).

    The values double as the human-readable labels the profiler's report
    keys on; each :class:`~repro.core.expression.Expr` subclass declares
    its kind as a class attribute, so no rendering-text parsing is ever
    needed to classify a traced operator.
    """

    EXTENT = "extent"
    LITERAL = "literal"
    ASSOCIATE = "Associate"
    COMPLEMENT = "A-Complement"
    NON_ASSOCIATE = "NonAssociate"
    INTERSECT = "A-Intersect"
    UNION = "A-Union"
    DIFFERENCE = "A-Difference"
    DIVIDE = "A-Divide"
    SELECT = "A-Select"
    PROJECT = "A-Project"
    OTHER = "other"

    @property
    def label(self) -> str:
        """The display label (also the profiler's aggregation key)."""
        return self.value


@dataclass
class Span:
    """One timed operation in a trace tree."""

    name: str
    kind: OperatorKind = OperatorKind.OTHER
    start: float = 0.0
    end: float | None = None
    output_cardinality: int | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        """Inclusive wall time (children included); 0.0 while still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def self_seconds(self) -> float:
        """Wall time spent in this span excluding its children."""
        return max(self.seconds - sum(child.seconds for child in self.children), 0.0)

    @property
    def input_cardinalities(self) -> tuple[int, ...]:
        """Output cardinalities of the child spans, in evaluation order."""
        return tuple(
            child.output_cardinality
            for child in self.children
            if child.output_cardinality is not None
        )

    def walk(self, depth: int = 0) -> Iterator[tuple["Span", int]]:
        """Yield ``(span, depth)`` pairs, pre-order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    @property
    def max_depth(self) -> int:
        """Depth of the deepest descendant (a leaf span has depth 0)."""
        if not self.children:
            return 0
        return 1 + max(child.max_depth for child in self.children)

    def __str__(self) -> str:
        card = "?" if self.output_cardinality is None else self.output_cardinality
        return (
            f"Span({self.name!r}, kind={self.kind.label}, out={card}, "
            f"{self.seconds * 1e3:.2f} ms, {len(self.children)} child(ren))"
        )


class Tracer:
    """Collects a forest of spans during one or more evaluations.

    ``roots`` holds the top-level spans in start order; ``completed``
    holds every finished span in completion (post-) order, which is the
    order the old flat trace recorded steps in — the
    :class:`~repro.core.expression.EvalTrace` adapter builds its legacy
    view from it.
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self.completed: list[Span] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def begin(
        self, name: str, kind: OperatorKind = OperatorKind.OTHER, **attributes: Any
    ) -> Span:
        """Open a span as a child of the innermost open span."""
        span = Span(name, kind, start=time.perf_counter(), attributes=dict(attributes))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span, output: Any = None, **attributes: Any) -> Span:
        """Close ``span``, recording its output cardinality and attributes.

        ``output`` may be an ``int`` cardinality or any sized collection
        (an association-set); ``None`` leaves the cardinality unset (e.g.
        for spans closed by an exception).
        """
        span.end = time.perf_counter()
        if output is not None:
            span.output_cardinality = (
                output if isinstance(output, int) else len(output)
            )
        span.attributes.update(attributes)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order finishes
            self._stack.remove(span)
        self.completed.append(span)
        return span

    @contextmanager
    def span(
        self, name: str, kind: OperatorKind = OperatorKind.OTHER, **attributes: Any
    ) -> Iterator[Span]:
        """Context manager for non-expression spans (planning, export...)."""
        opened = self.begin(name, kind, **attributes)
        try:
            yield opened
        except BaseException as exc:
            self.finish(opened, error=type(exc).__name__)
            raise
        else:
            self.finish(opened)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def open_spans(self) -> int:
        """How many spans are currently open (0 once evaluation returns)."""
        return len(self._stack)

    def spans(self) -> Iterator[tuple[Span, int]]:
        """Every recorded span with its depth, pre-order across roots."""
        for root in self.roots:
            yield from root.walk()

    @property
    def total_seconds(self) -> float:
        """Sum of the root spans' inclusive wall times."""
        return sum(root.seconds for root in self.roots)

    def __len__(self) -> int:
        return sum(1 for _ in self.spans())

    def __str__(self) -> str:
        return f"Tracer({len(self.roots)} root(s), {len(self)} span(s))"
