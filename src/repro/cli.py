"""Interactive OQL shell and observability subcommands.

A small REPL over one :class:`~repro.engine.database.Database`, in the
spirit of ``sqlite3``'s shell: OQL queries evaluate and print as
figure-notation association-sets; backslash commands inspect the database.

Commands::

    \\schema              list classes and associations
    \\extent <Class>      show a class extent
    \\trace <query>       evaluate with a per-operator cardinality trace
    \\explain <query>     EXPLAIN ANALYZE: estimated vs actual per node
    \\plan <query>        show the optimizer's candidate plans
    \\physical <query>    show the executor's physical plan (strategies)
    \\values <Class> <query>   print the primitive values of one class
    \\table <C1,C2> <query>    render the result as a value table
    \\save <path>         write a JSON snapshot of the database
    \\dot                 emit the schema as Graphviz DOT
    \\help                this text
    \\quit                leave

Run programmatically (and in tests) via :func:`run_shell` with arbitrary
input/output streams, or from the command line::

    python -m repro.cli              # opens the paper's university DB
    python -m repro.cli snapshot.json

Besides the shell, three observability subcommands (also exposed as the
``repro`` console script)::

    repro trace "TA * Grad" [--dataset NAME | --db PATH]
                [--format tree|jsonl|chrome]
    repro explain "pi(TA * Grad)[TA]" [--dataset NAME | --db PATH]
    repro metrics [QUERY ...] [--dataset NAME | --db PATH]
                  [--format prometheus|json]

``repro trace --format chrome`` emits Chrome ``trace_event`` JSON for
``chrome://tracing`` / Perfetto; ``repro metrics`` runs the given queries
(by default the paper's Q1/Q3/Q4 workload) and prints the engine's
metrics registry.  See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO

from repro.engine.database import Database
from repro.errors import ReproError
from repro.core.expression import EvalTrace
from repro.viz import render_set, schema_to_dot

__all__ = ["run_shell", "main"]

_PROMPT = "oql> "
_HELP = __doc__.split("Commands::", 1)[1].split("Run programmatically", 1)[0]


def _cmd_schema(db: Database, args: str, out: IO[str]) -> None:
    print(f"schema {db.schema.name!r}:", file=out)
    for cdef in db.schema.classes:
        kind = "circle" if cdef.is_primitive else "box"
        size = len(db.graph.extent(cdef.name))
        print(f"  {cdef.name:<16} [{kind}]  {size} instance(s)", file=out)
    print("associations:", file=out)
    for assoc in db.schema.associations:
        print(f"  {assoc}  ({assoc.kind.value})", file=out)


def _cmd_extent(db: Database, args: str, out: IO[str]) -> None:
    cls = args.strip()
    if not cls:
        print("usage: \\extent <Class>", file=out)
        return
    rows = []
    for instance in sorted(db.graph.extent(cls)):
        value = db.graph.value(instance)
        rows.append(
            f"  {instance.label}" + (f" = {value!r}" if value is not None else "")
        )
    print(f"{cls}: {len(rows)} instance(s)", file=out)
    for row in rows:
        print(row, file=out)


def _cmd_trace(db: Database, args: str, out: IO[str]) -> None:
    trace = EvalTrace()
    result = db.compile(args).evaluate(db.graph, trace)
    print(trace.pretty(), file=out)
    print(render_set(result, f"result ({len(result)} pattern(s)):"), file=out)


def _cmd_explain(db: Database, args: str, out: IO[str]) -> None:
    print(db.explain_analyze(args), file=out)


def _cmd_plan(db: Database, args: str, out: IO[str]) -> None:
    from repro.optimizer import Optimizer

    expr = db.compile(args)
    print(Optimizer(db.graph).explain(expr), file=out)


def _cmd_physical(db: Database, args: str, out: IO[str]) -> None:
    print(db.executor.plan(db.compile(args)).describe(), file=out)


def _cmd_values(db: Database, args: str, out: IO[str]) -> None:
    parts = args.strip().split(None, 1)
    if len(parts) != 2:
        print("usage: \\values <Class> <query>", file=out)
        return
    cls, query = parts
    print(sorted(db.query(query).values(cls), key=repr), file=out)


def _cmd_table(db: Database, args: str, out: IO[str]) -> None:
    parts = args.strip().split(None, 1)
    if len(parts) != 2:
        print("usage: \\table <Class,Class,...> <query>", file=out)
        return
    columns, query = parts[0].split(","), parts[1]
    from repro.viz import render_table

    print(render_table(db.query(query).set, db.graph, columns), file=out)


def _cmd_dot(db: Database, args: str, out: IO[str]) -> None:
    print(schema_to_dot(db.schema), file=out)


def _cmd_save(db: Database, args: str, out: IO[str]) -> None:
    path = args.strip()
    if not path:
        print("usage: \\save <path>", file=out)
        return
    from repro.storage import save_database

    save_database(db, path)
    print(f"saved to {path}", file=out)


def _cmd_help(db: Database, args: str, out: IO[str]) -> None:
    print(_HELP.strip("\n"), file=out)


_COMMANDS = {
    "schema": _cmd_schema,
    "extent": _cmd_extent,
    "trace": _cmd_trace,
    "explain": _cmd_explain,
    "plan": _cmd_plan,
    "physical": _cmd_physical,
    "values": _cmd_values,
    "table": _cmd_table,
    "dot": _cmd_dot,
    "save": _cmd_save,
    "help": _cmd_help,
}


def run_shell(
    db: Database,
    stdin: IO[str] | None = None,
    stdout: IO[str] | None = None,
    show_prompt: bool = True,
) -> None:
    """Run the REPL until EOF or ``\\quit``."""
    inp = stdin if stdin is not None else sys.stdin
    out = stdout if stdout is not None else sys.stdout
    print(f"A-algebra shell — {db} — \\help for commands", file=out)
    while True:
        if show_prompt:
            print(_PROMPT, end="", file=out, flush=True)
        line = inp.readline()
        if not line:
            break
        line = line.strip()
        if not line:
            continue
        if line.startswith("\\"):
            name, _, args = line[1:].partition(" ")
            if name in ("quit", "q", "exit"):
                break
            handler = _COMMANDS.get(name)
            if handler is None:
                print(f"unknown command \\{name} — try \\help", file=out)
                continue
            try:
                handler(db, args, out)
            except ReproError as exc:
                print(f"error: {exc}", file=out)
            continue
        try:
            result = db.query(line).set
            print(render_set(result, f"{len(result)} pattern(s):"), file=out)
        except ReproError as exc:
            print(f"error: {exc}", file=out)


# ----------------------------------------------------------------------
# observability subcommands: repro trace / explain / metrics
# ----------------------------------------------------------------------

_DATASETS = ("university", "figure7", "supplier_parts", "parts_explosion")

#: The paper's running queries (Q1, Q3, Q4 over the university database),
#: used as the default workload for ``repro metrics``.
_DEFAULT_WORKLOAD = (
    "pi(TA * Grad * Student * Person * SS#)[SS#]",
    "pi(Student * Person * Name & Student * Department"
    " & Student * Grad * TA * Teacher * Department)[Name]",
    "pi(Section# * (Section ! Room# + Section ! Teacher))[Section#]",
)


def _open_database(dataset: str, db_path: str | None) -> Database:
    """A Database from a snapshot path or a bundled dataset by name."""
    if db_path is not None:
        from repro.storage import load_database

        return load_database(db_path)
    import repro.datasets as datasets

    return Database.from_dataset(getattr(datasets, dataset)())


def _add_db_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--dataset",
        choices=_DATASETS,
        default="university",
        help="bundled dataset to open (default: university)",
    )
    source.add_argument("--db", metavar="PATH", help="JSON snapshot to open")


def _cli_trace(args: list[str], out: IO[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace", description="Evaluate a query with span tracing."
    )
    parser.add_argument("query", help="OQL query text")
    _add_db_arguments(parser)
    parser.add_argument(
        "--format",
        choices=("tree", "jsonl", "chrome"),
        default="tree",
        help="tree (human), jsonl (one span per line), chrome (trace_event)",
    )
    ns = parser.parse_args(args)
    from repro.obs import Tracer, spans_to_chrome_trace, spans_to_jsonl, spans_to_tree

    db = _open_database(ns.dataset, ns.db)
    tracer = Tracer()
    result = db.query(ns.query, trace=tracer)
    if ns.format == "tree":
        print(spans_to_tree(tracer), file=out)
        print(f"result: {len(result)} pattern(s)", file=out)
    elif ns.format == "jsonl":
        print(spans_to_jsonl(tracer), file=out)
    else:
        print(json.dumps(spans_to_chrome_trace(tracer), indent=2), file=out)
    return 0


def _cli_explain(args: list[str], out: IO[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro explain",
        description="EXPLAIN ANALYZE: estimated vs actual cardinalities.",
    )
    parser.add_argument("query", help="OQL query text")
    _add_db_arguments(parser)
    ns = parser.parse_args(args)
    db = _open_database(ns.dataset, ns.db)
    print(db.explain_analyze(ns.query), file=out)
    return 0


def _cli_metrics(args: list[str], out: IO[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="Run queries and print the engine's metrics registry.",
    )
    parser.add_argument(
        "queries",
        nargs="*",
        metavar="QUERY",
        help="OQL queries to run (default: the paper's Q1/Q3/Q4 workload)",
    )
    _add_db_arguments(parser)
    parser.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="Prometheus exposition text or a JSON document",
    )
    ns = parser.parse_args(args)
    from repro.obs import metrics_to_json, metrics_to_prometheus

    db = _open_database(ns.dataset, ns.db)
    queries = ns.queries or (
        list(_DEFAULT_WORKLOAD) if ns.db is None and ns.dataset == "university" else []
    )
    for query in queries:
        # Twice through the cached path (a miss, then a hit) so plan-cache
        # traffic shows up in the export, then once under EXPLAIN ANALYZE
        # for the q-error histogram.
        db.query(query)
        db.query(query)
        db.explain_analyze(query)
    if ns.format == "prometheus":
        print(metrics_to_prometheus(db.metrics), file=out)
    else:
        print(json.dumps(metrics_to_json(db.metrics), indent=2), file=out)
    return 0


_SUBCOMMANDS = {
    "trace": _cli_trace,
    "explain": _cli_explain,
    "metrics": _cli_metrics,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point: a subcommand, a snapshot file, or the interactive shell.

    ``repro trace|explain|metrics ...`` dispatch to the observability
    subcommands; any other first argument is treated as a snapshot path
    (shell over that database); no arguments opens the shell over the
    paper's university database.
    """
    args = argv if argv is not None else sys.argv[1:]
    if args and args[0] in _SUBCOMMANDS:
        try:
            return _SUBCOMMANDS[args[0]](args[1:], sys.stdout)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args:
        from repro.storage import load_database

        db = load_database(args[0])
    else:
        from repro.datasets import university

        db = Database.from_dataset(university())
    run_shell(db)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
