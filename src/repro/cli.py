"""Interactive OQL shell and observability subcommands.

A small REPL over one :class:`~repro.engine.database.Database`, in the
spirit of ``sqlite3``'s shell: OQL queries evaluate and print as
figure-notation association-sets; backslash commands inspect the database.

Commands::

    \\schema              list classes and associations
    \\extent <Class>      show a class extent
    \\trace <query>       evaluate with a per-operator cardinality trace
    \\explain <query>     EXPLAIN ANALYZE: estimated vs actual per node
    \\plan <query>        show the optimizer's candidate plans
    \\physical <query>    show the executor's physical plan (strategies)
    \\analyze [N]         ANALYZE the database (optional sample size N)
    \\stats               show the statistics catalog summary
    \\shards [N|off]      sharded scatter-gather: show, start N workers, stop
    \\values <Class> <query>   print the primitive values of one class
    \\table <C1,C2> <query>    render the result as a value table
    \\save <path>         write a JSON snapshot of the database
    \\dot                 emit the schema as Graphviz DOT
    \\help                this text
    \\quit                leave

Run programmatically (and in tests) via :func:`run_shell` with arbitrary
input/output streams, or from the command line::

    python -m repro.cli              # opens the paper's university DB
    python -m repro.cli snapshot.json

Besides the shell, eight subcommands (also exposed as the ``repro``
console script)::

    repro trace "TA * Grad" [--dataset NAME | --db PATH]
                [--format tree|jsonl|chrome]
    repro explain "pi(TA * Grad)[TA]" [--dataset NAME | --db PATH]
    repro analyze [--dataset NAME | --db PATH] [--sample N]
    repro metrics [QUERY ...] [--dataset NAME | --db PATH]
                  [--format prometheus|json] [--watch N [--iterations K]]
    repro serve [--host H] [--port P] [--dataset NAME | --db PATH]
                [--max-concurrency N] [--queue-limit N] [--deadline S]
                [--drain-timeout S] [--port-file PATH] [--shards N]
                [--admin-port P] [--admin-port-file PATH]
                [--slow-query-threshold S] [--slow-query-q-error Q]
                [--event-capacity N]
    repro client [QUERY] --port P [--host H] [--database NAME]
                 [--values CLASS ...] [--explain] [--trace]
                 [--trace-out PATH] [--timeout S]
                 [--metrics [--raw]] [--ping]
    repro events --port P [--type T] [--after SEQ] [--limit N]
                 [--follow [--interval S] [--iterations K]]
    repro slow-queries --port P [--limit N] [--json]
    repro subscribe VIEW --port P [--host H] [--database NAME]
                    [--create QUERY] [--timeout S] [--iterations K]

``repro trace --format chrome`` emits Chrome ``trace_event`` JSON for
``chrome://tracing`` / Perfetto; ``repro analyze`` runs an ANALYZE pass
(optionally sampled) and prints the statistics catalog summary table;
``repro metrics`` runs the given queries (by default the paper's
Q1/Q3/Q4 workload) and prints the engine's metrics registry —
``--watch N`` re-runs the workload every N seconds and prints counter
deltas as per-second rates.  ``repro serve`` runs the concurrent query
service of :mod:`repro.server` until SIGINT/SIGTERM, with an HTTP admin
side port (``/healthz``, ``/readyz``, ``/metrics``, ``/events``,
``/slow-queries``) unless ``--admin-port -1``; ``repro client`` speaks
its wire protocol (``--trace`` prints the stitched end-to-end span tree,
``--metrics`` a sorted aligned table); ``repro events`` tails the
server's structured event log and ``repro slow-queries`` its slow-query
captures; ``repro subscribe`` opens a live materialized-view delta feed
(``docs/views.md``) and prints the snapshot plus every ``view.delta`` /
``view.resync`` frame as JSON lines.  See ``docs/observability.md`` and
``docs/server.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO

from repro.engine.database import Database
from repro.errors import ReproError
from repro.core.expression import EvalTrace
from repro.viz import render_set, schema_to_dot

__all__ = ["run_shell", "main"]

_PROMPT = "oql> "
_HELP = __doc__.split("Commands::", 1)[1].split("Run programmatically", 1)[0]


def _cmd_schema(db: Database, args: str, out: IO[str]) -> None:
    print(f"schema {db.schema.name!r}:", file=out)
    for cdef in db.schema.classes:
        kind = "circle" if cdef.is_primitive else "box"
        size = len(db.graph.extent(cdef.name))
        print(f"  {cdef.name:<16} [{kind}]  {size} instance(s)", file=out)
    print("associations:", file=out)
    for assoc in db.schema.associations:
        print(f"  {assoc}  ({assoc.kind.value})", file=out)


def _cmd_extent(db: Database, args: str, out: IO[str]) -> None:
    cls = args.strip()
    if not cls:
        print("usage: \\extent <Class>", file=out)
        return
    rows = []
    for instance in sorted(db.graph.extent(cls)):
        value = db.graph.value(instance)
        rows.append(
            f"  {instance.label}" + (f" = {value!r}" if value is not None else "")
        )
    print(f"{cls}: {len(rows)} instance(s)", file=out)
    for row in rows:
        print(row, file=out)


def _cmd_trace(db: Database, args: str, out: IO[str]) -> None:
    trace = EvalTrace()
    result = db.compile(args).evaluate(db.graph, trace)
    print(trace.pretty(), file=out)
    print(render_set(result, f"result ({len(result)} pattern(s)):"), file=out)


def _cmd_explain(db: Database, args: str, out: IO[str]) -> None:
    print(db.explain_analyze(args), file=out)


def _cmd_plan(db: Database, args: str, out: IO[str]) -> None:
    from repro.optimizer import Optimizer

    expr = db.compile(args)
    print(Optimizer(db.graph).explain(expr), file=out)


def _cmd_physical(db: Database, args: str, out: IO[str]) -> None:
    print(db.executor.plan(db.compile(args)).describe(), file=out)


def _cmd_values(db: Database, args: str, out: IO[str]) -> None:
    parts = args.strip().split(None, 1)
    if len(parts) != 2:
        print("usage: \\values <Class> <query>", file=out)
        return
    cls, query = parts
    print(sorted(db.query(query).values(cls), key=repr), file=out)


def _cmd_table(db: Database, args: str, out: IO[str]) -> None:
    parts = args.strip().split(None, 1)
    if len(parts) != 2:
        print("usage: \\table <Class,Class,...> <query>", file=out)
        return
    columns, query = parts[0].split(","), parts[1]
    from repro.viz import render_table

    print(render_table(db.query(query).set, db.graph, columns), file=out)


def _cmd_analyze(db: Database, args: str, out: IO[str]) -> None:
    sample = None
    if args.strip():
        try:
            sample = int(args.strip())
        except ValueError:
            print("usage: \\analyze [sample-size]", file=out)
            return
    db.analyze(sample=sample)
    print(db.stats.summary(), file=out)


def _cmd_stats(db: Database, args: str, out: IO[str]) -> None:
    print(db.stats.summary(), file=out)


def _cmd_shards(db: Database, args: str, out: IO[str]) -> None:
    arg = args.strip()
    if arg in ("off", "0"):
        db.stop_shards()
    elif arg:
        try:
            shards = int(arg)
        except ValueError:
            shards = 0
        if shards < 1:
            print("usage: \\shards [N|off]", file=out)
            return
        db.start_shards(shards)
    workers = db.shard_workers
    if workers:
        print(f"sharded execution: {workers} worker(s)", file=out)
    else:
        print("sharded execution: off", file=out)


def _cmd_dot(db: Database, args: str, out: IO[str]) -> None:
    print(schema_to_dot(db.schema), file=out)


def _cmd_save(db: Database, args: str, out: IO[str]) -> None:
    path = args.strip()
    if not path:
        print("usage: \\save <path>", file=out)
        return
    db.save(path)
    print(f"saved to {path}", file=out)


def _cmd_help(db: Database, args: str, out: IO[str]) -> None:
    print(_HELP.strip("\n"), file=out)


_COMMANDS = {
    "schema": _cmd_schema,
    "extent": _cmd_extent,
    "trace": _cmd_trace,
    "explain": _cmd_explain,
    "plan": _cmd_plan,
    "physical": _cmd_physical,
    "analyze": _cmd_analyze,
    "stats": _cmd_stats,
    "shards": _cmd_shards,
    "values": _cmd_values,
    "table": _cmd_table,
    "dot": _cmd_dot,
    "save": _cmd_save,
    "help": _cmd_help,
}


def run_shell(
    db: Database,
    stdin: IO[str] | None = None,
    stdout: IO[str] | None = None,
    show_prompt: bool = True,
) -> None:
    """Run the REPL until EOF or ``\\quit``."""
    inp = stdin if stdin is not None else sys.stdin
    out = stdout if stdout is not None else sys.stdout
    print(f"A-algebra shell — {db} — \\help for commands", file=out)
    while True:
        if show_prompt:
            print(_PROMPT, end="", file=out, flush=True)
        line = inp.readline()
        if not line:
            break
        line = line.strip()
        if not line:
            continue
        if line.startswith("\\"):
            name, _, args = line[1:].partition(" ")
            if name in ("quit", "q", "exit"):
                break
            handler = _COMMANDS.get(name)
            if handler is None:
                print(f"unknown command \\{name} — try \\help", file=out)
                continue
            try:
                handler(db, args, out)
            except ReproError as exc:
                print(f"error: {exc}", file=out)
            continue
        try:
            result = db.query(line).set
            print(render_set(result, f"{len(result)} pattern(s):"), file=out)
        except ReproError as exc:
            print(f"error: {exc}", file=out)


# ----------------------------------------------------------------------
# observability subcommands: repro trace / explain / metrics
# ----------------------------------------------------------------------

_DATASETS = ("university", "figure7", "supplier_parts", "parts_explosion")

#: The paper's running queries (Q1, Q3, Q4 over the university database),
#: used as the default workload for ``repro metrics``.
_DEFAULT_WORKLOAD = (
    "pi(TA * Grad * Student * Person * SS#)[SS#]",
    "pi(Student * Person * Name & Student * Department"
    " & Student * Grad * TA * Teacher * Department)[Name]",
    "pi(Section# * (Section ! Room# + Section ! Teacher))[Section#]",
)


def _open_database(dataset: str, db_path: str | None) -> Database:
    """A Database from a storage path or a bundled dataset by name."""
    if db_path is not None:
        return Database.open(db_path, create=False)
    import repro.datasets as datasets

    return Database.from_dataset(getattr(datasets, dataset)())


def _add_db_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--dataset",
        choices=_DATASETS,
        default="university",
        help="bundled dataset to open (default: university)",
    )
    source.add_argument(
        "--db",
        metavar="PATH",
        help="database to open: a storage directory or a JSON snapshot",
    )


def _cli_trace(args: list[str], out: IO[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace", description="Evaluate a query with span tracing."
    )
    parser.add_argument("query", help="OQL query text")
    _add_db_arguments(parser)
    parser.add_argument(
        "--format",
        choices=("tree", "jsonl", "chrome"),
        default="tree",
        help="tree (human), jsonl (one span per line), chrome (trace_event)",
    )
    ns = parser.parse_args(args)
    from repro.obs import Tracer, spans_to_chrome_trace, spans_to_jsonl, spans_to_tree

    db = _open_database(ns.dataset, ns.db)
    tracer = Tracer()
    result = db.query(ns.query, trace=tracer)
    if ns.format == "tree":
        print(spans_to_tree(tracer), file=out)
        print(f"result: {len(result)} pattern(s)", file=out)
    elif ns.format == "jsonl":
        print(spans_to_jsonl(tracer), file=out)
    else:
        print(json.dumps(spans_to_chrome_trace(tracer), indent=2), file=out)
    return 0


def _cli_explain(args: list[str], out: IO[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro explain",
        description="EXPLAIN ANALYZE: estimated vs actual cardinalities.",
    )
    parser.add_argument("query", help="OQL query text")
    _add_db_arguments(parser)
    ns = parser.parse_args(args)
    db = _open_database(ns.dataset, ns.db)
    print(db.explain_analyze(ns.query), file=out)
    return 0


def _cli_analyze(args: list[str], out: IO[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Run an ANALYZE pass and print the statistics summary.",
    )
    _add_db_arguments(parser)
    parser.add_argument(
        "--sample",
        type=int,
        metavar="N",
        help="cap values/fan-outs scanned per class or association at N",
    )
    ns = parser.parse_args(args)
    db = _open_database(ns.dataset, ns.db)
    db.analyze(sample=ns.sample)
    print(db.stats.summary(), file=out)
    return 0


def _cli_metrics(args: list[str], out: IO[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="Run queries and print the engine's metrics registry.",
    )
    parser.add_argument(
        "queries",
        nargs="*",
        metavar="QUERY",
        help="OQL queries to run (default: the paper's Q1/Q3/Q4 workload)",
    )
    _add_db_arguments(parser)
    parser.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="Prometheus exposition text or a JSON document",
    )
    parser.add_argument(
        "--watch",
        type=float,
        metavar="N",
        help="re-run the workload every N seconds and print counter deltas"
        " as per-second rates (gauges print their current value)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        metavar="K",
        help="with --watch: stop after K samples (default: until ^C)",
    )
    ns = parser.parse_args(args)
    from repro.obs import metrics_to_json, metrics_to_prometheus

    db = _open_database(ns.dataset, ns.db)
    queries = ns.queries or (
        list(_DEFAULT_WORKLOAD) if ns.db is None and ns.dataset == "university" else []
    )

    def run_workload() -> None:
        for query in queries:
            # Twice through the cached path (a miss, then a hit) so
            # plan-cache traffic shows up in the export, then once under
            # EXPLAIN ANALYZE for the q-error histogram.
            db.query(query)
            db.query(query)
            db.explain_analyze(query)

    run_workload()
    if ns.watch is None:
        if ns.format == "prometheus":
            print(metrics_to_prometheus(db.metrics), file=out)
        else:
            print(json.dumps(metrics_to_json(db.metrics), indent=2), file=out)
        return 0

    import time as _time

    interval = max(ns.watch, 0.01)
    previous = _counter_samples(metrics_to_json(db.metrics))
    sample = 0
    try:
        while ns.iterations is None or sample < ns.iterations:
            _time.sleep(interval)
            run_workload()
            current = _counter_samples(metrics_to_json(db.metrics))
            sample += 1
            print(f"--- sample {sample} (interval {interval:g}s) ---", file=out)
            width = max((len(k) for k in current), default=0)
            for key in sorted(current):
                kind, value = current[key]
                if kind == "counter":
                    delta = value - previous.get(key, ("counter", 0.0))[1]
                    if delta:
                        print(
                            f"{key:<{width}}  +{delta:g}"
                            f"  ({delta / interval:.1f}/s)",
                            file=out,
                        )
                else:  # gauge: absolute level, not a rate
                    print(f"{key:<{width}}  {value:g}", file=out)
            out.flush() if hasattr(out, "flush") else None
            previous = current
    except KeyboardInterrupt:  # pragma: no cover — interactive exit
        pass
    return 0


def _counter_samples(document: dict) -> dict[str, tuple[str, float]]:
    """Flatten a ``metrics_to_json`` document to ``series → (kind, value)``.

    Counters and gauges keep their value; histograms contribute their
    ``_count`` series (observation counts delta nicely, sums don't read
    well as rates).
    """
    flat: dict[str, tuple[str, float]] = {}
    for name, entry in document.items():
        kind = entry.get("kind")
        for sample in entry.get("samples", ()):
            labels = sample.get("labels") or {}
            suffix = (
                "{" + ",".join(f'{k}="{v}"' for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if kind in ("counter", "gauge"):
                flat[f"{name}{suffix}"] = (kind, float(sample["value"]))
            else:
                flat[f"{name}_count{suffix}"] = ("counter", float(sample["count"]))
    return flat


def _cli_serve(args: list[str], out: IO[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the concurrent query service until SIGINT/SIGTERM.",
    )
    _add_db_arguments(parser)
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral, default)"
    )
    parser.add_argument(
        "--max-concurrency", type=int, default=4, help="queries executing at once"
    )
    parser.add_argument(
        "--queue-limit", type=int, default=16, help="queries allowed to wait for a slot"
    )
    parser.add_argument(
        "--deadline", type=float, default=30.0, help="default per-request deadline (s)"
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds shutdown waits for in-flight requests",
    )
    parser.add_argument(
        "--port-file",
        metavar="PATH",
        help="write the bound port to this file once listening",
    )
    parser.add_argument(
        "--admin-port",
        type=int,
        default=0,
        metavar="P",
        help="HTTP admin side port (0 = ephemeral, default; -1 disables)",
    )
    parser.add_argument(
        "--admin-port-file",
        metavar="PATH",
        help="write the bound admin port to this file once listening",
    )
    parser.add_argument(
        "--slow-query-threshold",
        type=float,
        metavar="S",
        help="capture queries slower than S seconds in the slow-query log",
    )
    parser.add_argument(
        "--slow-query-q-error",
        type=float,
        metavar="Q",
        help="capture EXPLAIN'd queries whose worst q-error is >= Q",
    )
    parser.add_argument(
        "--event-capacity",
        type=int,
        default=1024,
        metavar="N",
        help="structured event-ring size (0 disables the event log)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="scatter-gather worker processes per mounted database",
    )
    ns = parser.parse_args(args)
    import signal
    import threading

    from repro.server import ServerConfig, start_server

    config = ServerConfig(
        host=ns.host,
        port=ns.port,
        default_database="snapshot" if ns.db is not None else ns.dataset,
        snapshot_path=ns.db,
        max_concurrency=ns.max_concurrency,
        queue_limit=ns.queue_limit,
        default_deadline=ns.deadline,
        drain_timeout=ns.drain_timeout,
        admin_port=None if ns.admin_port < 0 else ns.admin_port,
        slow_query_threshold=ns.slow_query_threshold,
        slow_query_q_error=ns.slow_query_q_error,
        event_capacity=ns.event_capacity,
        shards=ns.shards,
    )
    handle = start_server(config)
    print(f"listening on {handle.host}:{handle.port}", file=out, flush=True)
    admin_port = handle.service.admin_port
    if admin_port is not None:
        print(f"admin on http://{handle.host}:{admin_port}", file=out, flush=True)
    if ns.port_file:
        with open(ns.port_file, "w", encoding="utf-8") as fh:
            fh.write(str(handle.port))
    if ns.admin_port_file and admin_port is not None:
        with open(ns.admin_port_file, "w", encoding="utf-8") as fh:
            fh.write(str(admin_port))
    stop = threading.Event()
    try:
        signal.signal(signal.SIGINT, lambda *_: stop.set())
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
    except ValueError:  # pragma: no cover — not on the main thread
        pass
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    handle.stop()
    print("server stopped", file=out, flush=True)
    return 0


def _cli_client(args: list[str], out: IO[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro client",
        description="Run one query (or a ping/metrics frame) against repro serve.",
    )
    parser.add_argument("query", nargs="?", help="OQL query text")
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, required=True, help="server port")
    parser.add_argument(
        "--database", metavar="NAME", help="open this server-side database first"
    )
    parser.add_argument(
        "--values",
        metavar="CLASS",
        action="append",
        default=[],
        help="also print the primitive values of CLASS (repeatable)",
    )
    parser.add_argument("--explain", action="store_true", help="EXPLAIN ANALYZE")
    parser.add_argument(
        "--trace",
        action="store_true",
        help="stitch and print the end-to-end client+server span tree",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="also write the stitched trace as Chrome trace_event JSON",
    )
    parser.add_argument(
        "--timeout", type=float, help="server-side deadline in seconds"
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the server's metrics as a sorted, aligned table",
    )
    parser.add_argument(
        "--raw",
        action="store_true",
        help="with --metrics: print the raw Prometheus exposition text",
    )
    parser.add_argument("--ping", action="store_true", help="liveness round trip")
    ns = parser.parse_args(args)
    if not (ns.query or ns.metrics or ns.ping):
        parser.error("nothing to do: give a QUERY or --metrics/--ping")
    from repro.server import ServerClient

    with ServerClient(ns.host, ns.port) as client:
        if ns.ping:
            pong = client.ping()
            print(
                f"pong from session {pong['session']}"
                f" (protocol v{pong['protocol']})",
                file=out,
            )
        if ns.database:
            opened = client.open(ns.database)
            print(
                f"opened {opened['database']!r}:"
                f" {opened['classes']} class(es),"
                f" {opened['instances']} instance(s)",
                file=out,
            )
        if ns.query:
            result = client.query(
                ns.query,
                values_of=tuple(ns.values),
                explain=ns.explain,
                trace=ns.trace or bool(ns.trace_out),
                timeout=ns.timeout,
            )
            print(
                f"{result.count} pattern(s)"
                f"  [strategy={result.strategy}, {result.elapsed_ms} ms]",
                file=out,
            )
            for label in result.labels():
                print(f"  {label}", file=out)
            for cls in ns.values:
                print(f"{cls}: {result.values.get(cls, [])}", file=out)
            if result.explain is not None:
                print(result.explain, file=out)
            if result.tracer is not None:
                from repro.obs import spans_to_chrome_trace, spans_to_tree

                if ns.trace:
                    print(f"trace {result.trace_id}:", file=out)
                    print(spans_to_tree(result.tracer), file=out)
                if ns.trace_out:
                    with open(ns.trace_out, "w", encoding="utf-8") as fh:
                        json.dump(spans_to_chrome_trace(result.tracer), fh, indent=2)
                    print(f"trace written to {ns.trace_out}", file=out)
        if ns.metrics:
            text = client.metrics()
            print(text if ns.raw else _metrics_table(text), file=out)
    return 0


def _metrics_table(prometheus_text: str) -> str:
    """Prometheus exposition text as a sorted, aligned two-column table.

    Sample lines (``name{labels} value``) sort lexically; ``# HELP`` /
    ``# TYPE`` commentary is dropped — the table is for eyeballs, the raw
    text (``--raw``) for scrapers.
    """
    rows = []
    for line in prometheus_text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        rows.append((series, value))
    rows.sort()
    width = max((len(series) for series, _ in rows), default=0)
    return "\n".join(f"{series:<{width}}  {value}" for series, value in rows)


def _cli_events(args: list[str], out: IO[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro events",
        description="Tail the structured event log of a running repro serve.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, required=True, help="server port")
    parser.add_argument("--type", metavar="T", help="only events of this type")
    parser.add_argument(
        "--after", type=int, metavar="SEQ", help="only events past this sequence"
    )
    parser.add_argument(
        "--limit", type=int, metavar="N", help="at most the newest N events"
    )
    parser.add_argument(
        "--follow",
        action="store_true",
        help="keep polling for new events (one JSON line each)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="S",
        help="with --follow: poll every S seconds (default 1)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        metavar="K",
        help="with --follow: stop after K polls (default: until ^C)",
    )
    ns = parser.parse_args(args)
    import time as _time

    from repro.server import ServerClient

    with ServerClient(ns.host, ns.port) as client:
        page = client.events(type=ns.type, after=ns.after, limit=ns.limit)
        for event in page["events"]:
            print(json.dumps(event, sort_keys=True), file=out)
        if not ns.follow:
            if page.get("dropped"):
                print(
                    f"# {page['dropped']} older event(s) dropped by the ring",
                    file=out,
                )
            return 0
        cursor = page["last_seq"]
        polls = 0
        try:
            while ns.iterations is None or polls < ns.iterations:
                _time.sleep(max(ns.interval, 0.01))
                page = client.events(type=ns.type, after=cursor)
                for event in page["events"]:
                    print(json.dumps(event, sort_keys=True), file=out)
                cursor = page["last_seq"]
                polls += 1
        except KeyboardInterrupt:  # pragma: no cover — interactive exit
            pass
    return 0


def _cli_subscribe(args: list[str], out: IO[str]) -> int:
    """Live materialized-view delta feed as JSON lines."""
    parser = argparse.ArgumentParser(
        prog="repro subscribe",
        description=(
            "Subscribe to a materialized view of a running repro serve and "
            "print its snapshot plus every delta/resync frame as JSON lines."
        ),
    )
    parser.add_argument("view", help="materialized view name")
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, required=True, help="server port")
    parser.add_argument(
        "--database", metavar="NAME", help="open this database first"
    )
    parser.add_argument(
        "--create",
        metavar="QUERY",
        help="create the view from this OQL text before subscribing",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=1.0,
        metavar="S",
        help="wait up to S seconds per notification poll (default 1)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        metavar="K",
        help="stop after K notification frames (default: until ^C)",
    )
    ns = parser.parse_args(args)
    from repro.server import ServerClient

    with ServerClient(ns.host, ns.port) as client:
        if ns.database:
            client.open(ns.database)
        if ns.create:
            client.create_view(ns.view, ns.create)
        snapshot = client.subscribe(ns.view)
        print(
            json.dumps(
                {
                    "view": snapshot["view"],
                    "version": snapshot["version"],
                    "count": snapshot["count"],
                    "patterns": snapshot["patterns"],
                },
                sort_keys=True,
            ),
            file=out,
        )
        frames = 0
        try:
            while ns.iterations is None or frames < ns.iterations:
                frame = client.next_notification(timeout=ns.timeout)
                if frame is None:
                    continue
                print(json.dumps(frame, sort_keys=True), file=out)
                out.flush()
                frames += 1
        except KeyboardInterrupt:  # pragma: no cover — interactive exit
            pass
    return 0


def _cli_slow_queries(args: list[str], out: IO[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro slow-queries",
        description="Show the slow-query log of a running repro serve.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, required=True, help="server port")
    parser.add_argument(
        "--limit", type=int, metavar="N", help="at most the newest N records"
    )
    parser.add_argument(
        "--json", action="store_true", help="raw JSON records instead of the summary"
    )
    ns = parser.parse_args(args)
    from repro.server import ServerClient

    with ServerClient(ns.host, ns.port) as client:
        page = client.slow_queries(limit=ns.limit)
    records = page["slow_queries"]
    if ns.json:
        print(json.dumps(records, indent=2, sort_keys=True), file=out)
        return 0
    print(
        f"{len(records)} record(s) shown, {page['total']} captured total", file=out
    )
    for record in records:
        print(
            f"\n[{record.get('reason')}] {record.get('query')}"
            f"  ({record.get('elapsed_ms')} ms, queue"
            f" {record.get('queue_wait_ms')} ms,"
            f" strategy={record.get('strategy')},"
            f" stats v{record.get('stats_version')})",
            file=out,
        )
        if record.get("trace_id"):
            print(f"  trace_id: {record['trace_id']}", file=out)
        plan = record.get("plan")
        if plan:
            for line in str(plan).splitlines():
                print(f"  {line}", file=out)
    return 0


def _cli_init(args: list[str], out: IO[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro init",
        description="Create a durable storage directory seeded from a dataset"
        " or snapshot.",
    )
    parser.add_argument("path", help="storage directory to create")
    _add_db_arguments(parser)
    parser.add_argument(
        "--sync",
        choices=("always", "batch", "never"),
        default="batch",
        help="WAL fsync policy of the new store (default: batch)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=1024,
        metavar="N",
        help="WAL records between automatic checkpoints (default: 1024)",
    )
    ns = parser.parse_args(args)
    from repro.errors import StorageError

    source = _open_database(ns.dataset, ns.db)
    with Database.open(
        ns.path,
        schema=source.schema,
        graph=source.graph,
        sync=ns.sync,
        checkpoint_interval=ns.checkpoint_interval,
    ) as db:
        if not db.engine.durable:
            raise StorageError(f"{ns.path} did not open as a storage directory")
        instances = sum(
            len(db.graph.extent(c.name)) for c in db.schema.classes
        )
        print(
            f"initialized {ns.path}: schema {db.schema.name!r},"
            f" {instances} instance(s), sync={ns.sync}",
            file=out,
        )
    return 0


def _cli_wal(args: list[str], out: IO[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro wal",
        description="Inspect and verify a write-ahead log"
        " (checksums every record).",
    )
    parser.add_argument("path", help="storage directory or WAL file")
    parser.add_argument(
        "--tail", type=int, metavar="N", help="also print the last N records"
    )
    parser.add_argument("--json", action="store_true", help="JSON summary")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when the log has a torn tail",
    )
    ns = parser.parse_args(args)
    from pathlib import Path

    from repro.storage.wal import read_wal, wal_info

    path = Path(ns.path)
    if path.is_dir():
        path = path / "wal.log"
    info = wal_info(path)
    if ns.json:
        print(json.dumps(info.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        seqs = (
            f"seq {info.first_seq}..{info.last_seq}"
            if info.records
            else "empty"
        )
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(info.kinds.items()))
        print(f"{info.path}: {info.records} record(s), {seqs}", file=out)
        print(f"  {info.bytes} byte(s){', kinds: ' + kinds if kinds else ''}", file=out)
        if info.torn_bytes:
            print(
                f"  torn tail: {info.torn_bytes} byte(s) past the last"
                " complete record (recovery will truncate)",
                file=out,
            )
        else:
            print("  verified clean (every checksum valid)", file=out)
    if ns.tail:
        records, _, _ = read_wal(path)
        for record in records[-ns.tail :]:
            print(json.dumps(record.to_payload(), sort_keys=True), file=out)
    return 1 if (ns.strict and info.torn_bytes) else 0


_SUBCOMMANDS = {
    "trace": _cli_trace,
    "explain": _cli_explain,
    "analyze": _cli_analyze,
    "metrics": _cli_metrics,
    "serve": _cli_serve,
    "client": _cli_client,
    "events": _cli_events,
    "slow-queries": _cli_slow_queries,
    "subscribe": _cli_subscribe,
    "init": _cli_init,
    "wal": _cli_wal,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point: a subcommand, a snapshot file, or the interactive shell.

    ``repro trace|explain|metrics ...`` dispatch to the observability
    subcommands; any other first argument is treated as a snapshot path
    (shell over that database); no arguments opens the shell over the
    paper's university database.
    """
    args = argv if argv is not None else sys.argv[1:]
    if args and args[0] in _SUBCOMMANDS:
        try:
            return _SUBCOMMANDS[args[0]](args[1:], sys.stdout)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    try:
        if args:
            db = Database.open(args[0], create=False)
        else:
            from repro.datasets import university

            db = Database.from_dataset(university())
    except ReproError as exc:
        # A missing/corrupt snapshot is a user error, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    run_shell(db)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
