"""Rule engine: subscribes to a database's mutation events.

Evaluation is synchronous: each mutation evaluates the conditions of every
relevant rule against the *current* object graph.  Actions may themselves
mutate the database; the resulting recursive triggering is allowed up to
``max_depth`` and then refused (a runaway corrective loop is a rule bug
worth surfacing, not silently absorbing).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.errors import RuleError
from repro.rules.rule import Rule, RuleFiring

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.database import Database, MutationEvent

__all__ = ["RuleEngine"]


class RuleEngine:
    """Attaches rules to one database and processes its events."""

    def __init__(self, db: "Database", max_depth: int = 8) -> None:
        self.db = db
        self.max_depth = max_depth
        self._rules: dict[str, Rule] = {}
        self._depth = 0
        self.firings: list[RuleFiring] = []
        self.enabled = True
        # observability: share the database's registry when it has one
        self.metrics = getattr(db, "metrics", None)
        if self.metrics is not None:
            self._m_firings = self.metrics.counter(
                "repro_rule_firings_total", "Rule firings, by rule"
            )
            self._m_latency = self.metrics.histogram(
                "repro_rule_trigger_seconds",
                "Seconds from trigger to action completion, per firing",
            )
        db.subscribe(self._handle)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register(self, rule: Rule) -> None:
        if rule.name in self._rules:
            raise RuleError(f"rule {rule.name!r} already registered")
        self._rules[rule.name] = rule

    def unregister(self, name: str) -> None:
        if name not in self._rules:
            raise RuleError(f"no rule named {name!r}")
        del self._rules[name]

    @property
    def rules(self) -> tuple[Rule, ...]:
        return tuple(self._rules.values())

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------

    def _handle(self, db: "Database", event: "MutationEvent") -> None:
        if not self.enabled:
            return
        if self._depth >= self.max_depth:
            raise RuleError(
                f"rule recursion exceeded max depth {self.max_depth} "
                f"(event {event.kind})"
            )
        for rule in list(self._rules.values()):
            if not rule.relevant_to(event):
                continue
            started = time.perf_counter()
            result = rule.condition.evaluate(db.graph)
            if not rule.triggered_by(result):
                continue
            self._depth += 1
            try:
                self.firings.append(
                    RuleFiring(rule.name, event.kind, len(result), self._depth)
                )
                rule.action(db, event, result)
            finally:
                self._depth -= 1
                if self.metrics is not None:
                    self._m_firings.inc(rule=rule.name)
                    self._m_latency.observe(time.perf_counter() - started)

    # ------------------------------------------------------------------
    # maintenance helpers
    # ------------------------------------------------------------------

    def check_all(self) -> dict[str, bool]:
        """Evaluate every rule condition now (no actions): name → fires?"""
        return {
            name: rule.triggered_by(rule.condition.evaluate(self.db.graph))
            for name, rule in self._rules.items()
        }

    def violations(self) -> dict[str, int]:
        """Condition cardinalities of currently-firing 'exists' rules."""
        out: dict[str, int] = {}
        for name, rule in self._rules.items():
            result = rule.condition.evaluate(self.db.graph)
            if rule.triggered_by(result):
                out[name] = len(result)
        return out
