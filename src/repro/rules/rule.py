"""Rule specification.

A rule is *event–condition–action*:

* **event** — which mutation kinds trigger evaluation (``insert``,
  ``delete``, ``link``, ``unlink``, ``update``), optionally restricted to
  events touching given classes or associations;
* **condition** — an A-algebra expression; the rule *fires* when its
  result is non-empty (``when="exists"``, violation-style rules such as
  "a section without a teacher exists": ``Section ! Teacher``) or empty
  (``when="empty"``, existence requirements);
* **action** — a callable receiving the database, the triggering event and
  the condition's association-set.  Actions may mutate the database;
  re-entrant triggering is depth-limited by the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.assoc_set import AssociationSet
from repro.core.expression import Expr
from repro.errors import RuleError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.database import Database, MutationEvent

Action = Callable[["Database", "MutationEvent", AssociationSet], None]

__all__ = ["Rule", "RuleFiring"]

_EVENT_KINDS = frozenset({"insert", "delete", "link", "unlink", "update"})


@dataclass(frozen=True)
class Rule:
    """One event–condition–action knowledge rule."""

    name: str
    condition: Expr
    action: Action
    on: frozenset[str] = frozenset(_EVENT_KINDS)
    classes: frozenset[str] = frozenset()  # empty = any class
    when: str = "exists"
    description: str = ""

    def __post_init__(self) -> None:
        bad = self.on - _EVENT_KINDS
        if bad:
            raise RuleError(f"rule {self.name!r}: unknown event kinds {sorted(bad)}")
        if self.when not in ("exists", "empty"):
            raise RuleError(
                f"rule {self.name!r}: 'when' must be 'exists' or 'empty', "
                f"got {self.when!r}"
            )

    @classmethod
    def make(
        cls,
        name: str,
        condition: Expr,
        action: Action,
        on: Iterable[str] | None = None,
        classes: Iterable[str] = (),
        when: str = "exists",
        description: str = "",
    ) -> "Rule":
        """Ergonomic constructor accepting plain iterables."""
        return cls(
            name=name,
            condition=condition,
            action=action,
            on=frozenset(on) if on is not None else frozenset(_EVENT_KINDS),
            classes=frozenset(classes),
            when=when,
            description=description,
        )

    def relevant_to(self, event: "MutationEvent") -> bool:
        """Whether the event kind/classes match this rule's trigger."""
        if event.kind not in self.on:
            return False
        if not self.classes:
            return True
        return any(instance.cls in self.classes for instance in event.instances)

    def triggered_by(self, result: AssociationSet) -> bool:
        """Whether the condition result fires the rule."""
        if self.when == "exists":
            return bool(result)
        return not result


@dataclass(frozen=True)
class RuleFiring:
    """One recorded firing: which rule fired, on what, with what result."""

    rule: str
    event_kind: str
    matched: int  # cardinality of the condition result
    depth: int

    def __str__(self) -> str:
        return (
            f"[depth {self.depth}] rule {self.rule!r} fired on "
            f"{self.event_kind} ({self.matched} pattern(s))"
        )
