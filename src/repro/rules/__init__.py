"""Knowledge rules over the A-algebra.

The paper notes that association semantics "are either implemented in the
O-O DBMS or declared by rules which are then processed by a rule
processing component" (§2), and that the algebra underpins "a knowledge
rule specification language" [ALA90].  This package provides that
component: rules whose *condition* is an A-algebra expression evaluated
against the database on mutation events, with a corrective/notifying
action when the condition's association-set is non-empty (or empty, for
existence requirements).
"""

from repro.rules.engine import RuleEngine
from repro.rules.rule import Rule, RuleFiring

__all__ = ["Rule", "RuleEngine", "RuleFiring"]
