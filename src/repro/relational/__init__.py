"""A from-scratch relational algebra baseline (Codd 1970/1972).

The paper positions the A-algebra against the record-based relational
algebra: relational queries "match key attributes with foreign keys in
different relations", require union-compatible operands, and need "complex
nested query blocks or multiple queries" for the paper's pattern queries.
This package provides the comparator: a clean relational algebra
(:mod:`repro.relational.algebra`), an O-O→relational mapper
(:mod:`repro.relational.mapping`), and relational formulations of the
paper's queries (:mod:`repro.relational.queries`) used by the benchmark
harness.
"""

from repro.relational.algebra import Relation
from repro.relational.mapping import RelationalDatabase, map_object_graph

__all__ = ["Relation", "RelationalDatabase", "map_object_graph"]
