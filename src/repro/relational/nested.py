"""Nested relations (NF²) — the paper's other comparison point.

§1 criticizes query languages that use nested relations as their logical
view of an O-O database: "the relationships among objects in O-O
databases are not restricted to plane graphs ... In order to use a nested
relation to represent these complex structures, a large amount of data
has to be replicated in the representation."

This module provides the machinery to *measure* that claim:

* :class:`NestedRelation` — an immutable NF² relation (cells are atoms or
  nested relations) with the classical ``nest`` / ``unnest`` operators;
* :func:`nested_view` — materialize a hierarchical view of an object
  graph (a rooted class tree), the way a nested-relational front-end
  would represent it.  An object reachable along several paths (a student
  taking two sections; a shared subassembly) is *copied* into each — its
  replication is exactly what :meth:`NestedRelation.atom_count` exposes
  when compared with :func:`graph_atom_count`.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.core.identity import IID
from repro.objects.graph import ObjectGraph
from repro.relational.algebra import Relation, RelationalError

__all__ = [
    "NestedRelation",
    "nested_view",
    "graph_atom_count",
]


class NestedRelation:
    """An immutable relation whose cells are atoms or nested relations."""

    __slots__ = ("name", "attributes", "rows", "_index")

    def __init__(
        self,
        name: str,
        attributes: Iterable[str],
        rows: Iterable[tuple] = (),
    ) -> None:
        self.name = name
        self.attributes = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise RelationalError(f"duplicate attribute names in {self.attributes}")
        frozen = frozenset(tuple(row) for row in rows)
        for row in frozen:
            if len(row) != len(self.attributes):
                raise RelationalError(
                    f"row arity {len(row)} does not match {self.attributes}"
                )
        self.rows = frozen
        self._index = {attr: i for i, attr in enumerate(self.attributes)}

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NestedRelation):
            return NotImplemented
        return self.attributes == other.attributes and self.rows == other.rows

    def __hash__(self) -> int:
        return hash((self.attributes, self.rows))

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)}): {len(self.rows)} rows"

    def _attr_index(self, attribute: str) -> int:
        try:
            return self._index[attribute]
        except KeyError:
            raise RelationalError(
                f"{self.name} has no attribute {attribute!r}"
            ) from None

    # ------------------------------------------------------------------
    # NF² operators
    # ------------------------------------------------------------------

    @classmethod
    def from_flat(cls, relation: Relation) -> "NestedRelation":
        """Lift a flat relation (1NF is a special case of NF²)."""
        return cls(relation.name, relation.attributes, relation.rows)

    def nest(self, attributes: Iterable[str], as_name: str) -> "NestedRelation":
        """NEST: bundle ``attributes`` into a sub-relation per group.

        Rows agreeing on the remaining attributes collapse into one row
        whose ``as_name`` cell is the nested relation of their bundled
        parts.
        """
        bundled = tuple(attributes)
        for attr in bundled:
            self._attr_index(attr)
        keep = tuple(a for a in self.attributes if a not in bundled)
        if not keep:
            raise RelationalError("NEST must leave at least one attribute flat")
        if as_name in keep:
            raise RelationalError(f"nested attribute name {as_name!r} collides")
        keep_idx = [self._attr_index(a) for a in keep]
        bundle_idx = [self._attr_index(a) for a in bundled]
        groups: dict[tuple, set[tuple]] = {}
        for row in self.rows:
            key = tuple(row[i] for i in keep_idx)
            groups.setdefault(key, set()).add(tuple(row[i] for i in bundle_idx))
        rows = [
            key + (NestedRelation(as_name, bundled, bundle),)
            for key, bundle in groups.items()
        ]
        return NestedRelation(f"ν({self.name})", keep + (as_name,), rows)

    def unnest(self, attribute: str) -> "NestedRelation":
        """UNNEST: expand a nested-relation attribute back into flat rows."""
        index = self._attr_index(attribute)
        keep = tuple(a for a in self.attributes if a != attribute)
        keep_idx = [self._attr_index(a) for a in keep]
        new_attrs: tuple[str, ...] | None = None
        rows: list[tuple] = []
        for row in self.rows:
            cell = row[index]
            if not isinstance(cell, NestedRelation):
                raise RelationalError(
                    f"attribute {attribute!r} holds atom {cell!r}, cannot unnest"
                )
            if new_attrs is None:
                new_attrs = cell.attributes
            elif new_attrs != cell.attributes:
                raise RelationalError(
                    f"inconsistent nested schemas under {attribute!r}"
                )
            prefix = tuple(row[i] for i in keep_idx)
            for inner in cell.rows:
                rows.append(prefix + inner)
        attributes = keep + (new_attrs if new_attrs is not None else ())
        return NestedRelation(f"μ({self.name})", attributes, rows)

    # ------------------------------------------------------------------
    # the replication metric
    # ------------------------------------------------------------------

    def atom_count(self) -> int:
        """Total number of atomic cells stored, nested parts included."""
        total = 0
        for row in self.rows:
            for cell in row:
                if isinstance(cell, NestedRelation):
                    total += cell.atom_count()
                else:
                    total += 1
        return total

    def depth(self) -> int:
        """Maximum nesting depth (a flat relation has depth 1)."""
        deepest = 1
        for row in self.rows:
            for cell in row:
                if isinstance(cell, NestedRelation):
                    deepest = max(deepest, 1 + cell.depth())
        return deepest


def _cell_for(graph: ObjectGraph, instance: IID) -> Any:
    value = graph.value(instance)
    return value if value is not None else instance.label


def nested_view(
    graph: ObjectGraph,
    root_cls: str,
    children: Mapping[str, Mapping],
    assoc_names: Mapping[tuple[str, str], str] | None = None,
) -> NestedRelation:
    """Materialize a hierarchical (tree) view of the object graph.

    ``children`` maps child class → its own children mapping, e.g.::

        nested_view(g, "Department", {"Course": {"Section": {"Student": {}}}})

    Every instance reachable along two tree paths is materialized twice —
    the replication the paper ascribes to nested-relation views of object
    graphs.  ``assoc_names`` optionally picks the association for a
    (parent, child) class pair when several exist.
    """
    names = assoc_names if assoc_names is not None else {}

    def build(cls: str, instance: IID, spec: Mapping[str, Mapping]) -> tuple:
        cells: list[Any] = [_cell_for(graph, instance)]
        for child_cls, child_spec in spec.items():
            assoc = graph.schema.resolve(cls, child_cls, names.get((cls, child_cls)))
            child_rows = [
                build(child_cls, partner, child_spec)
                for partner in sorted(graph.partners(assoc, instance))
                if partner.cls == child_cls
            ]
            cells.append(
                NestedRelation(
                    child_cls, _attrs_for(child_cls, child_spec), child_rows
                )
            )
        return tuple(cells)

    def _attrs_for(cls: str, spec: Mapping[str, Mapping]) -> tuple[str, ...]:
        return (cls,) + tuple(spec)

    rows = [
        build(root_cls, instance, children)
        for instance in sorted(graph.extent(root_cls))
    ]
    return NestedRelation(
        f"view:{root_cls}", _attrs_for(root_cls, children), rows
    )


def graph_atom_count(graph: ObjectGraph) -> int:
    """The object graph's own storage: one atom per instance plus one per
    regular edge (complement edges are derived and cost nothing)."""
    instances = sum(1 for _ in graph.instances())
    edges = sum(
        graph.edge_count(assoc) for assoc in graph.schema.associations
    )
    return instances + edges
