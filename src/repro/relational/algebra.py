"""Relational algebra over named-attribute relations.

Implements the classical operators (select, project, rename, natural
join, cartesian product, union, difference, intersection, division) on an
immutable :class:`Relation` value type.  This is the record-based
comparison point the paper's §1/§2 discussion contrasts the A-algebra
with, so union-compatibility is *enforced* here exactly where the
A-algebra drops it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.errors import ReproError

__all__ = ["Relation", "RelationalError"]


class RelationalError(ReproError):
    """A relational-algebra operation was applied illegally."""


class Relation:
    """An immutable relation: named attributes plus a set of tuples."""

    __slots__ = ("name", "attributes", "rows", "_index")

    def __init__(
        self,
        name: str,
        attributes: Iterable[str],
        rows: Iterable[tuple] = (),
    ) -> None:
        self.name = name
        self.attributes = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise RelationalError(f"duplicate attribute names in {self.attributes}")
        frozen = frozenset(tuple(row) for row in rows)
        for row in frozen:
            if len(row) != len(self.attributes):
                raise RelationalError(
                    f"row {row!r} does not match attributes {self.attributes}"
                )
        self.rows = frozen
        self._index = {attr: i for i, attr in enumerate(self.attributes)}

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.attributes == other.attributes and self.rows == other.rows

    def __hash__(self) -> int:
        return hash((self.attributes, self.rows))

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)}): {len(self.rows)} rows"

    def column(self, attribute: str) -> set:
        """All values of one attribute."""
        index = self._attr_index(attribute)
        return {row[index] for row in self.rows}

    def _attr_index(self, attribute: str) -> int:
        try:
            return self._index[attribute]
        except KeyError:
            raise RelationalError(
                f"{self.name} has no attribute {attribute!r} "
                f"(has {self.attributes})"
            ) from None

    # ------------------------------------------------------------------
    # unary operators
    # ------------------------------------------------------------------

    def select(self, predicate: Callable[[Mapping[str, Any]], bool]) -> "Relation":
        """σ with an arbitrary row predicate (rows exposed as dicts)."""
        keep = [
            row
            for row in self.rows
            if predicate(dict(zip(self.attributes, row)))
        ]
        return Relation(f"σ({self.name})", self.attributes, keep)

    def select_eq(self, attribute: str, value: Any) -> "Relation":
        """σ attribute = value — the common case, index-friendly."""
        index = self._attr_index(attribute)
        keep = [row for row in self.rows if row[index] == value]
        return Relation(f"σ({self.name})", self.attributes, keep)

    def project(self, attributes: Iterable[str]) -> "Relation":
        """π with duplicate elimination."""
        wanted = tuple(attributes)
        indices = [self._attr_index(attr) for attr in wanted]
        rows = {tuple(row[i] for i in indices) for row in self.rows}
        return Relation(f"π({self.name})", wanted, rows)

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """ρ: rename attributes (unmentioned ones keep their names)."""
        for old in mapping:
            self._attr_index(old)  # validate
        attributes = tuple(mapping.get(attr, attr) for attr in self.attributes)
        return Relation(f"ρ({self.name})", attributes, self.rows)

    # ------------------------------------------------------------------
    # binary operators
    # ------------------------------------------------------------------

    def _require_compatible(self, other: "Relation", op: str) -> None:
        if self.attributes != other.attributes:
            raise RelationalError(
                f"{op} requires union-compatible operands: "
                f"{self.attributes} vs {other.attributes}"
            )

    def union(self, other: "Relation") -> "Relation":
        self._require_compatible(other, "UNION")
        return Relation(
            f"({self.name} ∪ {other.name})", self.attributes, self.rows | other.rows
        )

    def difference(self, other: "Relation") -> "Relation":
        self._require_compatible(other, "DIFFERENCE")
        return Relation(
            f"({self.name} − {other.name})", self.attributes, self.rows - other.rows
        )

    def intersection(self, other: "Relation") -> "Relation":
        self._require_compatible(other, "INTERSECT")
        return Relation(
            f"({self.name} ∩ {other.name})", self.attributes, self.rows & other.rows
        )

    def cartesian(self, other: "Relation") -> "Relation":
        overlap = set(self.attributes) & set(other.attributes)
        if overlap:
            raise RelationalError(
                f"cartesian product with shared attributes {sorted(overlap)}; "
                f"rename first"
            )
        attributes = self.attributes + other.attributes
        rows = [mine + theirs for mine in self.rows for theirs in other.rows]
        return Relation(f"({self.name} × {other.name})", attributes, rows)

    def natural_join(self, other: "Relation") -> "Relation":
        """⋈ on all shared attribute names (hash join)."""
        shared = [attr for attr in self.attributes if attr in other._index]
        if not shared:
            return self.cartesian(other)
        my_key = [self._attr_index(attr) for attr in shared]
        other_key = [other._attr_index(attr) for attr in shared]
        other_rest = [
            i for i, attr in enumerate(other.attributes) if attr not in shared
        ]
        table: dict[tuple, list[tuple]] = {}
        for row in other.rows:
            key = tuple(row[i] for i in other_key)
            table.setdefault(key, []).append(tuple(row[i] for i in other_rest))
        attributes = self.attributes + tuple(
            attr for attr in other.attributes if attr not in shared
        )
        rows = []
        for row in self.rows:
            key = tuple(row[i] for i in my_key)
            for rest in table.get(key, ()):
                rows.append(row + rest)
        return Relation(f"({self.name} ⋈ {other.name})", attributes, rows)

    def divide(self, other: "Relation") -> "Relation":
        """÷: the tuples over (self.attrs − other.attrs) related to every
        tuple of ``other``."""
        divisor_attrs = other.attributes
        for attr in divisor_attrs:
            self._attr_index(attr)
        keep_attrs = tuple(a for a in self.attributes if a not in divisor_attrs)
        if not keep_attrs:
            raise RelationalError("division would produce a zero-ary relation")
        keep_idx = [self._attr_index(a) for a in keep_attrs]
        div_idx = [self._attr_index(a) for a in divisor_attrs]
        groups: dict[tuple, set[tuple]] = {}
        for row in self.rows:
            key = tuple(row[i] for i in keep_idx)
            groups.setdefault(key, set()).add(tuple(row[i] for i in div_idx))
        required = set(other.rows)
        rows = [key for key, seen in groups.items() if required <= seen]
        return Relation(f"({self.name} ÷ {other.name})", keep_attrs, rows)
