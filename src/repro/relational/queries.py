"""Relational formulations of the paper's Queries 1–5.

These are the baseline the benchmarks compare against.  Two observations
the paper makes become concrete here:

* **Query 2** cannot be phrased as a single relational expression: "this
  query cannot be phrased in a single relational algebraic expression,
  since the union of heterogeneous structures is involved" — so
  :func:`query2_specialties` and :func:`query2_student_records` are two
  separate queries whose results the application must correlate.
* **Query 4**'s non-association needs set difference against projections
  (anti-join), where the A-algebra has the direct ``!`` operator.
"""

from __future__ import annotations

from repro.relational.algebra import Relation
from repro.relational.mapping import RelationalDatabase, value_attr

__all__ = [
    "query1",
    "query2_specialties",
    "query2_student_records",
    "query3",
    "query4",
    "query5",
]


def query1(db: RelationalDatabase) -> Relation:
    """SS#s of TAs: a four-way join chain, projected to the value."""
    chain = db.chain("TA", "Grad", "Student", "Person", "SS#")
    return chain.project([value_attr("SS#")])


def query2_specialties(db: RelationalDatabase) -> Relation:
    """CIS sections' teachers' specialties: (Section, Specialty$value)."""
    cis_departments = (
        db.cls("Name")
        .select_eq(value_attr("Name"), "CIS")
        .natural_join(db.assoc("Name", "Department"))
    )
    chain = (
        cis_departments.natural_join(db.assoc("Department", "Course"))
        .natural_join(db.assoc("Course", "Section"))
        .natural_join(db.assoc("Teacher", "Section"))
        .natural_join(db.assoc("Faculty", "Teacher"))
        .natural_join(db.assoc("Faculty", "Specialty"))
        .natural_join(db.cls("Specialty"))
    )
    return chain.project(["Section", value_attr("Specialty")])


def query2_student_records(db: RelationalDatabase) -> Relation:
    """GPA and EarnedCredit of students in CIS sections."""
    cis_departments = (
        db.cls("Name")
        .select_eq(value_attr("Name"), "CIS")
        .natural_join(db.assoc("Name", "Department"))
    )
    chain = (
        cis_departments.natural_join(db.assoc("Department", "Course"))
        .natural_join(db.assoc("Course", "Section"))
        .natural_join(db.assoc("Student", "Section"))
        .natural_join(db.assoc("Student", "GPA"))
        .natural_join(db.cls("GPA"))
        .natural_join(db.assoc("Student", "EarnedCredit"))
        .natural_join(db.cls("EarnedCredit"))
    )
    return chain.project(
        ["Section", value_attr("GPA"), value_attr("EarnedCredit")]
    )


def query3(db: RelationalDatabase) -> Relation:
    """Names of students who teach in their major department.

    The natural join on (Student, Department) implements the paper's
    double A-Intersect: the major edge and the teaches-in edge must meet
    at the same Department for the same student.
    """
    named = (
        db.cls("Student")
        .natural_join(db.assoc("Student", "Person"))
        .natural_join(db.assoc("Person", "Name"))
        .natural_join(db.cls("Name"))
    )
    majors = named.natural_join(db.assoc("Student", "Department"))
    teaching = (
        db.assoc("TA", "Grad")
        .natural_join(db.assoc("Grad", "Student"))
        .natural_join(db.assoc("TA", "Teacher"))
        .natural_join(db.assoc("Teacher", "Department"))
    )
    return majors.natural_join(teaching).project([value_attr("Name")])


def query4(db: RelationalDatabase) -> Relation:
    """Section#s of sections lacking a room or a teacher (anti-joins)."""
    sections = db.cls("Section")
    with_room = db.assoc("Section", "Room#").project(["Section"])
    with_teacher = db.assoc("Teacher", "Section").project(["Section"])
    missing = sections.difference(with_room).union(
        sections.difference(with_teacher)
    )
    numbered = missing.natural_join(db.assoc("Section", "Section#")).natural_join(
        db.cls("Section#")
    )
    return numbered.project([value_attr("Section#")])


def query5(db: RelationalDatabase) -> Relation:
    """Names of students enrolled in both 6010 and 6020 (division)."""
    enrollments = (
        db.cls("Student")
        .natural_join(db.assoc("Student", "Enrollment"))
        .natural_join(db.assoc("Enrollment", "Course"))
        .natural_join(db.assoc("Course", "Course#"))
        .natural_join(db.cls("Course#"))
        .project(["Student", value_attr("Course#")])
    )
    wanted = Relation("wanted", (value_attr("Course#"),), [(6010,), (6020,)])
    qualifying = enrollments.divide(wanted)
    named = (
        qualifying.natural_join(db.assoc("Student", "Person"))
        .natural_join(db.assoc("Person", "Name"))
        .natural_join(db.cls("Name"))
    )
    return named.project([value_attr("Name")])
