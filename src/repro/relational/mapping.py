"""Mapping an O-O database to relations.

The standard shredding: one unary relation per class (attribute named
after the class, holding IIDs; primitive classes get an extra
``<cls>$value`` attribute) and one binary relation per association
(attributes named after its two end classes, holding IIDs).  Attribute
naming is chosen so that *natural join* walks the schema graph exactly the
way Associate does — which keeps the relational formulations of the
paper's queries honest.

For generalization diamonds (a class reachable from another via two is-a
paths) and recursive roles, :meth:`RelationalDatabase.role` renames end
attributes explicitly.
"""

from __future__ import annotations

from repro.objects.graph import ObjectGraph
from repro.relational.algebra import Relation, RelationalError

__all__ = ["RelationalDatabase", "map_object_graph", "value_attr"]


def value_attr(cls: str) -> str:
    """The value attribute name of a primitive class relation."""
    return f"{cls}$value"


class RelationalDatabase:
    """The relational image of one object graph."""

    def __init__(self, graph: ObjectGraph) -> None:
        self.graph = graph
        self.schema = graph.schema
        self.classes: dict[str, Relation] = {}
        self.associations: dict[str, Relation] = {}
        self._build()

    def _build(self) -> None:
        for cdef in self.schema.classes:
            extent = sorted(self.graph.extent(cdef.name))
            if cdef.is_primitive:
                rows = [(iid, self.graph.value(iid)) for iid in extent]
                relation = Relation(
                    cdef.name, (cdef.name, value_attr(cdef.name)), rows
                )
            else:
                relation = Relation(cdef.name, (cdef.name,), [(iid,) for iid in extent])
            self.classes[cdef.name] = relation
        for assoc in self.schema.associations:
            if assoc.left == assoc.right:
                attributes = (f"{assoc.left}.1", f"{assoc.right}.2")
            else:
                attributes = (assoc.left, assoc.right)
            rows = list(self.graph.edges(assoc))
            self.associations[assoc.name] = Relation(assoc.name, attributes, rows)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def cls(self, name: str) -> Relation:
        try:
            return self.classes[name]
        except KeyError:
            raise RelationalError(f"no class relation {name!r}") from None

    def assoc(self, left: str, right: str, name: str | None = None) -> Relation:
        """The association relation between two classes (name optional)."""
        association = self.schema.resolve(left, right, name)
        return self.associations[association.name]

    def role(
        self, left: str, right: str, renames: dict[str, str], name: str | None = None
    ) -> Relation:
        """An association relation with its end attributes renamed."""
        return self.assoc(left, right, name).rename(renames)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def chain(self, *classes: str) -> Relation:
        """Natural-join the class chain ``C1 ⋈ R(C1,C2) ⋈ C2 ⋈ ...``.

        The relational analogue of ``C1 * C2 * ...``; used pervasively by
        the baseline query formulations and benchmarks.
        """
        if not classes:
            raise RelationalError("chain() needs at least one class")
        result = self.cls(classes[0])
        for left, right in zip(classes, classes[1:]):
            result = result.natural_join(self.assoc(left, right))
            result = result.natural_join(self.cls(right))
        return result

    def table_count(self) -> int:
        return len(self.classes) + len(self.associations)


def map_object_graph(graph: ObjectGraph) -> RelationalDatabase:
    """Shred ``graph`` into its relational image."""
    return RelationalDatabase(graph)
