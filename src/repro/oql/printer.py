"""Render algebra expressions back to parseable OQL text.

``to_oql`` is the inverse of :func:`repro.oql.compile_oql` up to
parenthesization: for every printable expression,
``compile_oql(to_oql(e), schema) == e`` (property-tested).  This gives
query *serialization* — plans and rules can be stored as text.

Not everything is printable: :class:`Literal` nodes wrap materialized
association-sets (no textual form), and predicates may carry opaque
Python callbacks; those raise :class:`OQLPrintError`.
"""

from __future__ import annotations

from repro.core.expression import (
    Associate,
    ClassExtent,
    Complement,
    Difference,
    Divide,
    Expr,
    Intersect,
    Literal,
    NonAssociate,
    Project,
    Select,
    Union,
)
from repro.core.predicates import (
    And,
    Apply,
    ClassInstances,
    ClassValues,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    TruePredicate,
    ValueExpr,
)
from repro.errors import OQLError

__all__ = ["to_oql", "OQLPrintError"]


class OQLPrintError(OQLError):
    """The expression contains a node with no OQL surface form."""


def to_oql(expr: Expr) -> str:
    """Parseable OQL text for ``expr`` (fully parenthesized)."""
    return _expr(expr)


def _expr(expr: Expr) -> str:
    if isinstance(expr, ClassExtent):
        return expr.name
    if isinstance(expr, Literal):
        raise OQLPrintError(
            f"literal association-set {expr.label!r} has no OQL form"
        )
    if isinstance(expr, Associate):
        return _binary(expr, "*")
    if isinstance(expr, Complement):
        return _binary(expr, "|")
    if isinstance(expr, NonAssociate):
        return _binary(expr, "!")
    if isinstance(expr, Intersect):
        return _classed(expr, "&")
    if isinstance(expr, Divide):
        return _classed(expr, "/")
    if isinstance(expr, Union):
        return f"({_expr(expr.left)} + {_expr(expr.right)})"
    if isinstance(expr, Difference):
        return f"({_expr(expr.left)} - {_expr(expr.right)})"
    if isinstance(expr, Select):
        return f"sigma({_expr(expr.operand)})[{_predicate(expr.predicate)}]"
    if isinstance(expr, Project):
        templates = ", ".join("*".join(t.classes) for t in expr.templates)
        links = "; " + ", ".join(":".join(t.classes) for t in expr.links) if expr.links else ""
        return f"pi({_expr(expr.operand)})[{templates}{links}]"
    raise OQLPrintError(f"no OQL form for {type(expr).__name__}")


def _binary(expr, symbol: str) -> str:
    annotation = ""
    if expr.spec is not None:
        name = expr.spec.name if expr.spec.name is not None else ""
        annotation = f"[{name}({expr.spec.alpha_class}, {expr.spec.beta_class})]"
    return f"({_expr(expr.left)} {symbol}{annotation} {_expr(expr.right)})"


def _classed(expr, symbol: str) -> str:
    over = ""
    if expr.classes is not None:
        over = "{" + ", ".join(sorted(expr.classes)) + "}"
    return f"({_expr(expr.left)} {symbol}{over} {_expr(expr.right)})"


def _predicate(predicate: Predicate) -> str:
    if isinstance(predicate, Comparison):
        return f"{_value(predicate.left)} {predicate.op} {_value(predicate.right)}"
    if isinstance(predicate, And):
        return "(" + " and ".join(_predicate(p) for p in predicate.operands) + ")"
    if isinstance(predicate, Or):
        return "(" + " or ".join(_predicate(p) for p in predicate.operands) + ")"
    if isinstance(predicate, Not):
        return f"not {_predicate(predicate.operand)}"
    if isinstance(predicate, TruePredicate):
        return "1 = 1"
    raise OQLPrintError(f"no OQL form for predicate {type(predicate).__name__}")


def _value(value: ValueExpr) -> str:
    if isinstance(value, Const):
        if isinstance(value.value, str):
            escaped = value.value.replace("'", "")
            return f"'{escaped}'"
        if isinstance(value.value, (int, float)) and not isinstance(
            value.value, bool
        ):
            return repr(value.value)
        raise OQLPrintError(f"constant {value.value!r} has no OQL literal form")
    if isinstance(value, ClassValues):
        return value.cls
    if isinstance(value, Apply):
        if isinstance(value.operand, ClassInstances):
            return f"{value.fn_name}({value.operand.cls})"
        return f"{value.fn_name}({_value(value.operand)})"
    raise OQLPrintError(f"no OQL form for value {type(value).__name__}")
