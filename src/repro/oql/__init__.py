"""OQL — the textual query language over the A-algebra.

The paper (§1) presents the A-algebra as the formal basis of the OQL
language of OSAM* [ALA89].  This package provides a textual front-end in
that spirit: queries are written in algebra notation with ASCII operator
spellings and compiled against a schema graph into
:class:`~repro.core.expression.Expr` trees.

Operator spellings (precedence high → low, unary first)::

    sigma(expr)[pred]      A-Select           σ(α)[P]
    pi(expr)[E; T]         A-Project          Π(α)[E; T]
    *   [name(A,B)]?       Associate
    |   [name(A,B)]?       A-Complement
    !   [name(A,B)]?       NonAssociate
    &   {W}?               A-Intersect
    /   {W}?               A-Divide
    -                      A-Difference
    +                      A-Union

Example (the paper's Query 4)::

    pi(Section# * (Section ! Room# + Section ! Teacher))[Section#]
"""

from repro.oql.lexer import Lexer, Token, TokenType
from repro.oql.parser import Parser, compile_oql
from repro.oql.printer import OQLPrintError, to_oql
from repro.oql.sugar import navigate

__all__ = [
    "compile_oql",
    "to_oql",
    "navigate",
    "Parser",
    "Lexer",
    "Token",
    "TokenType",
    "OQLPrintError",
]
