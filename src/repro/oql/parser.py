"""OQL recursive-descent parser and compiler.

Parses the OQL surface syntax (see :mod:`repro.oql`) directly into
:class:`~repro.core.expression.Expr` trees, validating class names and
explicit association annotations against a :class:`SchemaGraph` as it goes.
The operator precedence follows the pinned reading of §3.3.3
(``* > | > ! > & > ÷ > − > +``; unary operators highest).
"""

from __future__ import annotations

from repro.core.expression import (
    AssocSpec,
    Associate,
    Complement,
    Difference,
    Divide,
    Expr,
    Intersect,
    NonAssociate,
    Project,
    Select,
    Union,
    ref,
)
from repro.core.operators.project import ChainTemplate, PathLink
from repro.core.predicates import (
    And,
    Apply,
    ClassInstances,
    ClassValues,
    Comparison,
    Const,
    FunctionRegistry,
    Not,
    Or,
    Predicate,
    ValueExpr,
)
from repro.errors import OQLCompileError, OQLSyntaxError
from repro.oql.lexer import Token, TokenType, tokenize
from repro.schema.graph import SchemaGraph

__all__ = ["Parser", "compile_oql"]


def compile_oql(
    text: str,
    schema: SchemaGraph,
    functions: FunctionRegistry | None = None,
) -> Expr:
    """Compile OQL ``text`` against ``schema`` into an algebra expression."""
    return Parser(text, schema, functions).parse()


class Parser:
    """One-shot parser for a single OQL query."""

    def __init__(
        self,
        text: str,
        schema: SchemaGraph,
        functions: FunctionRegistry | None = None,
    ) -> None:
        self.tokens = tokenize(text)
        self.index = 0
        self.schema = schema
        self.functions = functions

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def _check(self, type_: TokenType) -> bool:
        return self._peek().type is type_

    def _match(self, type_: TokenType) -> Token | None:
        if self._check(type_):
            return self._advance()
        return None

    def _expect(self, type_: TokenType, context: str) -> Token:
        token = self._peek()
        if token.type is not type_:
            raise OQLSyntaxError(
                f"expected {type_.value} {context}, found {token}",
                token.line,
                token.column,
            )
        return self._advance()

    def _fail(self, message: str) -> OQLSyntaxError:
        token = self._peek()
        return OQLSyntaxError(message, token.line, token.column)

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def parse(self) -> Expr:
        expr = self._union()
        if not self._check(TokenType.EOF):
            raise self._fail(f"unexpected trailing input {self._peek()}")
        return expr

    # ------------------------------------------------------------------
    # binary operator ladder (lowest precedence first)
    # ------------------------------------------------------------------

    def _union(self) -> Expr:
        left = self._difference()
        while self._match(TokenType.PLUS):
            left = Union(left, self._difference())
        return left

    def _difference(self) -> Expr:
        left = self._divide()
        while self._match(TokenType.MINUS):
            left = Difference(left, self._divide())
        return left

    def _divide(self) -> Expr:
        left = self._intersect()
        while self._match(TokenType.SLASH):
            classes = self._class_set()
            left = Divide(left, self._intersect(), classes)
        return left

    def _intersect(self) -> Expr:
        left = self._nonassociate()
        while self._match(TokenType.AMP):
            classes = self._class_set()
            left = Intersect(left, self._nonassociate(), classes)
        return left

    def _nonassociate(self) -> Expr:
        left = self._complement()
        while self._match(TokenType.BANG):
            spec = self._assoc_spec()
            left = NonAssociate(left, self._complement(), spec)
        return left

    def _complement(self) -> Expr:
        left = self._associate()
        while self._match(TokenType.PIPE):
            spec = self._assoc_spec()
            left = Complement(left, self._associate(), spec)
        return left

    def _associate(self) -> Expr:
        left = self._unary()
        while self._match(TokenType.STAR):
            spec = self._assoc_spec()
            left = Associate(left, self._unary(), spec)
        return left

    # ------------------------------------------------------------------
    # annotations
    # ------------------------------------------------------------------

    def _class_set(self) -> frozenset[str] | None:
        """Optional ``{C1, C2, ...}`` after ``&`` or ``/``."""
        if not self._match(TokenType.LBRACE):
            return None
        names = [self._class_name("inside a class set")]
        while self._match(TokenType.COMMA):
            names.append(self._class_name("inside a class set"))
        self._expect(TokenType.RBRACE, "to close the class set")
        return frozenset(names)

    def _assoc_spec(self) -> AssocSpec | None:
        """Optional ``[name(A,B)]`` or ``[(A,B)]`` after ``*``, ``|``, ``!``."""
        if not self._check(TokenType.LBRACKET):
            return None
        self._advance()
        name: str | None = None
        if self._check(TokenType.IDENT):
            name = self._advance().text
        self._expect(TokenType.LPAREN, "in an association annotation")
        alpha_class = self._class_name("as the association's first class")
        self._expect(TokenType.COMMA, "in an association annotation")
        beta_class = self._class_name("as the association's second class")
        self._expect(TokenType.RPAREN, "to close the association annotation")
        self._expect(TokenType.RBRACKET, "to close the association annotation")
        try:
            self.schema.resolve(alpha_class, beta_class, name)
        except Exception as exc:
            raise OQLCompileError(str(exc)) from exc
        return AssocSpec(alpha_class, beta_class, name)

    def _class_name(self, context: str) -> str:
        token = self._expect(TokenType.IDENT, context)
        if not self.schema.has_class(token.text):
            raise OQLCompileError(
                f"unknown class {token.text!r} "
                f"(line {token.line}, column {token.column})"
            )
        return token.text

    # ------------------------------------------------------------------
    # unary operators and atoms
    # ------------------------------------------------------------------

    def _unary(self) -> Expr:
        if self._match(TokenType.KW_SIGMA):
            return self._sigma()
        if self._match(TokenType.KW_PI):
            return self._pi()
        if self._match(TokenType.LPAREN):
            inner = self._union()
            self._expect(TokenType.RPAREN, "to close the parenthesis")
            return inner
        if self._check(TokenType.IDENT):
            return ref(self._class_name("as a class reference"))
        raise self._fail(f"expected an expression, found {self._peek()}")

    def _sigma(self) -> Select:
        self._expect(TokenType.LPAREN, "after sigma")
        operand = self._union()
        self._expect(TokenType.RPAREN, "to close sigma's operand")
        self._expect(TokenType.LBRACKET, "to open sigma's predicate")
        predicate = self._predicate()
        self._expect(TokenType.RBRACKET, "to close sigma's predicate")
        return Select(operand, predicate)

    def _pi(self) -> Project:
        self._expect(TokenType.LPAREN, "after pi")
        operand = self._union()
        self._expect(TokenType.RPAREN, "to close pi's operand")
        self._expect(TokenType.LBRACKET, "to open pi's [E; T] clause")
        templates = [self._template()]
        while self._match(TokenType.COMMA):
            templates.append(self._template())
        links: list[PathLink] = []
        if self._match(TokenType.SEMICOLON):
            links.append(self._link())
            while self._match(TokenType.COMMA):
                links.append(self._link())
        self._expect(TokenType.RBRACKET, "to close pi's [E; T] clause")
        return Project(operand, tuple(templates), tuple(links))

    def _template(self) -> ChainTemplate:
        names = [self._class_name("in a projection template")]
        while self._match(TokenType.STAR):
            names.append(self._class_name("in a projection template"))
        return ChainTemplate(tuple(names))

    def _link(self) -> PathLink:
        names = [self._class_name("in a path link")]
        self._expect(TokenType.COLON, "in a path link")
        names.append(self._class_name("in a path link"))
        while self._match(TokenType.COLON):
            names.append(self._class_name("in a path link"))
        return PathLink(tuple(names))

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------

    def _predicate(self) -> Predicate:
        return self._pred_or()

    def _pred_or(self) -> Predicate:
        left = self._pred_and()
        while self._match(TokenType.KW_OR):
            left = Or(left, self._pred_and())
        return left

    def _pred_and(self) -> Predicate:
        left = self._pred_not()
        while self._match(TokenType.KW_AND):
            left = And(left, self._pred_not())
        return left

    def _pred_not(self) -> Predicate:
        if self._match(TokenType.KW_NOT):
            return Not(self._pred_not())
        if self._check(TokenType.LPAREN):
            # Could be a parenthesized predicate; values never start with (.
            self._advance()
            inner = self._pred_or()
            self._expect(TokenType.RPAREN, "to close the predicate group")
            return inner
        return self._comparison()

    _COMPARISON_OPS = {
        TokenType.EQ: "=",
        TokenType.NE: "!=",
        TokenType.LT: "<",
        TokenType.LE: "<=",
        TokenType.GT: ">",
        TokenType.GE: ">=",
        TokenType.KW_IN: "in",
    }

    def _comparison(self) -> Comparison:
        left = self._value()
        token = self._peek()
        op = self._COMPARISON_OPS.get(token.type)
        if op is None:
            raise self._fail(f"expected a comparison operator, found {token}")
        self._advance()
        right = self._value()
        return Comparison(left, op, right)

    def _value(self) -> ValueExpr:
        token = self._peek()
        if token.type is TokenType.MINUS:  # negative numeric literal
            self._advance()
            number = self._expect(TokenType.NUMBER, "after unary minus")
            return Const(-number.value)
        if token.type is TokenType.NUMBER or token.type is TokenType.STRING:
            self._advance()
            return Const(token.value)
        if token.type is TokenType.IDENT:
            self._advance()
            if self._match(TokenType.LPAREN):
                # Function application: fn(Class) or fn(inner(...)).
                operand = self._function_operand()
                self._expect(TokenType.RPAREN, "to close the function call")
                return Apply(token.text, operand, self.functions)
            if not self.schema.has_class(token.text):
                raise OQLCompileError(
                    f"unknown class {token.text!r} in predicate "
                    f"(line {token.line}, column {token.column})"
                )
            return ClassValues(token.text)
        raise self._fail(f"expected a value, found {token}")

    def _function_operand(self) -> ValueExpr:
        token = self._peek()
        if token.type is TokenType.IDENT:
            ahead = self.tokens[self.index + 1]
            if ahead.type is not TokenType.LPAREN:
                # Bare class name as function input → the instances.
                self._advance()
                if not self.schema.has_class(token.text):
                    raise OQLCompileError(
                        f"unknown class {token.text!r} in function call "
                        f"(line {token.line}, column {token.column})"
                    )
                return ClassInstances(token.text)
        return self._value()
