"""High-level navigation sugar (§2).

The paper distinguishes the algebra from the user-facing language: "An
association-based high-level language, however, can specify the pattern
TA—SS# for this query based on the inheritance concept and the query
interpreter will translate it into the corresponding A-algebra expression
based on the schema definition."

:func:`navigate` is that interpreter step: given two classes it finds a
shortest association path through the schema graph (generalization edges
included, which is exactly how inheritance shorthand expands) and emits
the explicit Associate chain.
"""

from __future__ import annotations

from repro.core.expression import AssocSpec, Associate, Expr, ref
from repro.errors import OQLCompileError
from repro.schema.graph import SchemaGraph

__all__ = ["navigate"]


def navigate(schema: SchemaGraph, source: str, *targets: str) -> Expr:
    """Expand ``source — t₁ — t₂ — …`` into an explicit Associate chain.

    Each hop takes a shortest schema path from the previous anchor class to
    the next target, so ``navigate(schema, "TA", "SS#")`` expands the
    paper's ``TA—SS#`` shorthand into
    ``TA * Teacher * Person * SS#`` (the shortest path through the
    lattice; the paper's Query 1 spells the Grad/Student route, which is
    equally valid and returns the same values).

    Raises :class:`OQLCompileError` when no path exists.
    """
    if not targets:
        return ref(source)
    expr: Expr = ref(source)
    anchor = source
    for target in targets:
        path = schema.path_between(anchor, target)
        if path is None:
            raise OQLCompileError(
                f"no association path from {anchor!r} to {target!r} in the schema"
            )
        here = anchor
        for assoc in path:
            nxt = assoc.other(here)
            expr = Associate(expr, ref(nxt), AssocSpec(here, nxt, assoc.name))
            here = nxt
        anchor = target
    return expr
