"""OQL lexer.

Hand-rolled single-pass tokenizer with line/column tracking for error
messages.  Identifiers may end in ``#`` so that the paper's domain-class
names (``SS#``, ``Course#``, ``Section#``, ``Room#``) lex as single tokens.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import OQLSyntaxError

__all__ = ["TokenType", "Token", "Lexer", "tokenize"]


class TokenType(enum.Enum):
    """Lexical token categories of OQL."""

    IDENT = "identifier"
    NUMBER = "number"
    STRING = "string"
    STAR = "*"
    PIPE = "|"
    BANG = "!"
    AMP = "&"
    PLUS = "+"
    MINUS = "-"
    SLASH = "/"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    KW_SIGMA = "sigma"
    KW_PI = "pi"
    KW_AND = "and"
    KW_OR = "or"
    KW_NOT = "not"
    KW_IN = "in"
    EOF = "end of input"


# NOTE: no "select"/"project" aliases — "Project" is a perfectly ordinary
# class name and must lex as an identifier.
_KEYWORDS = {
    "sigma": TokenType.KW_SIGMA,
    "pi": TokenType.KW_PI,
    "and": TokenType.KW_AND,
    "or": TokenType.KW_OR,
    "not": TokenType.KW_NOT,
    "in": TokenType.KW_IN,
}

_SINGLE = {
    "*": TokenType.STAR,
    "|": TokenType.PIPE,
    "&": TokenType.AMP,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "/": TokenType.SLASH,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
    ":": TokenType.COLON,
    "=": TokenType.EQ,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: TokenType
    text: str
    line: int
    column: int
    value: object = None  # parsed payload for NUMBER / STRING

    def __str__(self) -> str:
        return f"{self.type.value}({self.text!r})"


class Lexer:
    """Tokenizes OQL text; raises :class:`OQLSyntaxError` on bad input."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> OQLSyntaxError:
        return OQLSyntaxError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def tokens(self) -> Iterator[Token]:
        """Yield every token followed by a single EOF token."""
        while self.pos < len(self.text):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
                continue
            if char == "-" and self._peek(1) == "-":  # line comment
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
                continue
            line, column = self.line, self.column
            if char.isalpha() or char == "_":
                yield self._identifier(line, column)
            elif char.isdigit():
                yield self._number(line, column)
            elif char in "'\"":
                yield self._string(line, column)
            elif char == "!" and self._peek(1) == "=":
                self._advance(2)
                yield Token(TokenType.NE, "!=", line, column)
            elif char == "<" and self._peek(1) == "=":
                self._advance(2)
                yield Token(TokenType.LE, "<=", line, column)
            elif char == ">" and self._peek(1) == "=":
                self._advance(2)
                yield Token(TokenType.GE, ">=", line, column)
            elif char == "<":
                self._advance()
                yield Token(TokenType.LT, "<", line, column)
            elif char == ">":
                self._advance()
                yield Token(TokenType.GT, ">", line, column)
            elif char == "!":
                self._advance()
                yield Token(TokenType.BANG, "!", line, column)
            elif char in _SINGLE:
                self._advance()
                yield Token(_SINGLE[char], char, line, column)
            else:
                raise self._error(f"unexpected character {char!r}")
        yield Token(TokenType.EOF, "", self.line, self.column)

    def _identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        if self._peek() == "#":  # SS#, Course#, ...
            self._advance()
        text = self.text[start : self.pos]
        keyword = _KEYWORDS.get(text.lower())
        if keyword is not None and not text.endswith("#"):
            return Token(keyword, text, line, column)
        return Token(TokenType.IDENT, text, line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.text[start : self.pos]
        value: object = float(text) if is_float else int(text)
        return Token(TokenType.NUMBER, text, line, column, value)

    def _string(self, line: int, column: int) -> Token:
        quote = self._peek()
        self._advance()
        start = self.pos
        while self._peek() and self._peek() != quote:
            if self._peek() == "\n":
                raise self._error("unterminated string literal")
            self._advance()
        if not self._peek():
            raise self._error("unterminated string literal")
        value = self.text[start : self.pos]
        self._advance()  # closing quote
        return Token(TokenType.STRING, value, line, column, value)


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list ending with EOF."""
    return list(Lexer(text).tokens())
