"""The view registry: named materialized views over one database.

A view is a named algebra expression plus its materialized result,
maintained incrementally by a :class:`~repro.views.maintainer.DeltaMaintainer`
riding the database's mutation-event stream.  The registry owns:

* the **version guard** — every DML method captures the graph's version
  *before* mutating and hands it to :meth:`on_mutation`; a mismatch with
  the version the registry last synced to means someone wrote to the
  object graph behind the event stream's back (an out-of-band write), so
  deltas cannot be trusted and every view is refreshed from scratch;
* **metrics** — ``repro_view_delta_total{view,op}``,
  ``repro_view_recompute_total{reason}``, ``repro_view_patterns{view}``
  and the ``repro_view_maintain_seconds`` histogram;
* **change listeners** — the query service subscribes one callback per
  mounted database to fan view deltas out to wire subscriptions.

Definitions serialize to pure JSON (:mod:`repro.views.serialize`), ride
in FileEngine checkpoint documents, and are rebuilt on recovery *before*
WAL replay so replayed mutations maintain them incrementally.
"""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.core.expression import Expr
from repro.core.pattern import Pattern
from repro.errors import ViewError
from repro.views.delta import classify
from repro.views.maintainer import DeltaMaintainer
from repro.views.serialize import expr_from_dict, expr_to_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.database import Database, MutationEvent

__all__ = ["MaterializedView", "ViewRegistry"]

#: listener(view, added, removed, origin); origin is "delta" for an
#: incremental step, "refresh" for a full-recompute diff.
ViewListener = Callable[
    ["MaterializedView", frozenset[Pattern], frozenset[Pattern], str], None
]


class MaterializedView:
    """One named view: definition, maintainer, and a change version."""

    def __init__(self, name: str, expr: Expr, maintainer: DeltaMaintainer) -> None:
        self.name = name
        self.expr = expr
        self.maintainer = maintainer
        #: Bumped on every materialization change (delta or refresh diff).
        self.version = 1

    @property
    def patterns(self) -> frozenset[Pattern]:
        return self.maintainer.patterns

    def info(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "expr": str(self.expr),
            "patterns": len(self),
            "version": self.version,
        }

    def __len__(self) -> int:
        return len(self.maintainer)

    def __str__(self) -> str:
        return f"MaterializedView({self.name!r}, {self.expr}, {len(self)} pattern(s))"


class ViewRegistry:
    """All materialized views of one :class:`Database`."""

    def __init__(self, db: "Database") -> None:
        self._db = db
        self._views: dict[str, MaterializedView] = {}
        self._listeners: list[ViewListener] = []
        self._synced_version = db.graph.version
        metrics = db.metrics
        self._m_delta = metrics.counter(
            "repro_view_delta_total",
            "Patterns added/removed from materialized views by delta maintenance",
        )
        self._m_recompute = metrics.counter(
            "repro_view_recompute_total",
            "Scoped recomputes by reason (unsound delta rule, staleness, resync)",
        )
        self._m_patterns = metrics.gauge(
            "repro_view_patterns", "Current materialized pattern count per view"
        )
        self._m_maintain = metrics.histogram(
            "repro_view_maintain_seconds",
            "Wall time maintaining all views for one mutation event",
        )

    # ------------------------------------------------------------------
    # definition lifecycle
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def names(self) -> list[str]:
        return sorted(self._views)

    def get(self, name: str) -> MaterializedView:
        view = self._views.get(name)
        if view is None:
            raise ViewError(f"no view named {name!r}")
        return view

    def info(self) -> list[dict[str, Any]]:
        return [self._views[name].info() for name in sorted(self._views)]

    def __call__(self) -> list[dict[str, Any]]:
        """``db.views()`` introspection: one info row per view."""
        return self.info()

    def __iter__(self):
        return iter(self.names())

    def create(self, name: str, expr: Expr) -> MaterializedView:
        """Register and materialize one view (rejects unserializable defs)."""
        if name in self._views:
            raise ViewError(f"view {name!r} already exists")
        data = expr_to_dict(expr)
        try:
            json.dumps(data)
        except (TypeError, ValueError) as exc:
            raise ViewError(
                f"view {name!r} definition does not serialize to JSON: {exc}"
            ) from exc
        if expr_from_dict(data) != expr:
            raise ViewError(
                f"view {name!r} definition does not round-trip through its "
                "serialized form"
            )
        view = MaterializedView(name, expr, DeltaMaintainer(expr, self._db.graph))
        self._views[name] = view
        self._synced_version = self._db.graph.version
        self._m_patterns.set(len(view), view=name)
        self._db.events.emit(
            "view.create", view=name, expr=str(expr), patterns=len(view)
        )
        return view

    def drop(self, name: str) -> None:
        view = self._views.pop(name, None)
        if view is None:
            raise ViewError(f"no view named {name!r}")
        self._m_patterns.set(0.0, view=name)
        self._db.events.emit("view.drop", view=name)

    def definitions(self) -> list[dict[str, Any]]:
        """JSON-ready ``[{"name": ..., "expr": ...}]`` for checkpoints."""
        return [
            {"name": name, "expr": expr_to_dict(self._views[name].expr)}
            for name in sorted(self._views)
        ]

    def load_definitions(self, definitions: Iterable[Mapping[str, Any]]) -> None:
        """Rebuild views from checkpointed definitions (recovery path)."""
        for item in definitions:
            name = item["name"]
            expr = expr_from_dict(item["expr"])
            view = MaterializedView(name, expr, DeltaMaintainer(expr, self._db.graph))
            self._views[name] = view
            self._m_patterns.set(len(view), view=name)
        self._synced_version = self._db.graph.version

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def on_mutation(self, event: "MutationEvent", pre_version: int | None) -> None:
        """Maintain every view through one committed mutation event.

        ``pre_version`` is the graph version the caller observed *before*
        applying the mutation; ``None`` means the caller cannot vouch for
        it.  Any mismatch with the version this registry last synced to
        reveals out-of-band writes — deltas would be computed against a
        state the materializations never saw, so everything refreshes.
        """
        if not self._views:
            self._synced_version = self._db.graph.version
            return
        if pre_version is None or pre_version != self._synced_version:
            self.refresh_all("out_of_band")
            return
        started = time.perf_counter()
        ctx = classify(event)
        for name in sorted(self._views):
            view = self._views[name]
            delta, recomputes = view.maintainer.apply(ctx)
            for _operator, reason in recomputes:
                self._m_recompute.inc(reason=reason)
            if delta:
                self._note_change(view, delta.added, delta.removed, "delta")
        self._synced_version = self._db.graph.version
        self._m_maintain.observe(time.perf_counter() - started)

    def refresh(self, name: str) -> frozenset[Pattern]:
        """Fully recompute one view; returns its new materialization."""
        view = self.get(name)
        added, removed = view.maintainer.refresh()
        self._m_recompute.inc(reason="refresh")
        self._synced_version = self._db.graph.version
        if added or removed:
            self._note_change(view, added, removed, "refresh")
        return view.patterns

    def refresh_all(self, reason: str) -> None:
        """Fully recompute every view (rollback, out-of-band writes)."""
        for name in sorted(self._views):
            view = self._views[name]
            added, removed = view.maintainer.refresh()
            self._m_recompute.inc(reason=reason)
            if added or removed:
                self._note_change(view, added, removed, "refresh")
        self._synced_version = self._db.graph.version

    def rebind(self) -> None:
        """Re-attach every maintainer to the database's (new) graph.

        Called after :meth:`Database.restore` swapped the object graph
        out from under the executor — the old materializations describe
        a graph that no longer exists.
        """
        for name in sorted(self._views):
            view = self._views[name]
            old = view.patterns
            view.maintainer.rebind(self._db.graph)
            self._m_recompute.inc(reason="rebind")
            new = view.patterns
            if new != old:
                self._note_change(view, new - old, old - new, "refresh")
        self._synced_version = self._db.graph.version

    def _note_change(
        self,
        view: MaterializedView,
        added: frozenset[Pattern],
        removed: frozenset[Pattern],
        origin: str,
    ) -> None:
        view.version += 1
        if added:
            self._m_delta.inc(len(added), view=view.name, op="add")
        if removed:
            self._m_delta.inc(len(removed), view=view.name, op="remove")
        self._m_patterns.set(len(view), view=view.name)
        self._db.events.emit(
            "view.delta",
            view=view.name,
            added=len(added),
            removed=len(removed),
            version=view.version,
            origin=origin,
        )
        for listener in list(self._listeners):
            listener(view, added, removed, origin)

    # ------------------------------------------------------------------
    # change listeners
    # ------------------------------------------------------------------

    def subscribe(self, listener: ViewListener) -> None:
        self._listeners.append(listener)

    def unsubscribe(self, listener: ViewListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def __str__(self) -> str:
        return f"ViewRegistry({len(self._views)} view(s))"
