"""Mutation-event classification for incremental view maintenance.

The maintainer consumes the same typed :class:`MutationEvent` stream the
WAL and the plan cache ride.  Each event is classified once into an
:class:`EventContext` that every view's node tree then shares:

* ``anchors`` — the *removal anchors* of the event.  A delete anchors on
  the removed instance (every pattern that mentioned it — as a vertex or
  as an endpoint of any of its incident edges — contains it); an unlink
  anchors on the removed positive edge; a link anchors on the
  *complement* edge it destroys (complement-polarity operators lose
  exactly the patterns carrying that edge).  Inserts and value updates
  remove nothing and anchor on nothing.

  Anchors drive the central soundness shortcut: at a pattern-combining
  node (Associate, A-Intersect), an output pattern contains the union of
  its input patterns' contents plus any join edges, so when every child
  removal contains an anchor, filtering the node's materialization by
  ``anchor in pattern`` is an *exact* removal — complete because every
  derivation through a removed input carries the anchor, and minimal
  because post-event children hold no anchor-bearing patterns from which
  a dropped output could be re-derived.

* ``touched_classes`` / ``association`` — relevance tests for operators
  whose value is a function of the graph beyond their operands
  (Complement/NonAssociate read complement edges; they must rescan when
  the event touches their end classes or their association).

* ``updated`` — the instance whose value changed, for σ nodes to
  re-filter only the patterns containing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.edges import Edge, complement, inter
from repro.core.identity import IID

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.database import MutationEvent

__all__ = ["EventContext", "classify"]


@dataclass(frozen=True)
class EventContext:
    """One mutation event, classified for delta propagation."""

    kind: str
    instances: tuple[IID, ...]
    #: Removal anchors (IIDs and/or edges); empty for insert/update.
    anchors: tuple[object, ...]
    #: The positive edge a link event added, ``None`` otherwise.
    added_edge: Edge | None
    #: The association name a link/unlink event names, ``None`` otherwise.
    association: str | None
    #: The instance whose value an update event changed, ``None`` otherwise.
    updated: IID | None
    touched_classes: frozenset[str] = field(default=frozenset())

    def anchored(self, pattern) -> bool:
        """Whether the pattern contains any of the event's anchors."""
        return any(anchor in pattern for anchor in self.anchors)


def classify(event: "MutationEvent") -> EventContext:
    """Classify one mutation event for the maintainer node trees."""
    kind = event.kind
    touched = frozenset(i.cls for i in event.instances)
    anchors: tuple[object, ...] = ()
    added_edge: Edge | None = None
    updated: IID | None = None
    if kind == "delete":
        anchors = tuple(event.instances)
    elif kind == "unlink":
        a, b = event.instances
        anchors = (inter(a, b),)
    elif kind == "link":
        a, b = event.instances
        # Linking destroys the complement edge between the endpoints:
        # complement-polarity patterns carrying it are the removals.
        anchors = (complement(a, b),)
        added_edge = inter(a, b)
    elif kind == "update":
        (updated,) = event.instances
    return EventContext(
        kind=kind,
        instances=tuple(event.instances),
        anchors=anchors,
        added_edge=added_edge,
        association=event.association,
        updated=updated,
        touched_classes=touched,
    )
