"""Bottom-up incremental maintenance of one materialized expression.

The maintainer mirrors a view's expression as a tree of *maintenance
nodes*, each holding its own materialization (a set of patterns).
A classified mutation event (:class:`~repro.views.delta.EventContext`)
propagates bottom-up: every node combines its children's exact deltas
into its own exact delta using an algebra-derived rule, or — where no
sound rule exists for the incoming delta shape — falls back to a
*scoped recompute*: it re-evaluates only its own operator over its
children's already-maintained materializations and diffs against its
previous output.  Because the diff of a recompute is itself exact, a
recomputing node does **not** force its ancestors to recompute; the
delta keeps flowing.

Delta rules (σ = Select, • = A-Intersect, ``*`` = Associate):

==============  =======================================================
operator        rule
==============  =======================================================
class extent    insert/delete add/remove the matching Inner-patterns
σ (Select)      filter child additions; child removals intersect the
                output; a value update re-filters only the patterns
                containing the updated instance (opaque predicates
                recompute on every event)
Union           additions not already present; removals no longer
                derivable from either child
Associate       join child additions against the standing other side;
                a link joins standing patterns across the new edge;
                anchored removals filter the output exactly
A-Intersect     join child additions against the standing other side;
                anchored removals filter the output exactly (dynamic
                shared-class sets recompute)
Difference      additions filter through the standing subtrahend; new
                subtrahend patterns block standing output; subtrahend
                removals recompute (un-blocking is not delta-computable)
Project         project child additions; child removals recompute (the
                removal anchor may be projected away)
Complement /    rescan whenever the event could change a complement
NonAssociate    edge between the operands (their own association, an
                extent event on an end class, or any child delta)
Divide          recompute on any child delta (quotients are not
                monotone in either operand)
==============  =======================================================

The *anchored removal* argument: combining nodes emit patterns that are
unions of their input patterns plus join edges, so when every child
removal contains one of the event's anchors (the deleted instance, the
unlinked edge, or the complement edge a link destroyed), filtering the
node's output by ``anchor in pattern`` removes exactly the derivations
that died — nothing else can have used a removed input, and nothing
removed can be re-derived from the post-event children.  When a child
removal does *not* carry an anchor (e.g. it came from a recompute of a
non-monotone descendant), the node recomputes instead of guessing.

Cost model
----------
Maintenance must be proportional to the *delta*, not to the
materialization — a view over N patterns that pays O(N) per mutation is
just a slow recompute in disguise.  Three structures keep the per-event
work delta-sized:

* every node carries an **anchor index** mapping each vertex and each
  edge of its output to the patterns containing it, maintained
  incrementally alongside the output itself.  Anchored removal becomes
  one index lookup per anchor instead of a scan of the materialization,
  and the standing-side probes of the link rule
  (:meth:`_AssociateNode._edge_joins`) and of the σ update rule read
  the children's indexes instead of scanning their outputs;
* the working set is a **mutable** ``set`` updated in place; the
  frozenset snapshot external callers see (:attr:`_Node.out`) is
  refrozen lazily, only when someone actually reads it after a change;
* the :class:`AssociationSet` wrapper (and its per-class index) is
  memoized against the frozen snapshot, so standing sides that did not
  change keep their operator-level indexes across events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.assoc_set import AssociationSet
from repro.core.edges import Edge, inter
from repro.core.expression import (
    Associate,
    ClassExtent,
    Complement,
    Difference,
    Divide,
    Expr,
    Intersect,
    NonAssociate,
    Project,
    Select,
    Union,
)
from repro.core.operators import (
    a_complement,
    a_difference,
    a_divide,
    a_intersect,
    a_project,
    associate,
    non_associate,
)
from repro.core.pattern import Pattern
from repro.errors import ViewError
from repro.optimizer.analysis import predicate_classes
from repro.views.delta import EventContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.objects.graph import ObjectGraph

__all__ = ["DeltaMaintainer", "NodeDelta"]

_EMPTY: frozenset[Pattern] = frozenset()


@dataclass(frozen=True)
class NodeDelta:
    """The exact change one maintenance node underwent for one event."""

    added: frozenset[Pattern] = _EMPTY
    removed: frozenset[Pattern] = _EMPTY
    #: Set when the node fell back to a scoped recompute.
    reason: str | None = None

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)


_NO_CHANGE = NodeDelta()


class _Node:
    """One maintenance node: an operator plus its materialization."""

    def __init__(self, expr: Expr, children: tuple["_Node", ...]) -> None:
        self.expr = expr
        self.children = children
        self._out: set[Pattern] = set()
        self._frozen: frozenset[Pattern] | None = _EMPTY
        #: vertex/edge -> patterns of ``_out`` containing it.
        self._index: dict[object, set[Pattern]] = {}
        self._set_cache: AssociationSet | None = None

    # -- materialization ------------------------------------------------

    @property
    def out(self) -> frozenset[Pattern]:
        """The materialization, frozen lazily after in-place updates."""
        frozen = self._frozen
        if frozen is None:
            frozen = self._frozen = frozenset(self._out)
        return frozen

    def __len__(self) -> int:
        return len(self._out)

    def as_set(self) -> AssociationSet:
        """The materialization as an :class:`AssociationSet` (memoized)."""
        frozen = self.out
        cache = self._set_cache
        if cache is None or cache.patterns is not frozen:
            cache = self._set_cache = AssociationSet.from_frozen(frozen)
        return cache

    def rebuild(self, graph: "ObjectGraph") -> None:
        """Recursively re-evaluate the whole subtree from the graph."""
        for child in self.children:
            child.rebuild(graph)
        self.bind(graph)
        new = self._evaluate(graph)
        self._out = set(new)
        self._frozen = new
        self._set_cache = None
        self._index = {}
        for pattern in new:
            self._index_add(pattern)

    def bind(self, graph: "ObjectGraph") -> None:
        """Resolve graph-dependent bindings (association ends)."""

    def _evaluate(self, graph: "ObjectGraph") -> frozenset[Pattern]:
        raise NotImplementedError

    # -- the anchor index -----------------------------------------------

    def _index_add(self, pattern: Pattern) -> None:
        index = self._index
        for vertex in pattern.vertices:
            bucket = index.get(vertex)
            if bucket is None:
                bucket = index[vertex] = set()
            bucket.add(pattern)
        for edge in pattern.edges:
            bucket = index.get(edge)
            if bucket is None:
                bucket = index[edge] = set()
            bucket.add(pattern)

    def _index_remove(self, pattern: Pattern) -> None:
        index = self._index
        for vertex in pattern.vertices:
            bucket = index.get(vertex)
            if bucket is not None:
                bucket.discard(pattern)
                if not bucket:
                    del index[vertex]
        for edge in pattern.edges:
            bucket = index.get(edge)
            if bucket is not None:
                bucket.discard(pattern)
                if not bucket:
                    del index[edge]

    def patterns_containing(self, token: object) -> Iterable[Pattern]:
        """Output patterns containing ``token`` (a vertex IID or an edge).

        Returns the live index bucket — callers must not mutate it and
        must not hold it across an update of this node.
        """
        return self._index.get(token, _EMPTY)

    def _anchor_hits(self, ctx: EventContext) -> frozenset[Pattern]:
        """The output patterns containing any of the event's anchors."""
        hits: set[Pattern] = set()
        for anchor in ctx.anchors:
            bucket = self._index.get(anchor)
            if bucket:
                hits |= bucket
        return frozenset(hits)

    # -- delta propagation ----------------------------------------------

    def apply(
        self, ctx: EventContext, graph: "ObjectGraph", recomputes: list
    ) -> NodeDelta:
        deltas = tuple(c.apply(ctx, graph, recomputes) for c in self.children)
        return self._delta(ctx, graph, deltas, recomputes)

    def _delta(
        self, ctx, graph, deltas: tuple[NodeDelta, ...], recomputes: list
    ) -> NodeDelta:
        raise NotImplementedError

    def _apply(self, added: Iterable[Pattern], removed: Iterable[Pattern]) -> None:
        """In-place update of the working set and its anchor index."""
        out = self._out
        for pattern in removed:
            out.discard(pattern)
            self._index_remove(pattern)
        for pattern in added:
            out.add(pattern)
            self._index_add(pattern)
        self._frozen = None

    def _recompute(self, graph, reason: str, recomputes: list) -> NodeDelta:
        """Scoped recompute: re-evaluate this operator only, diff exactly."""
        new = self._evaluate(graph)
        added = frozenset(new - self._out)
        removed = frozenset(self._out - new)
        self._apply(added, removed)
        self._frozen = new
        recomputes.append((type(self.expr).__name__, reason))
        return NodeDelta(added, removed, reason)

    def _commit(self, added: frozenset, removed: frozenset) -> NodeDelta:
        if not added and not removed:
            return _NO_CHANGE
        self._apply(added, removed)
        return NodeDelta(added, removed)

    @staticmethod
    def _unanchored(ctx: EventContext, deltas) -> bool:
        """Whether any child removal fails to carry a removal anchor."""
        for delta in deltas:
            for pattern in delta.removed:
                if not ctx.anchored(pattern):
                    return True
        return False


class _ExtentNode(_Node):
    def __init__(self, expr: ClassExtent) -> None:
        super().__init__(expr, ())
        self.cls = expr.name

    def _evaluate(self, graph):
        return frozenset(Pattern.inner(i) for i in graph.extent(self.cls))

    def _delta(self, ctx, graph, deltas, recomputes):
        if ctx.kind == "insert":
            added = frozenset(
                Pattern.inner(i)
                for i in ctx.instances
                if i.cls == self.cls and Pattern.inner(i) not in self._out
            )
            return self._commit(added, _EMPTY)
        if ctx.kind == "delete":
            removed = frozenset(
                p
                for i in ctx.instances
                if i.cls == self.cls and (p := Pattern.inner(i)) in self._out
            )
            return self._commit(_EMPTY, removed)
        return _NO_CHANGE


class _SelectNode(_Node):
    def __init__(self, expr: Select, children) -> None:
        super().__init__(expr, children)
        self.predicate = expr.predicate
        self.pred_classes = predicate_classes(expr.predicate)
        self.opaque = "*" in self.pred_classes

    def _evaluate(self, graph):
        pred = self.predicate
        return frozenset(
            p for p in self.children[0]._out if pred.evaluate(p, graph)
        )

    def _delta(self, ctx, graph, deltas, recomputes):
        if self.opaque:
            return self._recompute(graph, "opaque-predicate", recomputes)
        (child,) = deltas
        pred = self.predicate
        out = self._out
        added = {p for p in child.added if pred.evaluate(p, graph)}
        removed = set(child.removed & out)
        if ctx.updated is not None and ctx.updated.cls in self.pred_classes:
            # A value update flips membership only for patterns that
            # contain the updated instance; re-filter exactly those,
            # straight off the child's anchor index.
            for pattern in tuple(self.children[0].patterns_containing(ctx.updated)):
                if pred.evaluate(pattern, graph):
                    if pattern not in out:
                        added.add(pattern)
                elif pattern in out:
                    removed.add(pattern)
        return self._commit(frozenset(added) - out, frozenset(removed))


class _UnionNode(_Node):
    def _evaluate(self, graph):
        return frozenset(self.children[0]._out | self.children[1]._out)

    def _delta(self, ctx, graph, deltas, recomputes):
        left, right = self.children
        dl, dr = deltas
        added = (dl.added | dr.added) - self._out
        removed = frozenset(
            p
            for p in (dl.removed | dr.removed)
            if p in self._out and p not in left._out and p not in right._out
        )
        return self._commit(added, removed)


class _BinaryGraphNode(_Node):
    """Shared association binding for Associate/Complement/NonAssociate."""

    def bind(self, graph):
        self.assoc, self.a_cls, self.b_cls = self.expr.resolve(graph)


class _AssociateNode(_BinaryGraphNode):
    def _evaluate(self, graph):
        return associate(
            self.children[0].as_set(),
            self.children[1].as_set(),
            graph,
            self.assoc,
            self.a_cls,
            self.b_cls,
        ).patterns

    def _join(self, alpha, beta, graph):
        return associate(
            alpha, beta, graph, self.assoc, self.a_cls, self.b_cls
        ).patterns

    def _edge_joins(self, edge: Edge, graph) -> set[Pattern]:
        """Outputs created by joining standing patterns across a new edge.

        The patterns holding each endpoint come off the children's
        anchor indexes — the cost is the number of joined outputs, not
        the size of the standing sides.
        """
        out: set[Pattern] = set()
        left, right = self.children
        for x, y in ((edge.u, edge.v), (edge.v, edge.u)):
            if x.cls != self.a_cls or y.cls != self.b_cls:
                continue
            join = inter(x, y)
            rights = right.patterns_containing(y)
            if not rights:
                continue
            for pattern in left.patterns_containing(x):
                for other in rights:
                    out.add(pattern.union(other, join))
        return out

    def _delta(self, ctx, graph, deltas, recomputes):
        dl, dr = deltas
        if (dl.removed or dr.removed) and (
            not ctx.anchors or self._unanchored(ctx, deltas)
        ):
            return self._recompute(graph, "unanchored-removal", recomputes)
        removed = self._anchor_hits(ctx) if ctx.anchors else _EMPTY
        added: set[Pattern] = set()
        if dl.added:
            added |= self._join(
                AssociationSet.from_frozen(dl.added), self.children[1].as_set(), graph
            )
        if dr.added:
            added |= self._join(
                self.children[0].as_set(), AssociationSet.from_frozen(dr.added), graph
            )
        if (
            ctx.added_edge is not None
            and ctx.association == self.assoc.name
        ):
            added |= self._edge_joins(ctx.added_edge, graph)
        if removed:
            self._apply((), removed)
        added_f = frozenset(added) - self._out if added else _EMPTY
        if added_f:
            self._apply(added_f, ())
        if not added_f and not removed:
            return _NO_CHANGE
        return NodeDelta(added_f, removed)


class _IntersectNode(_Node):
    def __init__(self, expr: Intersect, children) -> None:
        super().__init__(expr, children)
        self.classes = expr.classes

    def _evaluate(self, graph):
        return a_intersect(
            self.children[0].as_set(), self.children[1].as_set(), self.classes
        ).patterns

    def _delta(self, ctx, graph, deltas, recomputes):
        dl, dr = deltas
        if not dl and not dr:
            return _NO_CHANGE
        if self.classes is None:
            # The shared-class set is a function of the operand *sets*;
            # any operand change can change what "common classes" means.
            return self._recompute(graph, "dynamic-classes", recomputes)
        if (dl.removed or dr.removed) and (
            not ctx.anchors or self._unanchored(ctx, deltas)
        ):
            return self._recompute(graph, "unanchored-removal", recomputes)
        removed = (
            self._anchor_hits(ctx) if (dl.removed or dr.removed) else _EMPTY
        )
        added: set[Pattern] = set()
        if dl.added:
            added |= a_intersect(
                AssociationSet.from_frozen(dl.added),
                self.children[1].as_set(),
                self.classes,
            ).patterns
        if dr.added:
            added |= a_intersect(
                self.children[0].as_set(),
                AssociationSet.from_frozen(dr.added),
                self.classes,
            ).patterns
        if removed:
            self._apply((), removed)
        added_f = frozenset(added) - self._out if added else _EMPTY
        if added_f:
            self._apply(added_f, ())
        if not added_f and not removed:
            return _NO_CHANGE
        return NodeDelta(added_f, removed)


class _DifferenceNode(_Node):
    def _evaluate(self, graph):
        return a_difference(
            self.children[0].as_set(), self.children[1].as_set()
        ).patterns

    def _delta(self, ctx, graph, deltas, recomputes):
        dl, dr = deltas
        if dr.removed:
            # A shrinking subtrahend un-blocks minuend patterns we do not
            # hold; only a rescan of the minuend can find them.
            return self._recompute(graph, "subtrahend-removal", recomputes)
        removed = set(dl.removed & self._out)
        if dr.added:
            standing = frozenset(self._out - removed)
            kept = a_difference(
                AssociationSet.from_frozen(standing),
                AssociationSet.from_frozen(dr.added),
            ).patterns
            removed |= standing - kept
        added = _EMPTY
        if dl.added:
            added = (
                a_difference(
                    AssociationSet.from_frozen(dl.added), self.children[1].as_set()
                ).patterns
                - self._out
            )
        return self._commit(frozenset(added), frozenset(removed))


class _ProjectNode(_Node):
    def __init__(self, expr: Project, children) -> None:
        super().__init__(expr, children)
        self.templates = expr.templates
        self.links = expr.links

    def _evaluate(self, graph):
        return a_project(
            self.children[0].as_set(), self.templates, self.links
        ).patterns

    def _delta(self, ctx, graph, deltas, recomputes):
        (child,) = deltas
        if child.removed:
            # Projection can strip the removal anchor out of its outputs,
            # so removed inputs give no sound output-removal rule.
            return self._recompute(graph, "projection-removal", recomputes)
        if not child.added:
            return _NO_CHANGE
        added = (
            a_project(
                AssociationSet.from_frozen(child.added), self.templates, self.links
            ).patterns
            - self._out
        )
        return self._commit(frozenset(added), _EMPTY)


class _ComplementNode(_BinaryGraphNode):
    """Complement-polarity operators: rescan whenever relevant.

    Their value depends on the *absence* of edges between the operand
    instances, which no operand delta describes; the sound incremental
    move is a scoped recompute gated on a precise relevance test.
    """

    reason = "complement-rescan"

    def _evaluate(self, graph):
        return a_complement(
            self.children[0].as_set(),
            self.children[1].as_set(),
            graph,
            self.assoc,
            self.a_cls,
            self.b_cls,
        ).patterns

    def _delta(self, ctx, graph, deltas, recomputes):
        if any(deltas) or self._relevant(ctx):
            return self._recompute(graph, self.reason, recomputes)
        return _NO_CHANGE

    def _relevant(self, ctx: EventContext) -> bool:
        if ctx.association == self.assoc.name:
            return True
        return ctx.kind in ("insert", "delete") and bool(
            ctx.touched_classes & {self.a_cls, self.b_cls}
        )


class _NonAssociateNode(_ComplementNode):
    reason = "nonassociate-rescan"

    def _evaluate(self, graph):
        return non_associate(
            self.children[0].as_set(),
            self.children[1].as_set(),
            graph,
            self.assoc,
            self.a_cls,
            self.b_cls,
        ).patterns


class _DivideNode(_Node):
    def __init__(self, expr: Divide, children) -> None:
        super().__init__(expr, children)
        self.classes = expr.classes

    def _evaluate(self, graph):
        return a_divide(
            self.children[0].as_set(), self.children[1].as_set(), self.classes
        ).patterns

    def _delta(self, ctx, graph, deltas, recomputes):
        if any(deltas):
            # Quotients are anti-monotone in the divisor and group-wise in
            # the dividend; no per-pattern delta rule is sound.
            return self._recompute(graph, "divide-rescan", recomputes)
        return _NO_CHANGE


_NODE_TYPES: dict[type, type[_Node]] = {
    Select: _SelectNode,
    Union: _UnionNode,
    Associate: _AssociateNode,
    Intersect: _IntersectNode,
    Difference: _DifferenceNode,
    Project: _ProjectNode,
    Complement: _ComplementNode,
    NonAssociate: _NonAssociateNode,
    Divide: _DivideNode,
}


def _build(expr: Expr) -> _Node:
    if isinstance(expr, ClassExtent):
        return _ExtentNode(expr)
    node_cls = _NODE_TYPES.get(type(expr))
    if node_cls is None:
        raise ViewError(
            f"views cannot be maintained over {type(expr).__name__} nodes"
        )
    children = tuple(_build(child) for child in expr.children())
    return node_cls(expr, children)


class DeltaMaintainer:
    """The maintenance-node tree of one materialized view."""

    def __init__(self, expr: Expr, graph: "ObjectGraph") -> None:
        self.expr = expr
        self.root = _build(expr)
        self.rebind(graph)

    @property
    def patterns(self) -> frozenset[Pattern]:
        return self.root.out

    def __len__(self) -> int:
        """Pattern count without freezing the working set."""
        return len(self.root)

    def rebind(self, graph: "ObjectGraph") -> None:
        """(Re)attach to a graph and fully rebuild every materialization."""
        self.graph = graph
        self.root.rebuild(graph)

    def refresh(self) -> tuple[frozenset[Pattern], frozenset[Pattern]]:
        """Full recompute; returns the (added, removed) diff it caused."""
        old = self.root.out
        self.root.rebuild(self.graph)
        new = self.root.out
        return new - old, old - new

    def apply(self, ctx: EventContext) -> tuple[NodeDelta, list[tuple[str, str]]]:
        """Maintain through one classified event.

        Returns the root's exact delta and the ``(operator, reason)``
        pairs of every node that fell back to a scoped recompute.
        """
        recomputes: list[tuple[str, str]] = []
        delta = self.root.apply(ctx, self.graph, recomputes)
        return delta, recomputes
