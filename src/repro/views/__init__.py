"""Incremental view maintenance: materialized association-set views.

The paper's algebraic identities give exact delta rules for most
operators — when a mutation changes an operand by a known delta, the
change to the result is computable from the delta and the standing
other side, without recomputing the expression.  This package builds
that into a subsystem:

* :mod:`repro.views.delta` — classifies mutation events into removal
  anchors, added edges, and touched classes;
* :mod:`repro.views.maintainer` — the per-view maintenance-node tree
  with one delta rule per operator and scoped-recompute fallbacks where
  no sound rule exists;
* :mod:`repro.views.registry` — named views per database, the
  out-of-band version guard, metrics, and change listeners (the server
  pushes these to wire subscriptions);
* :mod:`repro.views.serialize` — pure-JSON round-tripping of view
  definitions for checkpoint persistence and recovery.
"""

from repro.views.delta import EventContext, classify
from repro.views.maintainer import DeltaMaintainer, NodeDelta
from repro.views.registry import MaterializedView, ViewRegistry
from repro.views.serialize import expr_from_dict, expr_to_dict

__all__ = [
    "EventContext",
    "classify",
    "DeltaMaintainer",
    "NodeDelta",
    "MaterializedView",
    "ViewRegistry",
    "expr_from_dict",
    "expr_to_dict",
]
