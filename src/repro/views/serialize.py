"""JSON (de)serialization of view-defining expressions.

A materialized view outlives the process: its definition rides in
FileEngine checkpoint documents and is rebuilt on recovery, so the
defining :class:`~repro.core.expression.Expr` must round-trip through
pure JSON.  Every algebra operator and every *analyzable* predicate form
serializes; the two deliberately unserializable leaves are rejected with
:class:`~repro.errors.ViewError` at ``create_view`` time:

* :class:`~repro.core.expression.Literal` — a literal wraps an
  in-memory association-set whose patterns have no schema-level
  identity; a view over one could never be re-derived after recovery;
* :class:`~repro.core.predicates.Callback` — an opaque Python function
  has no name to look up on the other side.

``Apply`` predicates *are* serializable: they reference a registered
function by name, resolved against a :class:`FunctionRegistry` (the
database's own, or :data:`DEFAULT_REGISTRY`) at load time.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.expression import (
    AssocSpec,
    Associate,
    ClassExtent,
    Complement,
    Difference,
    Divide,
    Expr,
    Intersect,
    NonAssociate,
    Project,
    Select,
    Union,
)
from repro.core.operators import ChainTemplate, PathLink
from repro.core.predicates import (
    And,
    Apply,
    ClassInstances,
    ClassValues,
    Comparison,
    Const,
    DEFAULT_REGISTRY,
    FunctionRegistry,
    Not,
    Or,
    Predicate,
    TruePredicate,
    ValueExpr,
    ValueUnion,
)
from repro.errors import ViewError

__all__ = [
    "expr_to_dict",
    "expr_from_dict",
    "predicate_to_dict",
    "predicate_from_dict",
]

_BINARY_GRAPH_OPS = {
    "associate": Associate,
    "complement": Complement,
    "non_associate": NonAssociate,
}


def _spec_to_dict(spec: AssocSpec | None) -> dict[str, Any] | None:
    if spec is None:
        return None
    return {"alpha": spec.alpha_class, "beta": spec.beta_class, "name": spec.name}


def _spec_from_dict(data: Mapping[str, Any] | None) -> AssocSpec | None:
    if data is None:
        return None
    return AssocSpec(data["alpha"], data["beta"], data.get("name"))


def _classes_to_list(classes: frozenset[str] | None) -> list[str] | None:
    return None if classes is None else sorted(classes)


def _classes_from_list(data: list[str] | None) -> frozenset[str] | None:
    return None if data is None else frozenset(data)


# ----------------------------------------------------------------------
# value expressions and predicates
# ----------------------------------------------------------------------


def _value_to_dict(value: ValueExpr) -> dict[str, Any]:
    if isinstance(value, Const):
        return {"t": "const", "value": value.value}
    if isinstance(value, ClassValues):
        return {"t": "class_values", "cls": value.cls}
    if isinstance(value, ClassInstances):
        return {"t": "class_instances", "cls": value.cls}
    if isinstance(value, Apply):
        return {
            "t": "apply",
            "fn": value.fn_name,
            "operand": _value_to_dict(value.operand),
        }
    if isinstance(value, ValueUnion):
        return {
            "t": "value_union",
            "operands": [_value_to_dict(op) for op in value.operands],
        }
    raise ViewError(f"value expression {value!r} is not serializable")


def _value_from_dict(
    data: Mapping[str, Any], registry: FunctionRegistry
) -> ValueExpr:
    kind = data["t"]
    if kind == "const":
        return Const(data["value"])
    if kind == "class_values":
        return ClassValues(data["cls"])
    if kind == "class_instances":
        return ClassInstances(data["cls"])
    if kind == "apply":
        return Apply(data["fn"], _value_from_dict(data["operand"], registry), registry)
    if kind == "value_union":
        return ValueUnion(
            *(_value_from_dict(op, registry) for op in data["operands"])
        )
    raise ViewError(f"unknown serialized value expression kind {kind!r}")


def predicate_to_dict(predicate: Predicate) -> dict[str, Any]:
    """A pure-JSON description of an analyzable predicate.

    Raises :class:`ViewError` for :class:`Callback` (and any unknown
    predicate type): opaque functions cannot survive a checkpoint.
    """
    if isinstance(predicate, TruePredicate):
        return {"t": "true"}
    if isinstance(predicate, Comparison):
        return {
            "t": "cmp",
            "left": _value_to_dict(predicate.left),
            "op": predicate.op,
            "right": _value_to_dict(predicate.right),
            "quantifier": predicate.quantifier,
        }
    if isinstance(predicate, And):
        return {"t": "and", "operands": [predicate_to_dict(p) for p in predicate.operands]}
    if isinstance(predicate, Or):
        return {"t": "or", "operands": [predicate_to_dict(p) for p in predicate.operands]}
    if isinstance(predicate, Not):
        return {"t": "not", "operand": predicate_to_dict(predicate.operand)}
    raise ViewError(
        f"predicate {predicate} is not serializable; views cannot be defined "
        "over opaque callback predicates"
    )


def predicate_from_dict(
    data: Mapping[str, Any], registry: FunctionRegistry | None = None
) -> Predicate:
    """Rebuild a predicate from :func:`predicate_to_dict` output."""
    registry = DEFAULT_REGISTRY if registry is None else registry
    kind = data["t"]
    if kind == "true":
        return TruePredicate()
    if kind == "cmp":
        return Comparison(
            _value_from_dict(data["left"], registry),
            data["op"],
            _value_from_dict(data["right"], registry),
            quantifier=data.get("quantifier", "exists"),
        )
    if kind == "and":
        return And(*(predicate_from_dict(p, registry) for p in data["operands"]))
    if kind == "or":
        return Or(*(predicate_from_dict(p, registry) for p in data["operands"]))
    if kind == "not":
        return Not(predicate_from_dict(data["operand"], registry))
    raise ViewError(f"unknown serialized predicate kind {kind!r}")


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------


def expr_to_dict(expr: Expr) -> dict[str, Any]:
    """A pure-JSON description of a view-definable expression.

    Raises :class:`ViewError` for :class:`Literal` operands and opaque
    predicates — a view definition must be re-derivable from the schema
    and graph alone after recovery.
    """
    if isinstance(expr, ClassExtent):
        return {"t": "extent", "name": expr.name}
    for tag, node_cls in _BINARY_GRAPH_OPS.items():
        if type(expr) is node_cls:
            return {
                "t": tag,
                "left": expr_to_dict(expr.left),
                "right": expr_to_dict(expr.right),
                "spec": _spec_to_dict(expr.spec),
            }
    if isinstance(expr, Intersect):
        return {
            "t": "intersect",
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
            "classes": _classes_to_list(expr.classes),
        }
    if isinstance(expr, Divide):
        return {
            "t": "divide",
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
            "classes": _classes_to_list(expr.classes),
        }
    if isinstance(expr, Union):
        return {
            "t": "union",
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
        }
    if isinstance(expr, Difference):
        return {
            "t": "difference",
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
        }
    if isinstance(expr, Select):
        return {
            "t": "select",
            "operand": expr_to_dict(expr.operand),
            "predicate": predicate_to_dict(expr.predicate),
        }
    if isinstance(expr, Project):
        return {
            "t": "project",
            "operand": expr_to_dict(expr.operand),
            "templates": [list(t.classes) for t in expr.templates],
            "links": [list(link.classes) for link in expr.links],
        }
    raise ViewError(
        f"expression node {type(expr).__name__} is not serializable; views "
        "cannot be defined over literal association-sets"
    )


def expr_from_dict(
    data: Mapping[str, Any], registry: FunctionRegistry | None = None
) -> Expr:
    """Rebuild an expression from :func:`expr_to_dict` output."""
    kind = data["t"]
    if kind == "extent":
        return ClassExtent(data["name"])
    if kind in _BINARY_GRAPH_OPS:
        return _BINARY_GRAPH_OPS[kind](
            expr_from_dict(data["left"], registry),
            expr_from_dict(data["right"], registry),
            _spec_from_dict(data.get("spec")),
        )
    if kind == "intersect":
        return Intersect(
            expr_from_dict(data["left"], registry),
            expr_from_dict(data["right"], registry),
            _classes_from_list(data.get("classes")),
        )
    if kind == "divide":
        return Divide(
            expr_from_dict(data["left"], registry),
            expr_from_dict(data["right"], registry),
            _classes_from_list(data.get("classes")),
        )
    if kind == "union":
        return Union(
            expr_from_dict(data["left"], registry),
            expr_from_dict(data["right"], registry),
        )
    if kind == "difference":
        return Difference(
            expr_from_dict(data["left"], registry),
            expr_from_dict(data["right"], registry),
        )
    if kind == "select":
        return Select(
            expr_from_dict(data["operand"], registry),
            predicate_from_dict(data["predicate"], registry),
        )
    if kind == "project":
        return Project(
            expr_from_dict(data["operand"], registry),
            tuple(ChainTemplate(tuple(t)) for t in data["templates"]),
            tuple(PathLink(tuple(link)) for link in data["links"]),
        )
    raise ViewError(f"unknown serialized expression kind {kind!r}")
