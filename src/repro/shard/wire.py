"""Compact wire format for shard results.

Pattern objects pickle expensively: every :class:`~repro.core.edges.Edge`
reduces to a ``__newobj__`` call plus a per-object state dict, and the
receiving side rebuilds two frozensets per pattern, re-hashing every
edge.  At chain-macro scale (10^5 patterns) that costs seconds — more
than the kernels being parallelized — so scatter-gather ships *blobs*
instead: one canonical ``bytes`` value per pattern.

The blob is a deterministic struct packing (sorted vertex table of
``(cls, oid)`` pairs, edges as index triples with polarity/derived
flags), so the same pattern produces the same blob on every worker.
That determinism is what makes both caches safe and effective:

* workers memoize ``Pattern -> blob`` — the arena's decode caches hand
  back the *same* pattern objects run after run, so a warm encode is a
  dict hit;
* the coordinator memoizes ``blob -> Pattern`` — a warm gather rebuilds
  nothing, and a pattern arriving from two shards (shuffle duplicates)
  collapses to one object before the merge union even runs.

A list of small ``bytes`` objects pickles at near-memcpy speed, which is
the point: the pipe transfer cost drops from "re-serialize the object
graph" to "copy the blobs".

Entries are value-only (patterns and blobs are immutable), so stale
cache entries after mutations are dead weight, never wrong answers.
"""

from __future__ import annotations

import struct
from typing import Iterable

from repro.core.edges import Edge, Polarity
from repro.core.identity import IID
from repro.core.pattern import Pattern

__all__ = ["encode_pattern", "decode_pattern", "encode_result", "decode_result"]

_HEADER = struct.Struct("<HH")  # vertex count, edge count
_VERTEX = struct.Struct("<HQ")  # class-name byte length, oid
_EDGE = struct.Struct("<HHB")  # u index, v index, flags

_F_COMPLEMENT = 1
_F_DERIVED = 2


def encode_pattern(pattern: Pattern) -> bytes:
    """Canonical blob for one pattern (stable across processes)."""
    vertices = sorted(pattern.vertices)
    index = {vertex: i for i, vertex in enumerate(vertices)}
    edges = pattern.edges
    out = [_HEADER.pack(len(vertices), len(edges))]
    for vertex in vertices:
        name = vertex.cls.encode("utf-8")
        out.append(_VERTEX.pack(len(name), vertex.oid))
        out.append(name)
    rows = []
    for edge in edges:
        flags = 0
        if edge.polarity is Polarity.COMPLEMENT:
            flags |= _F_COMPLEMENT
        if edge.derived:
            flags |= _F_DERIVED
        rows.append((index[edge.u], index[edge.v], flags))
    rows.sort()
    for row in rows:
        out.append(_EDGE.pack(*row))
    return b"".join(out)


def decode_pattern(blob: bytes) -> Pattern:
    """Rebuild the pattern a blob encodes (inverse of :func:`encode_pattern`)."""
    n_vertices, n_edges = _HEADER.unpack_from(blob, 0)
    offset = _HEADER.size
    vertices: list[IID] = []
    for _ in range(n_vertices):
        length, oid = _VERTEX.unpack_from(blob, offset)
        offset += _VERTEX.size
        cls = blob[offset : offset + length].decode("utf-8")
        offset += length
        vertices.append(IID(cls, oid))
    edges = []
    for _ in range(n_edges):
        u, v, flags = _EDGE.unpack_from(blob, offset)
        offset += _EDGE.size
        edges.append(
            Edge(
                vertices[u],
                vertices[v],
                Polarity.COMPLEMENT if flags & _F_COMPLEMENT else Polarity.REGULAR,
                derived=bool(flags & _F_DERIVED),
            )
        )
    return Pattern._from_parts(frozenset(vertices), frozenset(edges))


def encode_result(
    patterns: Iterable[Pattern], cache: dict[Pattern, bytes]
) -> list[bytes]:
    """Blob list for a result set, memoized per pattern (worker side)."""
    out = []
    cached = cache.get
    for pattern in patterns:
        blob = cached(pattern)
        if blob is None:
            blob = encode_pattern(pattern)
            cache[pattern] = blob
        out.append(blob)
    return out


def decode_result(
    blobs: Iterable[bytes], memo: dict[bytes, Pattern]
) -> frozenset[Pattern]:
    """Patterns for a blob list, memoized per blob (coordinator side)."""
    out = []
    cached = memo.get
    for blob in blobs:
        pattern = cached(blob)
        if pattern is None:
            pattern = decode_pattern(blob)
            memo[blob] = pattern
        out.append(pattern)
    return frozenset(out)
