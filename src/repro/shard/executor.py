"""Scatter-gather execution of a distributed plan over a worker pool.

The coordinator rewrites the annotated query into one expression per
shard, ships them to the pool, and merges the per-shard results with a
set union at each scatter region's root — decode-at-root is preserved
because workers return fully decoded results (as compact wire blobs,
rebuilt/memoized on the coordinator; see :mod:`repro.shard.wire`).

Per-shard rewriting follows the :class:`~repro.shard.planner.DistNode`
annotation:

* a partitioned ``ClassExtent(C)`` leaf becomes ``σ(C)[shard(C)=i/n]``
  (answered by the ``shard-hash`` compact kernel inside the worker);
* graph-pure local subtrees ship verbatim — every worker holds the full
  dataset, so "broadcast" of such operands costs nothing;
* gathered local subtrees and shuffle partitions travel as
  :class:`~repro.core.expression.Literal` operands, with the operator's
  association resolved at the coordinator so shorthand still works;
* shuffle nodes materialize both children, re-partition their rows on
  the pairing class (duplicates sent wherever they can match — the
  gather's set union collapses them) and dispatch per-shard literal
  pairs.

The executor also feeds observability: ``shard.scatter`` spans with one
``shard[i]`` child per worker (worker span trees grafted underneath when
tracing), per-shard cardinalities on every :class:`DistNode`, the
``repro_shard_{tasks_total,bytes_shuffled_total,skew_ratio}`` metrics,
and a sharded ``EXPLAIN ANALYZE`` report built from the annotated tree.
"""

from __future__ import annotations

import copy
import pickle
import time
from typing import TYPE_CHECKING

from repro.core.assoc_set import AssociationSet
from repro.core.expression import (
    AssocSpec,
    Associate,
    ClassExtent,
    Difference,
    Divide,
    Expr,
    Intersect,
    Literal,
    Project,
    Select,
    Union,
    _BinaryGraphOp,
)
from repro.errors import EvaluationError
from repro.obs.explain import ExplainNode, ExplainReport
from repro.obs.metrics import Q_ERROR_BUCKETS
from repro.shard.partition import ShardFilter, shard_of
from repro.shard.planner import DistNode, DistPlan
from repro.shard.wire import decode_result

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.span import Span, Tracer

__all__ = ["ShardedExecutor"]


class ShardedExecutor:
    """Runs :class:`DistPlan`-annotated queries against a shard pool."""

    def __init__(self, graph, pool, executor, metrics=None) -> None:
        self.graph = graph
        self.pool = pool
        self.executor = executor
        self._trace: "Tracer | None" = None
        self._want_spans = False
        self._use_cache = True
        self._plan: DistPlan | None = None
        # blob -> Pattern memo for the wire format: warm gathers rebuild
        # nothing, and duplicates across shards collapse to one object.
        self._wire_memo: dict = {}
        if metrics is not None:
            self._m_tasks = metrics.counter(
                "repro_shard_tasks_total",
                "Per-shard worker queries dispatched by the sharded executor",
            )
            self._m_bytes = metrics.counter(
                "repro_shard_bytes_shuffled_total",
                "Bytes of re-partitioned operand rows shipped during shuffles",
            )
            self._m_skew = metrics.gauge(
                "repro_shard_skew_ratio",
                "Max/mean per-shard result cardinality of the last scatter",
            )
        else:
            self._m_tasks = None
            self._m_bytes = None
            self._m_skew = None

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def run(
        self,
        plan: DistPlan,
        trace: "Tracer | None" = None,
        want_spans: bool = False,
        use_cache: bool = True,
    ) -> AssociationSet:
        """Evaluate the plan's query; exact scatter-gather semantics.

        ``trace`` receives coordinator-side ``shard.scatter`` spans;
        ``want_spans`` additionally pulls each worker's span tree back
        (cache bypassed in the workers so the trees are complete).
        ``use_cache`` is forwarded both to the workers' executors and to
        the coordinator's own executor for local subtrees.
        """
        self._trace = trace
        self._want_spans = want_spans
        self._use_cache = use_cache
        self._plan = plan
        for node in plan.root.walk():
            node.shard_cards = []
            node.actual = None
            node.seconds = 0.0
        try:
            return self._value_of(plan.root)
        finally:
            self._trace = None
            self._plan = None

    def explain(self, plan: DistPlan, cost_model, metrics=None) -> ExplainReport:
        """Sharded ``EXPLAIN ANALYZE``: run traced, annotate the tree.

        Every node carries the chosen distributed strategy and, inside
        scatter regions, the per-shard actual cardinalities whose spread
        is the skew ``repro_shard_skew_ratio`` summarizes.
        """
        result = self.run(plan, want_spans=True)
        root = self._explain_node(plan.root, cost_model)
        if metrics is not None:
            histogram = metrics.histogram(
                "repro_estimate_q_error",
                "Cost-model estimate vs actual cardinality q-error per plan node",
                buckets=Q_ERROR_BUCKETS,
            )
            for node, _ in root.walk():
                histogram.observe(node.q_error, kind=node.kind)
        return ExplainReport(root, result)

    # ------------------------------------------------------------------
    # evaluation over the annotated tree
    # ------------------------------------------------------------------

    def _value_of(self, node: DistNode) -> AssociationSet:
        started = time.perf_counter()
        if node.partitioned:
            result = self._scatter(node)
        elif node.strategy == "shuffle":
            result = self._shuffle(node)
        else:
            result = self.executor.run(
                self._rebuild_local(node), use_cache=self._use_cache
            )
        node.actual = len(result)
        node.seconds = max(node.seconds, time.perf_counter() - started)
        return result

    def _rebuild_local(self, node: DistNode) -> Expr:
        """The coordinator-side expression for a local node.

        Partitioned / shuffled descendants are evaluated (recursively)
        and spliced back in as gathered Literals; untouched subtrees are
        returned as-is so plan-cache keys stay stable.
        """
        if node.partitioned or node.strategy == "shuffle":
            value = self._value_of(node)
            return self._gather_literal(node.expr, value, "gather")
        if not node.children:
            return node.expr
        rebuilt = tuple(self._rebuild_local(child) for child in node.children)
        if all(new is old.expr for new, old in zip(rebuilt, node.children)):
            return node.expr
        return self._replace_children(node.expr, rebuilt)

    def _gather_literal(self, expr: Expr, value: AssociationSet, verb: str) -> Literal:
        return Literal(
            value,
            label=f"{verb}({expr})",
            head=expr.head_class,
            tail=expr.tail_class,
        )

    def _replace_children(self, expr: Expr, children: tuple) -> Expr:
        """``expr`` with its operands swapped for rewritten ones.

        Binary graph operators get an explicit association spec resolved
        at the coordinator — a Literal operand loses the linear-shorthand
        head/tail the original operand provided.
        """
        new = copy.copy(expr)
        if isinstance(expr, _BinaryGraphOp):
            new.left, new.right = children
            if expr.spec is None:
                assoc, a_cls, b_cls = expr.resolve(self.graph)
                new.spec = AssocSpec(a_cls, b_cls, assoc.name)
        elif isinstance(expr, (Intersect, Union, Difference, Divide)):
            new.left, new.right = children
        elif isinstance(expr, (Select, Project)):
            (new.operand,) = children
        else:  # pragma: no cover - planner never distributes other nodes
            raise EvaluationError(f"cannot rewrite {expr!r} for sharded execution")
        return new

    # ------------------------------------------------------------------
    # scatter regions
    # ------------------------------------------------------------------

    def _scatter(self, node: DistNode) -> AssociationSet:
        exprs = self._shard_exprs(node)
        results = self._dispatch(node, exprs)
        return self._merge(results)

    def _shard_exprs(self, node: DistNode) -> list:
        """One expression per shard for a partitioned node."""
        shards = self._plan.shards
        expr = node.expr
        if isinstance(expr, ClassExtent):
            return [
                Select(expr, ShardFilter(expr.name, i, shards))
                for i in range(shards)
            ]
        if isinstance(expr, Select):
            operands = self._shard_exprs(node.children[0])
            return [Select(operand, expr.predicate) for operand in operands]
        if node.strategy == "co-partitioned":
            lefts = self._shard_exprs(node.children[0])
            rights = self._shard_exprs(node.children[1])
            return [
                self._replace_children(expr, pair) for pair in zip(lefts, rights)
            ]
        if node.strategy == "broadcast":
            left, right = node.children
            if left.partitioned:
                parts = self._shard_exprs(left)
                other = self._rebuild_local(right)
                return [self._replace_children(expr, (p, other)) for p in parts]
            parts = self._shard_exprs(right)
            other = self._rebuild_local(left)
            return [self._replace_children(expr, (other, p)) for p in parts]
        raise EvaluationError(  # pragma: no cover - annotation invariant
            f"node {expr!r} is partitioned but has no scatter strategy"
        )

    # ------------------------------------------------------------------
    # shuffle
    # ------------------------------------------------------------------

    def _shuffle(self, node: DistNode) -> AssociationSet:
        """Re-partition both operands on the pairing class and scatter.

        Rows are duplicated to every shard where they can find a match;
        the gather's set union collapses the duplicates, so the result
        is exactly the single-process one.
        """
        left, right = node.children
        left_value = self._value_of(left)
        right_value = self._value_of(right)
        expr = node.expr
        shards = self._plan.shards
        if isinstance(expr, Associate):
            assoc, a_cls, b_cls = expr.resolve(self.graph)
            left_parts = self._partition_by_instances(left_value, a_cls, shards)
            right_parts = self._partition_by_partners(
                right_value, b_cls, assoc, shards
            )
            spec = AssocSpec(a_cls, b_cls, assoc.name)
            shard_exprs = [
                Associate(
                    self._gather_literal(expr.left, left_parts[i], "shuffle"),
                    self._gather_literal(expr.right, right_parts[i], "shuffle"),
                    spec,
                )
                if left_parts[i] and right_parts[i]
                else None
                for i in range(shards)
            ]
        elif isinstance(expr, Intersect) and expr.classes:
            anchor = sorted(expr.classes)[0]
            left_parts = self._partition_by_instances(left_value, anchor, shards)
            right_parts = self._partition_by_instances(right_value, anchor, shards)
            shard_exprs = [
                Intersect(
                    self._gather_literal(expr.left, left_parts[i], "shuffle"),
                    self._gather_literal(expr.right, right_parts[i], "shuffle"),
                    expr.classes,
                )
                if left_parts[i] and right_parts[i]
                else None
                for i in range(shards)
            ]
        else:  # pragma: no cover - planner only shuffles Associate/Intersect
            raise EvaluationError(f"cannot shuffle {expr!r}")
        if self._m_bytes is not None:
            self._m_bytes.inc(
                sum(len(pickle.dumps(e)) for e in shard_exprs if e is not None)
            )
        results = self._dispatch(node, shard_exprs)
        return self._merge(results)

    def _partition_by_instances(
        self, value: AssociationSet, cls: str, shards: int
    ) -> list:
        """Patterns routed to the shards their ``cls`` instances hash to.

        Patterns without a ``cls`` instance cannot pair (Associate) or
        merge (explicit-W Intersect) and are dropped — exactly what the
        single-process operator does with them.
        """
        parts: list[set] = [set() for _ in range(shards)]
        for pattern, instances in value.patterns_with_class(cls):
            for iid in instances:
                parts[shard_of(iid.oid, shards)].add(pattern)
        return [AssociationSet.from_frozen(frozenset(p)) for p in parts]

    def _partition_by_partners(
        self, value: AssociationSet, cls: str, assoc, shards: int
    ) -> list:
        """β-side routing for a shuffled Associate: a pattern follows its
        ``cls`` instances' association partners, which is where the
        α-side rows it can pair with were sent."""
        partners = self.graph.partners
        parts: list[set] = [set() for _ in range(shards)]
        for pattern, instances in value.patterns_with_class(cls):
            targets = set()
            for iid in instances:
                for partner in partners(assoc, iid):
                    targets.add(shard_of(partner.oid, shards))
            for target in targets:
                parts[target].add(pattern)
        return [AssociationSet.from_frozen(frozenset(p)) for p in parts]

    # ------------------------------------------------------------------
    # dispatch / merge / observability
    # ------------------------------------------------------------------

    def _dispatch(self, node: DistNode, exprs: list) -> list:
        """Scatter ``exprs`` over the pool, recording spans and metrics."""
        trace = self._trace
        span = None
        if trace is not None:
            span = trace.begin(
                "shard.scatter",
                node.expr.kind,
                strategy=node.strategy or "scatter",
                cls=self._plan.cls,
                shards=self._plan.shards,
            )
        try:
            results = self.pool.scatter(
                exprs, want_trace=self._want_spans, use_cache=self._use_cache
            )
        except BaseException as exc:
            if span is not None:
                trace.finish(span, error=type(exc).__name__)
            raise
        memo = self._wire_memo
        results = [
            (decode_result(entry[0], memo), entry[1], entry[2])
            if entry is not None
            else None
            for entry in results
        ]
        cards = [len(r[0]) if r is not None else 0 for r in results]
        node.shard_cards = cards
        if self._m_tasks is not None:
            self._m_tasks.inc(sum(1 for e in exprs if e is not None))
        if self._m_skew is not None:
            total = sum(cards)
            mean = total / len(cards) if cards else 0.0
            self._m_skew.set(max(cards) / mean if mean else 1.0)
        for index, entry in enumerate(results):
            if entry is None:
                continue
            if span is not None:
                child = trace.begin(
                    f"shard[{index}]", node.expr.kind, worker_seconds=entry[1]
                )
                trace.finish(child, output=cards[index])
                if entry[2] is not None:
                    child.children.append(entry[2])
            if entry[2] is not None and node.partitioned:
                self._attach_spans(node, entry[2])
        if span is not None:
            trace.finish(span, output=sum(cards))
        return results

    def _merge(self, results: list) -> AssociationSet:
        """Gather: set union of the per-shard results at the region root."""
        sets = [entry[0] for entry in results if entry is not None]
        if not sets:
            return AssociationSet.from_frozen(frozenset())
        return AssociationSet.from_frozen(frozenset().union(*sets))

    def _attach_spans(self, node: DistNode, span: "Span") -> None:
        """Harvest per-shard actuals from one worker's span tree.

        The per-shard expression tree mirrors the region's annotated
        subtree (extent leaves gain a σ wrapper, local operands collapse
        to embedded subtrees or Literals), so a guarded parallel walk
        recovers each interior node's per-shard cardinality.
        """
        node.seconds = max(node.seconds, span.seconds)
        # Shape guard: a partitioned extent's span is its σ wrapper and a
        # gathered Literal's span is a leaf — child counts disagree in
        # both cases, stopping the walk exactly where shapes diverge.
        if len(span.children) == len(node.children):
            for child_node, child_span in zip(node.children, span.children):
                self._attach_child(child_node, child_span)

    def _attach_child(self, node: DistNode, span: "Span") -> None:
        node.shard_cards.append(span.output_cardinality or 0)
        self._attach_spans(node, span)

    # ------------------------------------------------------------------
    # EXPLAIN ANALYZE
    # ------------------------------------------------------------------

    def _explain_node(self, node: DistNode, model) -> ExplainNode:
        children = tuple(
            self._explain_node(child, model) for child in node.children
        )
        try:
            estimate = model.estimate(node.expr)
            estimated = estimate.cardinality
            source = getattr(estimate, "source", None)
        except Exception:  # pragma: no cover - exotic literal estimates
            estimated, source = 0.0, None
        cards = tuple(node.shard_cards) if node.shard_cards else None
        if node.actual is not None:
            actual = node.actual
        elif cards is not None:
            # interior scatter-region node: the coordinator never merges
            # it, so the per-shard total is the observable actual
            actual = sum(cards)
        else:
            actual = 0
        strategy = node.strategy
        if strategy is None and node.partitioned:
            strategy = "partitioned"
        child_seconds = sum(c.seconds for c in node.children)
        return ExplainNode(
            text=str(node.expr),
            kind=node.expr.kind.label,
            estimated=estimated,
            actual=actual,
            seconds=node.seconds,
            self_seconds=max(0.0, node.seconds - child_seconds),
            children=children,
            strategy=strategy,
            source=source,
            shard_cards=cards,
        )
