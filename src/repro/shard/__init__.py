"""Sharded scatter-gather execution.

Hash-partitioned worker processes (:mod:`repro.shard.pool`), a
distributed planner choosing co-partitioned / broadcast / shuffle
strategies per node (:mod:`repro.shard.planner`), and the coordinator
that rewrites, scatters and merges (:mod:`repro.shard.executor`).
See ``docs/sharding.md`` for the partitioning scheme and the exactness
argument.
"""

from repro.shard.executor import ShardedExecutor
from repro.shard.partition import ShardFilter, shard_of
from repro.shard.planner import STRATEGIES, DistNode, DistPlan, DistPlanner
from repro.shard.pool import ShardPool

__all__ = [
    "STRATEGIES",
    "DistNode",
    "DistPlan",
    "DistPlanner",
    "ShardFilter",
    "ShardPool",
    "ShardedExecutor",
    "shard_of",
]
