"""Hash partitioning of class extents by OID.

The partitioning scheme is the one the object-clustering literature
recommends for association-heavy workloads: hash each instance's OID so
every shard receives a statistically even slice of the extent, and let
the planner decide per query which class's partitioning to anchor the
scatter on.  The hash is Knuth's multiplicative scheme over the raw
integer OID — deterministic across processes (Python hashes small ints
unsalted, but we do not even rely on that), so the coordinator and every
worker agree on placement without coordination.
"""

from __future__ import annotations

from repro.core.pattern import Pattern
from repro.core.predicates import Predicate
from repro.objects.graph import ObjectGraph

__all__ = ["shard_of", "ShardFilter"]

_KNUTH = 2654435761  # 2^32 / golden ratio, Knuth multiplicative hashing


def shard_of(oid: int, shards: int) -> int:
    """The shard ``oid`` lives on under an ``shards``-way partitioning."""
    return ((oid * _KNUTH) & 0xFFFFFFFF) % shards


class ShardFilter(Predicate):
    """Keeps the patterns whose ``cls`` instances all live on one shard.

    The planner rewrites a partitioned ``ClassExtent(C)`` leaf into
    ``σ(C)[ShardFilter(C, i, n)]`` for shard ``i`` — each worker holds the
    full graph, so the filter *is* the partitioning.  On extent leaves
    every pattern is an Inner-pattern with exactly one ``cls`` instance;
    the general form (all instances must agree, at least one required)
    keeps the predicate meaningful on any operand.
    """

    def __init__(self, cls: str, shard: int, shards: int) -> None:
        self.cls = cls
        self.shard = shard
        self.shards = shards

    def reads_classes(self) -> frozenset:
        """Declares the partition class to the select-pushdown analysis
        (keeps worker-side cache dependencies from widening to ``*``)."""
        return frozenset((self.cls,))

    def evaluate(self, pattern: Pattern, graph: ObjectGraph) -> bool:
        matched = False
        for iid in pattern.instances_of(self.cls):
            if shard_of(iid.oid, self.shards) != self.shard:
                return False
            matched = True
        return matched

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardFilter)
            and other.cls == self.cls
            and other.shard == self.shard
            and other.shards == self.shards
        )

    def __hash__(self) -> int:
        return hash(("ShardFilter", self.cls, self.shard, self.shards))

    def __str__(self) -> str:
        return f"shard({self.cls}) = {self.shard}/{self.shards}"
