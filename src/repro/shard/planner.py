"""Distributed planning: annotate a query tree with scatter strategies.

The A-algebra makes distributed execution tractable because its
pairing-only operators distribute over a union-partitioning of one
operand:

``op(α₁ ∪ … ∪ αₙ, β)  =  op(α₁, β) ∪ … ∪ op(αₙ, β)``

holds for Associate, A-Intersect (with an explicit ``{W}``), A-Union,
A-Select and the minuend side of A-Difference — none of them has a
clause that looks at the *whole* operand.  The operators with global
clauses (A-Complement's and NonAssociate's retention rules, A-Divide's
universal quantifier, A-Intersect with a data-dependent ``{W}``) must
see complete operands and therefore run at the coordinator.

The planner picks one *partition class* ``C`` and annotates every node
with how it executes under a hash partitioning of ``C``'s extent:

* **co-partitioned local** — both operands are partitioned and every
  result pair provably meets on one shard (anchoring invariant below):
  pure scatter-gather, no data movement.
* **broadcast** — one operand is partitioned, the other is evaluated
  once and made visible to every shard.  Subtrees that only read the
  graph are "broadcast" for free — every worker holds the full dataset,
  so the subexpression simply ships inside the per-shard query.
* **shuffle** — both operands are partitioned but pairs may straddle
  shards: rows are re-partitioned on the pairing class (duplicates sent
  wherever they can match; the gather's set-union collapses them).

**Anchoring invariant**: a partitioned node is *anchored* when every
result pattern holds at least one ``C`` instance and all of its ``C``
instances hash to the shard that produced it.  Extent leaves of ``C``
are anchored by construction; pairing operators preserve anchoring as
long as the other operand cannot contribute stray ``C`` instances.
Anchoring is what makes co-partitioned A-Intersect (``C ∈ W``),
A-Difference and A-Union exact without movement.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

from repro.core.expression import (
    Associate,
    ClassExtent,
    Difference,
    Expr,
    Intersect,
    Literal,
    Select,
    Union,
)
from repro.core.predicates import (
    Apply,
    Callback,
    Comparison,
    Predicate,
)

__all__ = ["DistNode", "DistPlan", "DistPlanner", "STRATEGIES"]

#: The distributed strategies EXPLAIN ANALYZE can report.
STRATEGIES = ("co-partitioned", "broadcast", "shuffle")


@dataclass
class DistNode:
    """One expression node annotated for sharded execution."""

    expr: Expr
    children: tuple["DistNode", ...] = ()
    #: True → this node's result is produced shard-by-shard.
    partitioned: bool = False
    #: Anchoring invariant holds for this node's per-shard results.
    anchored: bool = False
    #: "co-partitioned" / "broadcast" / "shuffle" on partitioned interior
    #: nodes; "gather" on a local node that merges partitioned children;
    #: None on leaves and plain local nodes.
    strategy: str | None = None
    #: Local subtree reads only the graph (no partitioned descendants,
    #: no coordinator-only state) — it can ship inside a worker query.
    embeddable: bool = False
    #: Per-shard actual cardinalities, filled in by the executor.
    shard_cards: list = field(default_factory=list)
    #: Merged (coordinator-visible) actual cardinality, when known.
    actual: int | None = None
    #: Inclusive wall time the executor observed for this node.
    seconds: float = 0.0

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class DistPlan:
    """A distributed annotation of one query under one partition class."""

    root: DistNode
    cls: str
    shards: int
    #: Planner's relative preference score (higher = more work off the
    #: coordinator); kept for EXPLAIN and tests.
    score: float = 0.0

    @property
    def strategies(self) -> frozenset:
        return frozenset(
            n.strategy for n in self.root.walk() if n.strategy in STRATEGIES
        )


def _predicate_shippable(p: Predicate | object) -> bool:
    """Whether a predicate can run inside a worker process.

    Callbacks hold arbitrary closures; Apply resolves computed-value
    functions against the coordinator's registry — neither travels.
    """
    if isinstance(p, Callback):
        return False
    if isinstance(p, Comparison):
        return not (isinstance(p.left, Apply) or isinstance(p.right, Apply))
    for attr in ("operands", "operand"):
        sub = getattr(p, attr, None)
        if sub is None:
            continue
        subs = sub if isinstance(sub, tuple) else (sub,)
        if not all(_predicate_shippable(s) for s in subs):
            return False
    return True


def _subtree_classes(expr: Expr) -> tuple[frozenset, bool]:
    """``(classes the subtree's results can contain, is that exact?)``."""
    if isinstance(expr, ClassExtent):
        return frozenset((expr.name,)), True
    if isinstance(expr, Literal):
        return expr.value.classes(), True
    children = expr.children()
    if not children:
        return frozenset(), False
    exact = True
    out: set = set()
    if isinstance(expr, Select):
        return _subtree_classes(expr.operand)
    if not isinstance(expr, (Associate, Intersect, Union, Difference)):
        # Project rewrites patterns, Complement/NonAssociate add both
        # operands, Divide groups — be conservative about what comes out.
        exact = False
    for child in children:
        classes, child_exact = _subtree_classes(child)
        out |= classes
        exact = exact and child_exact
    return frozenset(out), exact


def _may_contain(expr: Expr, cls: str) -> bool:
    classes, exact = _subtree_classes(expr)
    return cls in classes or not exact


class DistPlanner:
    """Chooses a partition class and distributed strategies for a query.

    ``stats`` is the engine's :class:`StatisticsCatalog` (may be cold);
    extent counts and association fan-outs feed the scoring that picks
    the partition class and arbitrates broadcast vs. gather.
    """

    def __init__(self, graph, stats=None) -> None:
        self.graph = graph
        self.stats = stats

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def plan(
        self,
        expr: Expr,
        shards: int,
        force_strategy: str | None = None,
    ) -> DistPlan | None:
        """The best distributed annotation of ``expr``, or ``None``.

        ``None`` means no partitioning moves meaningful work off the
        coordinator (or the query cannot ship at all) — the caller runs
        single-process.  ``force_strategy`` makes the planner reject any
        candidate whose annotation does not employ the named strategy
        (used by the equivalence tests to pin each code path).
        """
        if shards < 2:
            return None
        if not self._shippable(expr):
            return None
        best: DistPlan | None = None
        for cls in sorted(self._candidate_classes(expr)):
            root = self._annotate(expr, cls, force_strategy)
            score = self._score(root, cls)
            # Forcing a strategy pins a code path for the equivalence
            # tests — profitability is beside the point there.
            if score <= 0 and force_strategy is None:
                continue
            plan = DistPlan(root, cls, shards, score)
            if force_strategy is not None and force_strategy not in plan.strategies:
                continue
            if best is None or plan.score > best.score:
                best = plan
        return best

    # ------------------------------------------------------------------
    # candidate discovery / scoring
    # ------------------------------------------------------------------

    def _candidate_classes(self, expr: Expr) -> set:
        out: set = set()
        if isinstance(expr, ClassExtent):
            out.add(expr.name)
        for child in expr.children():
            out |= self._candidate_classes(child)
        return out

    def _extent_size(self, cls: str) -> int:
        if self.stats is not None:
            stats = self.stats.class_stats(cls)
            if stats is not None:
                return int(stats.count)
        return self.graph.extent_size(cls)

    def _fanout(self, a_cls: str, b_cls: str) -> float:
        if self.stats is not None:
            try:
                assoc = self.graph.schema.resolve(a_cls, b_cls)
            except Exception:
                return 1.0
            stats = self.stats.association_stats(assoc.key)
            if stats is not None and stats.left_fanout is not None:
                return float(stats.left_fanout.mean)
        return 1.0

    def _score(self, node: DistNode, cls: str) -> float:
        """Work moved off the coordinator, minus movement penalties.

        Partitioned extent leaves contribute their extent count scaled by
        the mean fan-out of the associations above them (the kernels'
        work tracks pair counts); every shuffle node pays a penalty
        proportional to the rows it must gather and re-send; a plan whose
        root still runs at the coordinator keeps only the distributed
        fraction of its subtrees.
        """
        score = 0.0
        for n in node.walk():
            if isinstance(n.expr, ClassExtent) and n.partitioned:
                score += float(self._extent_size(n.expr.name))
            if n.strategy == "shuffle":
                left, right = n.children
                penalty = 0.0
                for side in (left, right):
                    classes, _ = _subtree_classes(side.expr)
                    penalty += sum(self._extent_size(c) for c in classes)
                score -= 0.5 * penalty
            if n.strategy == "broadcast":
                for child in n.children:
                    if not child.partitioned and isinstance(child.expr, Literal):
                        score -= float(len(child.expr.value.patterns))
        return score

    # ------------------------------------------------------------------
    # annotation
    # ------------------------------------------------------------------

    def _annotate(
        self, expr: Expr, cls: str, force: str | None = None
    ) -> DistNode:
        if isinstance(expr, ClassExtent):
            if expr.name == cls:
                return DistNode(expr, (), True, True, None, True)
            return DistNode(expr, (), False, False, None, True)
        if isinstance(expr, Literal):
            return DistNode(expr, (), False, False, None, True)
        if isinstance(expr, Select):
            child = self._annotate(expr.operand, cls, force)
            ok = _predicate_shippable(expr.predicate)
            if child.partitioned and ok:
                return DistNode(
                    expr, (child,), True, child.anchored, None, False
                )
            return self._local(expr, (child,), embeddable=child.embeddable and ok)
        if isinstance(expr, Associate):
            return self._binary_pairing(expr, cls, force)
        if isinstance(expr, Intersect):
            return self._intersect(expr, cls, force)
        if isinstance(expr, Union):
            return self._union(expr, cls, force)
        if isinstance(expr, Difference):
            return self._difference(expr, cls, force)
        # Complement, NonAssociate, Divide, Project, dynamic-W Intersect,
        # anything future: coordinator-local, children gathered.
        children = tuple(
            self._annotate(c, cls, force) for c in expr.children()
        )
        embeddable = all(c.embeddable and not c.partitioned for c in children)
        return self._local(expr, children, embeddable=embeddable)

    def _local(
        self, expr: Expr, children: tuple, embeddable: bool = False
    ) -> DistNode:
        gathers = any(c.partitioned for c in children)
        return DistNode(
            expr,
            children,
            False,
            False,
            "gather" if gathers else None,
            embeddable and not gathers,
        )

    def _binary_pairing(self, expr: Associate, cls: str, force) -> DistNode:
        left = self._annotate(expr.left, cls, force)
        right = self._annotate(expr.right, cls, force)
        if left.partitioned and right.partitioned:
            # Pairs meet through graph edges, not shared instances — the
            # two sides' anchors hash independently, so this is always a
            # shuffle (re-partition on the pairing classes).
            return DistNode(expr, (left, right), False, False, "shuffle")
        if left.partitioned or right.partitioned:
            part, other = (left, right) if left.partitioned else (right, left)
            if not self._broadcastable(other):
                return self._local(expr, (left, right))
            anchored = part.anchored and not _may_contain(other.expr, cls)
            return DistNode(expr, (left, right), True, anchored, "broadcast")
        return self._local(
            expr, (left, right), embeddable=left.embeddable and right.embeddable
        )

    def _intersect(self, expr: Intersect, cls: str, force) -> DistNode:
        left = self._annotate(expr.left, cls, force)
        right = self._annotate(expr.right, cls, force)
        if expr.classes is None:
            # {W} defaults to the classes both *results* share — a
            # per-shard subset can disagree with the global answer, so
            # dynamic-W Intersect never distributes.
            if left.partitioned or right.partitioned:
                return self._local(expr, (left, right))
            return self._local(
                expr,
                (left, right),
                embeddable=left.embeddable and right.embeddable,
            )
        if left.partitioned and right.partitioned:
            aligned = cls in expr.classes and left.anchored and right.anchored
            if aligned and force != "shuffle":
                # Merging requires agreement on {W} ∋ C: both patterns
                # carry the same C instances, so they share a shard.
                return DistNode(expr, (left, right), True, True, "co-partitioned")
            return DistNode(expr, (left, right), False, False, "shuffle")
        if left.partitioned or right.partitioned:
            part, other = (left, right) if left.partitioned else (right, left)
            if not self._broadcastable(other):
                return self._local(expr, (left, right))
            anchored = part.anchored and not _may_contain(other.expr, cls)
            return DistNode(expr, (left, right), True, anchored, "broadcast")
        return self._local(
            expr, (left, right), embeddable=left.embeddable and right.embeddable
        )

    def _union(self, expr: Union, cls: str, force) -> DistNode:
        left = self._annotate(expr.left, cls, force)
        right = self._annotate(expr.right, cls, force)
        if left.partitioned and right.partitioned:
            return DistNode(
                expr,
                (left, right),
                True,
                left.anchored and right.anchored,
                "co-partitioned",
            )
        if left.partitioned or right.partitioned:
            part, other = (left, right) if left.partitioned else (right, left)
            if not self._broadcastable(other):
                return self._local(expr, (left, right))
            # The broadcast side surfaces on every shard (set-union dedup
            # keeps the gather exact), so its patterns break anchoring.
            return DistNode(expr, (left, right), True, False, "broadcast")
        return self._local(
            expr, (left, right), embeddable=left.embeddable and right.embeddable
        )

    def _difference(self, expr: Difference, cls: str, force) -> DistNode:
        left = self._annotate(expr.left, cls, force)
        right = self._annotate(expr.right, cls, force)
        if left.partitioned and right.partitioned:
            if left.anchored and right.anchored:
                # A contained subtrahend's C instances are a subset of the
                # minuend's — anchoring puts both on the same shard.
                return DistNode(
                    expr, (left, right), True, left.anchored, "co-partitioned"
                )
            return self._local(expr, (left, right))
        if left.partitioned:
            if not self._broadcastable(right):
                return self._local(expr, (left, right))
            # Broadcast the whole subtrahend; each shard's minuend slice
            # is tested against everything it could contain.
            return DistNode(expr, (left, right), True, left.anchored, "broadcast")
        if right.partitioned:
            # A partitioned subtrahend under a local minuend would need
            # the full subtrahend anyway — gather it.
            return self._local(expr, (left, right))
        return self._local(
            expr, (left, right), embeddable=left.embeddable and right.embeddable
        )

    # ------------------------------------------------------------------
    # shippability
    # ------------------------------------------------------------------

    def _broadcastable(self, node: DistNode) -> bool:
        """A local operand can sit under a partitioned operator if the
        workers can see it: either the subtree ships inside the query, or
        the coordinator can evaluate it and embed the result."""
        return True  # non-embeddable subtrees are gathered into Literals

    def _shippable(self, expr: Expr) -> bool:
        """Whether the expression survives the trip to a worker."""
        if isinstance(expr, Select) and not _predicate_shippable(expr.predicate):
            return False
        for child in expr.children():
            if not self._shippable(child):
                return False
        if not expr.children():
            try:
                pickle.dumps(expr)
            except Exception:
                return False
        return True
