"""Worker process pool: full-dataset replicas driven over pipes.

Each worker holds a complete replica of the database (schema + object
graph shipped once at startup through the storage serialization layer)
and executes per-shard queries with the ordinary compact-kernel
executor — the *partitioning* lives in the queries (``ShardFilter``
selections on the partition class), not in the data placement.  This
keeps the pool usable for any partition class the planner picks, at the
cost of per-worker memory proportional to the dataset.

Mutations are forwarded as buffered event batches and replayed through
the same WAL-record path crash recovery uses, so worker replicas stay
exactly as incremental maintenance leaves the coordinator.  Pipes are
FIFO: a flush followed by a query needs no acknowledgement round-trip.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Any, Sequence

__all__ = ["ShardPool"]


def _worker_main(conn, schema_data: dict, graph_data: dict) -> None:
    """Worker loop: rebuild the replica, then serve queries and events."""
    import time

    from repro.engine.database import Database
    from repro.obs.span import Tracer
    from repro.shard.wire import encode_result
    from repro.storage.serialization import graph_from_dict, schema_from_dict
    from repro.storage.wal import WalRecord

    schema = schema_from_dict(schema_data)
    graph = graph_from_dict(graph_data, schema)
    db = Database(schema, graph)
    # Pattern -> blob memo: the arena's decode caches hand back the same
    # pattern objects run after run, so warm encodes are dict hits.
    wire_cache: dict = {}
    try:
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "stop":
                break
            if tag == "events":
                try:
                    for event in message[1]:
                        db._apply_record(
                            WalRecord(
                                0,
                                event.kind,
                                event.instances,
                                event.association,
                                event.value,
                            )
                        )
                except Exception as exc:  # surfaced on the next query
                    conn.send(("err", f"event replay failed: {exc!r}"))
                    break
                continue
            if tag == "query":
                expr, want_trace, use_cache = message[1], message[2], message[3]
                try:
                    started = time.perf_counter()
                    if want_trace:
                        # Cache bypassed so the span tree mirrors the full
                        # expression tree (mirrors single-process EXPLAIN).
                        tracer = Tracer()
                        result = db.executor.run(
                            expr, trace=tracer, use_cache=False
                        )
                        span = tracer.roots[-1] if tracer.roots else None
                    else:
                        result = db.executor.run(expr, use_cache=use_cache)
                        span = None
                    elapsed = time.perf_counter() - started
                    blobs = encode_result(result.patterns, wire_cache)
                    conn.send(("ok", (blobs, elapsed, span)))
                except Exception as exc:
                    conn.send(("err", repr(exc)))
                continue
            conn.send(("err", f"unknown message {tag!r}"))
            break
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class ShardPool:
    """N worker replicas plus the coordinator-side bookkeeping."""

    def __init__(
        self,
        schema,
        graph,
        shards: int,
        metrics=None,
        events=None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shard pool needs >= 1 worker, got {shards}")
        self.shards = shards
        self._events = events
        self._pending: list = []
        self._closed = False
        self._g_workers = None
        if metrics is not None:
            self._g_workers = metrics.gauge(
                "repro_shard_workers", "Worker processes in the shard pool"
            )
        from repro.storage.serialization import graph_to_dict, schema_to_dict

        schema_data = schema_to_dict(schema)
        graph_data = graph_to_dict(graph)
        self.dataset_bytes = len(pickle.dumps((schema_data, graph_data)))
        # fork ships the parent-built payload dicts without re-pickling
        # and skips re-importing the engine; spawn is the portable
        # fallback where fork is unavailable.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._conns = []
        self._procs = []
        for index in range(shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child, schema_data, graph_data),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        if self._g_workers is not None:
            self._g_workers.set(shards)
        if events is not None:
            events.emit(
                "shard.pool_start",
                shards=shards,
                dataset_bytes=self.dataset_bytes,
                pids=[p.pid for p in self._procs],
            )

    # ------------------------------------------------------------------
    # mutation forwarding
    # ------------------------------------------------------------------

    def buffer_event(self, event) -> None:
        """Queue one mutation event for the replicas (flushed lazily)."""
        self._pending.append(event)

    def flush_events(self) -> None:
        """Ship buffered mutations to every worker (FIFO before queries)."""
        if not self._pending or self._closed:
            return
        batch = list(self._pending)
        self._pending.clear()
        for conn in self._conns:
            conn.send(("events", batch))

    # ------------------------------------------------------------------
    # scatter
    # ------------------------------------------------------------------

    def scatter(
        self,
        exprs: Sequence[Any],
        want_trace: bool = False,
        use_cache: bool = True,
    ) -> list:
        """Run ``exprs[i]`` on worker ``i``; returns per-shard results.

        Each non-``None`` slot comes back as ``(blobs, seconds, span)``
        — ``blobs`` is the result in the compact wire format (decode with
        :func:`repro.shard.wire.decode_result`) and ``span`` is the
        worker's span tree when ``want_trace`` is set, else ``None``.
        ``None`` expression entries skip their worker (that shard
        contributes the empty set).  Raises ``RuntimeError`` if any
        worker fails — the caller decides whether to fall back to
        single-process execution.
        """
        if self._closed:
            raise RuntimeError("shard pool is closed")
        self.flush_events()
        sent = []
        for index, expr in enumerate(exprs):
            if expr is None:
                continue
            self._conns[index].send(("query", expr, want_trace, use_cache))
            sent.append(index)
        results: list = [None] * len(exprs)
        errors = []
        for index in sent:
            tag, payload = self._conns[index].recv()
            if tag == "ok":
                results[index] = payload
            else:
                errors.append(f"shard {index}: {payload}")
        if errors:
            raise RuntimeError("; ".join(errors))
        return results

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def stop(self) -> None:
        """Stop every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1)
        for conn in self._conns:
            conn.close()
        if self._g_workers is not None:
            self._g_workers.set(0)
        if self._events is not None:
            self._events.emit("shard.pool_stop", shards=self.shards)

    def __del__(self):  # pragma: no cover - interpreter teardown path
        try:
            self.stop()
        except Exception:
            pass

    def __str__(self) -> str:
        state = "closed" if self._closed else "running"
        return f"ShardPool({self.shards} workers, {state}, pid={os.getpid()})"
