"""Physical access structures over an object graph.

The logical evaluator (:meth:`repro.core.expression.Expr.evaluate`)
re-materializes class extents as association-sets of Inner-patterns on
every reference and rediscovers association edges pattern by pattern.
:class:`IndexManager` keeps the two derived structures the physical
operators lean on:

* **extent sets** — the ``AssociationSet.of_inners`` view of each class
  extent, built once and updated incrementally as instances come and go;
* **edge-pattern sets** — one ``Pattern`` per regular edge of an
  association, the ready-made answer to ``A *[R(A,B)] B`` over two bare
  extents (the edge-scan join), invalidated when the association changes.

Maintenance is event-driven: the owning executor feeds every
:class:`~repro.engine.database.MutationEvent` into :meth:`apply`.
Mutations that bypass the event stream (someone poking the graph
directly) are caught by the graph's ``version`` counter — the executor
calls :meth:`reset` when the version moved without events explaining it.
"""

from __future__ import annotations

from repro.core.assoc_set import AssociationSet
from repro.core.edges import inter
from repro.core.pattern import Pattern
from repro.objects.graph import ObjectGraph
from repro.schema.graph import Association

__all__ = ["IndexManager"]


class IndexManager:
    """Incrementally maintained extent and edge-pattern indexes."""

    def __init__(self, graph: ObjectGraph) -> None:
        self.graph = graph
        self._extent_sets: dict[str, AssociationSet] = {}
        # keyed by assoc.key; one Inter-pattern per regular edge
        self._edge_sets: dict[tuple[str, str, str], AssociationSet] = {}

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def extent_set(self, cls: str) -> AssociationSet:
        """The extent of ``cls`` as Inner-patterns, cached across queries."""
        cached = self._extent_sets.get(cls)
        if cached is None:
            cached = AssociationSet.of_inners(self.graph.extent(cls))
            self._extent_sets[cls] = cached
        return cached

    def edge_set(self, assoc: Association) -> AssociationSet:
        """One two-vertex pattern per regular edge of ``assoc``, cached.

        This is the materialized result of ``A *[R(A,B)] B`` over the two
        bare extents — the edge-scan join reads it directly instead of
        probing adjacency per instance.
        """
        cached = self._edge_sets.get(assoc.key)
        if cached is None:
            cached = AssociationSet(
                Pattern.from_edges((inter(a, b),))
                for a, b in self.graph.edges(assoc)
            )
            self._edge_sets[assoc.key] = cached
        return cached

    def find_by_value(self, cls: str, value) -> AssociationSet:
        """Inner-patterns of the ``cls`` instances carrying ``value``.

        Delegates to the graph's per-class value index (O(1) for hashable
        values) — the access path behind value-index select pushdown.
        """
        return AssociationSet.of_inners(self.graph.find_by_value(cls, value))

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def apply(self, event) -> None:
        """Fold one mutation event into the cached structures.

        Extent sets are updated in place (insert adds the Inner-pattern,
        delete removes it); edge-pattern sets are updated for link/unlink
        when cached, and dropped for deletes (the event does not say which
        associations lost edges).  Value updates touch neither — patterns
        carry identity, not values.
        """
        kind = event.kind
        if kind == "insert":
            for instance in event.instances:
                cached = self._extent_sets.get(instance.cls)
                if cached is not None:
                    self._extent_sets[instance.cls] = AssociationSet(
                        cached.patterns | {Pattern.inner(instance)}
                    )
            if len(event.instances) > 1:
                # A multi-class insert wires is-a edges between the new
                # instances (GraphBuilder.add_object); drop edge sets
                # touching the affected classes.
                self._drop_edge_sets({i.cls for i in event.instances})
        elif kind == "delete":
            for instance in event.instances:
                cached = self._extent_sets.get(instance.cls)
                if cached is not None:
                    self._extent_sets[instance.cls] = AssociationSet(
                        cached.patterns - {Pattern.inner(instance)}
                    )
            # incident edges went away with the instance; the event does
            # not carry the association names, so drop edge sets touching
            # the deleted classes.
            self._drop_edge_sets({i.cls for i in event.instances})
        elif kind in ("link", "unlink"):
            a, b = event.instances
            assoc = self.graph.schema.resolve(a.cls, b.cls, event.association)
            cached = self._edge_sets.get(assoc.key)
            if cached is not None:
                pattern = Pattern.from_edges((inter(a, b),))
                patterns = (
                    cached.patterns | {pattern}
                    if kind == "link"
                    else cached.patterns - {pattern}
                )
                self._edge_sets[assoc.key] = AssociationSet(patterns)
        # "update" changes values only; identity-based indexes are unaffected.

    def _drop_edge_sets(self, classes: set[str]) -> None:
        stale = [
            key
            for key in self._edge_sets
            if key[0] in classes or key[1] in classes
        ]
        for key in stale:
            del self._edge_sets[key]

    def reset(self) -> None:
        """Drop every cached structure (out-of-band mutation detected)."""
        self._extent_sets.clear()
        self._edge_sets.clear()

    def __str__(self) -> str:
        return (
            f"IndexManager({len(self._extent_sets)} extent set(s), "
            f"{len(self._edge_sets)} edge set(s))"
        )
