"""Typed attribute columns and compiled A-Select predicate masks.

Predicates over compact regions used to decode every candidate pattern
back to a :class:`~repro.core.pattern.Pattern` and run
``Predicate.evaluate`` one object at a time — full interpreter cost per
pattern.  This module interns attribute values into *typed columns* keyed
by the arena's dense vertex ids and lowers predicate trees to column-wise
**selection bitmasks**, so a σ over a class extent becomes a handful of
dict probes, bisects and big-int boolean ops instead of a Python loop of
``Pattern`` allocations.

Layout
------
One :class:`Column` per class (an instance of a primitive class carries
exactly one self-describing value, so per-(class, attribute) collapses to
per-class):

* ``kind == "int"``   — ``array('q')`` (bools stored as ints; equality
  and ordering agree, so semantics are preserved);
* ``kind == "float"`` — ``array('d')`` (NaN forces object kind: boxing a
  C double loses the identity that ``in``-membership checks);
* ``kind == "str"``   — dictionary-encoded codes in ``array('q')`` plus a
  code↔string table;
* ``kind == "object"``— plain list of the original values (mixed types,
  big ints, NaN, arbitrary objects);
* ``kind is None``    — no non-None value seen yet.

A validity bitmask (``bytearray``, bit per row) marks non-None rows and a
liveness bitmask marks rows whose instance has not been deleted.  Rows
are append-only within a column generation; deletes only clear the live
bit (selection masks are intersected with the operand's compact keys, so
dead vids drop out for free).  Columns are patched incrementally from the
same mutation-event stream that patches the arena, and the arena's
version-guard :meth:`PatternArena.reset` drops the whole store.

Compilation
-----------
:func:`compile_select` lowers a predicate tree over one class to a small
program — ``and``/``or``/``not`` combinators over *leaf* comparisons —
whose evaluation produces a big-int bitmask over the column's rows.
Supported leaves: ``ClassValues(cls) op Const`` (either order), IN-lists
(``ClassValues(cls) in ValueUnion(Const, ...)`` and the mirrored form),
and const-only comparisons (folded at compile time).  Anything else —
``Apply``, ``Callback``, ``ClassInstances``, comparisons between two
column references — returns ``None`` and the planner falls back to the
object path.  The compiled program replicates ``Comparison.evaluate``'s
exact semantics on singleton patterns: existential/universal quantifiers,
``TypeError``-as-False for unordered operands, ``None`` value handling,
and the list-membership identity shortcut of the ``in`` operator.
"""

from __future__ import annotations

import operator
import threading
from array import array
from functools import lru_cache
from typing import Any, Iterable

from repro.core.expression import ClassExtent, Expr, Select
from repro.core.predicates import (
    And,
    ClassValues,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    TruePredicate,
    ValueExpr,
    ValueUnion,
)

__all__ = [
    "Column",
    "ColumnStore",
    "compile_select",
    "compiled_select_probe",
]

#: byte → tuple of set bit positions; drives mask → row decoding.
_BITS = tuple(
    tuple(i for i in range(8) if byte >> (i & 7) & 1) for byte in range(256)
)

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

_ORDERED = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _clean(value: Any) -> bool:
    """Whether fast-path index structures handle ``value`` exactly.

    Builtin scalars with faithful ``repr`` and hash-consistent equality;
    NaN is excluded (``x != x`` breaks dict/bisect lookups).
    """
    if value is None:
        return True
    t = type(value)
    if t is float:
        return value == value
    return t is int or t is str or t is bool


def _mask_of_rows(rows: Iterable[int], nbytes: int) -> int:
    buf = bytearray(nbytes)
    for r in rows:
        buf[r >> 3] |= 1 << (r & 7)
    return int.from_bytes(buf, "little")


class Column:
    """One class's attribute values in typed columnar form."""

    __slots__ = (
        "cls",
        "kind",
        "vids",
        "row_of",
        "data",
        "dict_codes",
        "dict_values",
        "valid",
        "live",
        "version",
        "_boxed",
        "_groups",
        "_sorted",
        "_valid_mask",
        "_leaf_masks",
    )

    def __init__(self, cls: str) -> None:
        self.cls = cls
        self.kind: str | None = None
        self.vids: list[int] = []  # row → vertex id
        self.row_of: dict[int, int] = {}  # vertex id → row
        self.data: Any = None
        self.dict_codes: dict[str, int] | None = None
        self.dict_values: list[str] | None = None
        self.valid = bytearray()  # bit r set ⇔ row r holds a non-None value
        self.live = bytearray()  # bit r set ⇔ row r's instance not deleted
        self.version = 0
        self._boxed: list | None = None
        self._groups: dict | None = None
        self._sorted: tuple[list, list] | None = None
        self._valid_mask: int | None = None
        self._leaf_masks: dict = {}

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def upsert(self, vid: int, value: Any, revive: bool = True) -> None:
        """Insert or overwrite the value of ``vid`` (and mark it live)."""
        row = self.row_of.get(vid)
        if row is None:
            row = len(self.vids)
            self.vids.append(vid)
            self.row_of[vid] = row
            if row >> 3 >= len(self.valid):
                self.valid.append(0)
                self.live.append(0)
            if self.kind is not None:
                self._append_placeholder()
        if revive:
            self.live[row >> 3] |= 1 << (row & 7)
        self._store(row, value)
        self._touch()

    def kill(self, vid: int) -> None:
        """Clear the live bit of ``vid`` (deleted instance)."""
        row = self.row_of.get(vid)
        if row is not None:
            self.live[row >> 3] &= ~(1 << (row & 7)) & 0xFF
            self._touch()

    def _touch(self) -> None:
        self.version += 1
        self._boxed = None
        self._groups = None
        self._sorted = None
        self._valid_mask = None
        self._leaf_masks.clear()

    def _append_placeholder(self) -> None:
        if self.kind == "int":
            self.data.append(0)
        elif self.kind == "float":
            self.data.append(0.0)
        elif self.kind == "str":
            self.data.append(0)
        elif self.kind == "object":
            self.data.append(None)

    def _store(self, row: int, value: Any) -> None:
        if value is None:
            self.valid[row >> 3] &= ~(1 << (row & 7)) & 0xFF
            if self.kind == "object":
                # boxed() aliases ``data`` for object columns, so the slot
                # itself must go back to None or scans would keep matching
                # the overwritten value.
                self.data[row] = None
            return
        if self.kind is None:
            self._init_kind(value)
        kind = self.kind
        t = type(value)
        if kind == "int":
            if (t is int or t is bool) and _INT64_MIN <= value <= _INT64_MAX:
                self.data[row] = int(value)
            else:
                self._promote_object()
                self.data[row] = value
        elif kind == "float":
            if t is float and value == value:
                self.data[row] = value
            else:
                self._promote_object()
                self.data[row] = value
        elif kind == "str":
            if t is str:
                code = self.dict_codes.get(value)
                if code is None:
                    code = len(self.dict_values)
                    self.dict_values.append(value)
                    self.dict_codes[value] = code
                self.data[row] = code
            else:
                self._promote_object()
                self.data[row] = value
        else:  # object
            self.data[row] = value
        self.valid[row >> 3] |= 1 << (row & 7)

    def _init_kind(self, value: Any) -> None:
        n = len(self.vids)
        t = type(value)
        if (t is int or t is bool) and _INT64_MIN <= value <= _INT64_MAX:
            self.kind = "int"
            self.data = array("q", bytes(8 * n))
        elif t is float and value == value:
            self.kind = "float"
            self.data = array("d", bytes(8 * n))
        elif t is str:
            self.kind = "str"
            self.data = array("q", bytes(8 * n))
            self.dict_codes = {}
            self.dict_values = []
        else:
            self.kind = "object"
            self.data = [None] * n

    def _promote_object(self) -> None:
        """A value the typed layout cannot hold arrived: box everything.

        The boxed cache may predate a row ``upsert`` just appended (caches
        are dropped after the store, not before), so rebuild it fresh.
        """
        self._boxed = None
        self.data = self.boxed()
        self.kind = "object"
        self.dict_codes = self.dict_values = None
        self._boxed = None

    # ------------------------------------------------------------------
    # reads (lazily built, dropped on every write)
    # ------------------------------------------------------------------

    def boxed(self) -> list:
        """Row → Python value (``None`` for missing) — the exact value
        sequence the object path's ``graph.value`` calls would see."""
        out = self._boxed
        if out is None:
            n = len(self.vids)
            kind = self.kind
            if kind == "object":
                out = self.data
            elif kind is None:
                out = [None] * n
            else:
                valid = self.valid
                data = self.data
                if kind == "str":
                    table = self.dict_values
                    out = [
                        table[data[r]] if valid[r >> 3] >> (r & 7) & 1 else None
                        for r in range(n)
                    ]
                else:
                    out = [
                        data[r] if valid[r >> 3] >> (r & 7) & 1 else None
                        for r in range(n)
                    ]
            self._boxed = out
        return out

    def groups(self) -> dict:
        """value → list of rows, over non-None rows (typed kinds only)."""
        g = self._groups
        if g is None:
            g = {}
            for r, v in enumerate(self.boxed()):
                if v is not None:
                    g.setdefault(v, []).append(r)
            self._groups = g
        return g

    def sorted_index(self) -> tuple[list, list]:
        """(sorted values, parallel rows) over non-None rows."""
        s = self._sorted
        if s is None:
            pairs = sorted(
                (v, r) for r, v in enumerate(self.boxed()) if v is not None
            )
            s = ([v for v, _ in pairs], [r for _, r in pairs])
            self._sorted = s
        return s

    @property
    def nrows(self) -> int:
        return len(self.vids)

    def full_mask(self) -> int:
        return (1 << len(self.vids)) - 1

    def valid_mask(self) -> int:
        m = self._valid_mask
        if m is None:
            m = int.from_bytes(bytes(self.valid), "little")
            self._valid_mask = m
        return m

    def live_values(self) -> list:
        """Values of live rows — the stats builders' column scan."""
        live = self.live
        return [
            v
            for r, v in enumerate(self.boxed())
            if live[r >> 3] >> (r & 7) & 1
        ]

    def vids_for_mask(self, mask: int) -> frozenset[int]:
        """Decode a row bitmask to the vertex ids of its set rows."""
        if mask == 0:
            return frozenset()
        vids = self.vids
        out = []
        base = 0
        for byte in mask.to_bytes((mask.bit_length() + 7) // 8, "little"):
            if byte:
                for bit in _BITS[byte]:
                    out.append(vids[base + bit])
            base += 8
        return frozenset(out)

    # ------------------------------------------------------------------
    # leaf evaluation
    # ------------------------------------------------------------------

    def leaf_mask(self, op: str, quantifier: str, consts: tuple, mirrored: bool) -> int:
        """Row mask of one compiled comparison leaf.

        Mirrors ``Comparison.evaluate`` on a singleton pattern: the column
        side contributes exactly one value per row, the const side the
        tuple ``consts``; ``exists`` ORs the per-const results, ``forall``
        ANDs them.
        """
        if not consts:
            return 0
        cacheable = self.kind != "object" and all(_clean(c) for c in consts)
        key = None
        if cacheable:
            key = (
                op,
                quantifier,
                mirrored,
                tuple((type(c).__name__, repr(c)) for c in consts),
            )
            cached = self._leaf_masks.get(key)
            if cached is not None:
                return cached
        if op == "in" and not mirrored:
            # evaluate: results = [v in pool] — one result per row, so the
            # quantifier is irrelevant.
            if cacheable and self.kind is not None:
                mask = 0
                for c in consts:
                    mask |= self._eq_mask(c)
            else:
                pool = list(consts)
                nbytes = (len(self.vids) + 7) >> 3
                mask = _mask_of_rows(
                    (r for r, v in enumerate(self.boxed()) if v in pool), nbytes
                )
        else:
            mask = None
            for c in consts:
                m = self._cmp_mask(op, c, mirrored)
                if mask is None:
                    mask = m
                elif quantifier == "exists":
                    mask |= m
                else:
                    mask &= m
            if mask is None:  # pragma: no cover - consts checked above
                mask = 0
        if key is not None:
            self._leaf_masks[key] = mask
        return mask

    def _eq_mask(self, c: Any) -> int:
        """Rows with value == c (typed kinds, clean const)."""
        if c is None:
            return self.full_mask() & ~self.valid_mask()
        nbytes = (len(self.vids) + 7) >> 3
        return _mask_of_rows(self.groups().get(c, ()), nbytes)

    def _cmp_mask(self, op: str, c: Any, mirrored: bool) -> int:
        kind = self.kind
        fast = kind != "object" and _clean(c)
        if fast:
            if op == "=":
                return self._eq_mask(c)
            if op == "!=":
                if c is None:
                    return self.valid_mask()
                return self.full_mask() & ~self._eq_mask(c)
            if op == "in":  # mirrored element: c is v or v == c ⇔ v == c here
                return self._eq_mask(c)
            # ordered op: None / cross-type comparisons raise TypeError →
            # False for every row; same-type bisect otherwise.
            if c is None or kind is None:
                return 0
            comparable = (
                type(c) is str if kind == "str" else not isinstance(c, str)
            )
            if not comparable:
                return 0
            return self._bisect_mask(_FLIP[op] if mirrored else op, c)
        return self._scan_mask(op, c, mirrored)

    def _bisect_mask(self, op: str, c: Any) -> int:
        from bisect import bisect_left, bisect_right

        vals, rows = self.sorted_index()
        if op in ("<", ">="):
            idx = bisect_left(vals, c)
        else:
            idx = bisect_right(vals, c)
        selected = rows[:idx] if op in ("<", "<=") else rows[idx:]
        return _mask_of_rows(selected, (len(self.vids) + 7) >> 3)

    def _scan_mask(self, op: str, c: Any, mirrored: bool) -> int:
        """Generic per-row scan replicating evaluate's exact semantics."""
        buf = bytearray((len(self.vids) + 7) >> 3)
        if op == "in":  # mirrored single-element membership: c in [v]
            for r, v in enumerate(self.boxed()):
                if c is v or v == c:
                    buf[r >> 3] |= 1 << (r & 7)
        else:
            compare = _ORDERED.get(op) or (
                operator.eq if op == "=" else operator.ne
            )
            if mirrored:
                for r, v in enumerate(self.boxed()):
                    try:
                        hit = bool(compare(c, v))
                    except TypeError:
                        hit = False
                    if hit:
                        buf[r >> 3] |= 1 << (r & 7)
            else:
                for r, v in enumerate(self.boxed()):
                    try:
                        hit = bool(compare(v, c))
                    except TypeError:
                        hit = False
                    if hit:
                        buf[r >> 3] |= 1 << (r & 7)
        return int.from_bytes(buf, "little")

    def __repr__(self) -> str:
        return f"Column({self.cls!r}, kind={self.kind!r}, {len(self.vids)} row(s))"


# ----------------------------------------------------------------------
# predicate compilation
# ----------------------------------------------------------------------

_TRUE = ("true",)
_FALSE = ("false",)


def compile_select(predicate: Predicate, cls: str):
    """Lower ``predicate`` over singleton patterns of ``cls`` to a mask
    program, or ``None`` when any part is uncompilable."""
    try:
        return _compile_cached(predicate, cls)
    except TypeError:  # unhashable predicate parts: compile uncached
        return _compile(predicate, cls)


@lru_cache(maxsize=512)
def _compile_cached(predicate: Predicate, cls: str):
    return _compile(predicate, cls)


def _compile(predicate: Predicate, cls: str):
    if isinstance(predicate, TruePredicate):
        return _TRUE
    if isinstance(predicate, Comparison):
        return _compile_comparison(predicate, cls)
    if isinstance(predicate, (And, Or)):
        conj = isinstance(predicate, And)
        absorb, identity = (_FALSE, _TRUE) if conj else (_TRUE, _FALSE)
        children = []
        for child in predicate.operands:
            node = _compile(child, cls)
            if node is None:
                return None
            if node == absorb:
                return absorb
            if node != identity:
                children.append(node)
        if not children:
            return identity
        if len(children) == 1:
            return children[0]
        return ("and" if conj else "or", tuple(children))
    if isinstance(predicate, Not):
        node = _compile(predicate.operand, cls)
        if node is None:
            return None
        if node == _TRUE:
            return _FALSE
        if node == _FALSE:
            return _TRUE
        return ("not", node)
    return None  # Callback / unknown predicate: object path only


def _classify(value: ValueExpr, cls: str):
    """("col",) | ("consts", values) | None (uncompilable side).

    ``ClassValues`` of another class yields no values over a singleton
    pattern of ``cls`` — it contributes an empty const list, exactly like
    ``evaluate`` would see.
    """
    if isinstance(value, Const):
        return ("consts", (value.value,))
    if isinstance(value, ClassValues):
        if value.cls == cls:
            return ("col",)
        return ("consts", ())
    if isinstance(value, ValueUnion):
        out: list = []
        for operand in value.operands:
            part = _classify(operand, cls)
            if part is None or part[0] == "col":
                return None
            out.extend(part[1])
        return ("consts", tuple(out))
    return None


def _compile_comparison(p: Comparison, cls: str):
    left = _classify(p.left, cls)
    right = _classify(p.right, cls)
    if left is None or right is None:
        return None
    if left[0] == "col" and right[0] == "col":
        return None
    if left[0] == "consts" and right[0] == "consts":
        return _fold_const(p.op, p.quantifier, left[1], right[1])
    mirrored = right[0] == "col"
    consts = left[1] if mirrored else right[1]
    if not consts:
        # evaluate: an empty operand side yields no results → False
        # (non-in), an empty pool → membership False (in).
        return _FALSE
    return ("leaf", p.op, p.quantifier, consts, mirrored)


def _fold_const(op: str, quantifier: str, lefts: tuple, rights: tuple):
    """Constant-fold a comparison with no column reference, replicating
    evaluate exactly.  Exotic operands whose comparison raises are left
    to the object path (which raises identically at run time)."""
    try:
        if op == "in":
            pool = list(rights)
            results = [l in pool for l in lefts]
        else:
            compare = _ORDERED.get(op) or (
                operator.eq if op == "=" else operator.ne
            )
            results = []
            for l in lefts:
                for r in rights:
                    try:
                        results.append(bool(compare(l, r)))
                    except TypeError:
                        results.append(False)
        if not results:
            return _FALSE
        hit = any(results) if quantifier == "exists" else all(results)
    except Exception:
        return None
    return _TRUE if hit else _FALSE


def compiled_select_probe(expr: Expr) -> str | None:
    """The class of a Select answerable by compiled column masks.

    Matches ``σ(X)[...]`` over a bare class extent whose predicate
    compiles; returns the class name, else ``None``.
    """
    if not isinstance(expr, Select) or not isinstance(expr.operand, ClassExtent):
        return None
    cls = expr.operand.name
    if compile_select(expr.predicate, cls) is None:
        return None
    return cls


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------


class ColumnStore:
    """Lazily materialized typed columns hanging off one arena.

    Thread-safe under the executor's branch scheduler: one re-entrant
    lock covers materialization, event patching and mask evaluation (the
    lazily rebuilt per-column index structures are not safe to build
    concurrently).
    """

    def __init__(self, arena, metrics=None) -> None:
        self.arena = arena
        self.graph = arena.graph
        self._cols: dict[str, Column] = {}
        self._lock = threading.RLock()
        if metrics is not None:
            self._g_materialized = metrics.gauge(
                "repro_columns_materialized",
                "Classes with a materialized typed attribute column",
            )
        else:
            self._g_materialized = None

    def column(self, cls: str) -> Column:
        """The (materializing-on-first-use) column of ``cls``."""
        col = self._cols.get(cls)
        if col is None:
            with self._lock:
                col = self._cols.get(cls)
                if col is None:
                    col = Column(cls)
                    vid = self.arena.vid
                    value = self.graph.value
                    for iid in sorted(self.graph.extent(cls)):
                        col.upsert(vid(iid), value(iid))
                    self._cols[cls] = col
                    if self._g_materialized is not None:
                        self._g_materialized.set(len(self._cols))
        return col

    def is_materialized(self, cls: str) -> bool:
        return cls in self._cols

    def values_snapshot(self, cls: str) -> list | None:
        """Live values of ``cls`` straight from its column — the same
        multiset ``[graph.value(i) for i in extent]`` would produce —
        or ``None`` when the column is not materialized."""
        col = self._cols.get(cls)
        if col is None:
            return None
        with self._lock:
            return col.live_values()

    def eval_select(self, predicate: Predicate, cls: str) -> frozenset[int] | None:
        """Vertex ids of ``cls`` whose singleton pattern satisfies
        ``predicate``, via compiled masks; ``None`` if uncompilable."""
        program = compile_select(predicate, cls)
        if program is None:
            return None
        with self._lock:
            col = self.column(cls)
            mask = _eval_node(program, col)
            return col.vids_for_mask(mask)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def apply(self, event) -> None:
        """Patch materialized columns from one mutation event.

        The graph is updated before events are emitted, so
        ``graph.value`` reads the post-mutation value.  Classes without a
        materialized column ignore their events — materialization always
        scans the current extent.
        """
        kind = event.kind
        if kind not in ("insert", "update", "delete"):
            return
        for instance in event.instances:
            col = self._cols.get(instance.cls)
            if col is None:
                continue
            with self._lock:
                if kind == "delete":
                    col.kill(self.arena.vid(instance))
                else:
                    col.upsert(
                        self.arena.vid(instance),
                        self.graph.value(instance),
                        revive=(kind == "insert"),
                    )

    def reset(self) -> None:
        """Version-guard reset: vertex ids are being reissued, so every
        column (keyed by vid) is meaningless — drop them all."""
        with self._lock:
            self._cols.clear()
            if self._g_materialized is not None:
                self._g_materialized.set(0)

    def __str__(self) -> str:
        return f"ColumnStore({len(self._cols)} column(s))"


def _eval_node(node, col: Column) -> int:
    tag = node[0]
    if tag == "leaf":
        return col.leaf_mask(node[1], node[2], node[3], node[4])
    if tag == "and":
        mask = col.full_mask()
        for child in node[1]:
            mask &= _eval_node(child, col)
            if not mask:
                break
        return mask
    if tag == "or":
        mask = 0
        for child in node[1]:
            mask |= _eval_node(child, col)
        return mask
    if tag == "not":
        return col.full_mask() & ~_eval_node(node[1], col)
    if tag == "true":
        return col.full_mask()
    return 0  # "false"
