"""Memoizing sub-plan cache with event-driven invalidation.

Expression nodes are immutable and hashable with structural equality, so
a (sub)expression is its own cache key.  Two refinements on top of that:

* **canonicalization** — A-Union and A-Intersect are commutative, so
  operands are sorted before keying; ``a + b`` and ``b + a`` share one
  cache entry;
* **dependency tracking** — each entry remembers the set of classes its
  expression reads (extents, association ends, predicate value reads).
  A mutation event names the classes it touched; entries whose
  dependency set intersects are dropped.  Predicates the analyzer cannot
  see through (callbacks, ``Apply`` functions) poison the set with
  ``"*"``, meaning "invalidate on any mutation".

The cache never observes time: correctness rests entirely on the owning
executor feeding it every mutation event (and resetting it when the
graph's ``version`` counter reveals an out-of-band write).  The arena's
:class:`~repro.exec.columns.ColumnStore` rides the same event stream, so
a cached compact result and the column masks that produced it can never
disagree about which mutations they have seen.

The entry table is guarded by a lock: the query service runs many
queries against one shared executor from worker threads, so ``get`` /
``put`` race each other (and ``invalidate_classes`` iterates the table
while concurrent ``put`` calls would otherwise resize it mid-walk).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.assoc_set import AssociationSet
from repro.core.expression import (
    Associate,
    ClassExtent,
    Complement,
    Difference,
    Divide,
    Expr,
    Intersect,
    Literal,
    NonAssociate,
    Project,
    Select,
    Union,
)
from repro.obs.metrics import MetricsRegistry
from repro.optimizer.analysis import predicate_classes

__all__ = [
    "PlanCache",
    "PlanEntry",
    "canonicalize",
    "expr_dependencies",
    "expr_value_dependencies",
]

#: Dependency wildcard: "this entry may read anything" (opaque predicate).
ANY = "*"


def canonicalize(expr: Expr) -> Expr:
    """A canonical representative of the expression's equivalence class.

    Only syntactic commutativity is normalized (Union and A-Intersect
    operands ordered by their rendering); deeper algebraic equivalences
    are the optimizer's business, not the cache's.
    """
    if isinstance(expr, Union):
        left, right = canonicalize(expr.left), canonicalize(expr.right)
        if str(left) > str(right):
            left, right = right, left
        return Union(left, right)
    if isinstance(expr, Intersect):
        left, right = canonicalize(expr.left), canonicalize(expr.right)
        if str(left) > str(right):
            left, right = right, left
        return Intersect(left, right, expr.classes)
    if isinstance(expr, (Associate, Complement, NonAssociate)):
        return type(expr)(
            canonicalize(expr.left), canonicalize(expr.right), expr.spec
        )
    if isinstance(expr, Difference):
        return Difference(canonicalize(expr.left), canonicalize(expr.right))
    if isinstance(expr, Divide):
        return Divide(canonicalize(expr.left), canonicalize(expr.right), expr.classes)
    if isinstance(expr, Select):
        return Select(canonicalize(expr.operand), expr.predicate)
    if isinstance(expr, Project):
        return Project(canonicalize(expr.operand), expr.templates, expr.links)
    return expr  # ClassExtent / Literal — already canonical


def expr_dependencies(expr: Expr) -> frozenset[str]:
    """Classes whose state the expression's result depends on.

    Collected over the *whole* tree (a Divide's divisor classes matter
    even though they never appear in the result).  Contains :data:`ANY`
    when a predicate is opaque to static analysis.
    """
    out: set[str] = set()
    _collect(expr, out)
    return frozenset(out)


def _collect(expr: Expr, out: set[str]) -> None:
    if isinstance(expr, ClassExtent):
        out.add(expr.name)
    elif isinstance(expr, Literal):
        pass  # a materialized set: evaluation ignores the graph entirely
    elif isinstance(expr, Select):
        out.update(predicate_classes(expr.predicate))
        _collect(expr.operand, out)
    elif isinstance(expr, Project):
        _collect(expr.operand, out)
    else:
        for child in expr.children():
            _collect(child, out)


def expr_value_dependencies(expr: Expr) -> frozenset[str]:
    """Classes whose *values* (not structure) the expression reads.

    Every operator except A-Select produces patterns from extents and
    edges alone — an attribute-only ``update`` event cannot change its
    result.  Only classes a predicate reads values of (plus :data:`ANY`
    for opaque predicates) make an entry stale under an update, so
    update events invalidate against this narrower set.
    """
    out: set[str] = set()
    _collect_values(expr, out)
    return frozenset(out)


def _collect_values(expr: Expr, out: set[str]) -> None:
    if isinstance(expr, Select):
        out.update(predicate_classes(expr.predicate))
        _collect_values(expr.operand, out)
    else:
        for child in expr.children():
            _collect_values(child, out)


@dataclass(frozen=True)
class PlanEntry:
    """One remembered *plan choice* (not a result) for a canonical query.

    ``expr`` is the optimized expression chosen for the query,
    ``estimate`` the :class:`~repro.optimizer.cost.Estimate` it was
    chosen with, ``stats_version`` the statistics-catalog version the
    estimate was computed under, and ``deps`` the class dependency set —
    a stats refresh touching any of those classes drops the entry so the
    next execution re-plans with the fresher numbers.
    """

    expr: Expr
    estimate: object
    stats_version: int
    deps: frozenset[str]


class PlanCache:
    """Canonical-expression → result cache, invalidated by class.

    A second, independent table remembers *plan choices*
    (:class:`PlanEntry`): which optimized expression the adaptive planner
    picked for a canonical query and under which statistics version.
    Results survive a stats refresh (the data did not change), but plan
    choices do not — they were ranked with numbers that are now stale.
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        # value is an AssociationSet (decoded) or a CompactSet (arena-encoded);
        # each entry carries (result, class deps, value-only deps) — the
        # third set gates invalidation for attribute-only update events.
        self._entries: dict[Expr, tuple[object, frozenset[str], frozenset[str]]] = {}
        self._plans: dict[Expr, PlanEntry] = {}
        self._lock = threading.Lock()
        self.metrics = metrics
        if metrics is not None:
            self._m_hits = metrics.counter(
                "repro_plan_cache_hits_total", "Sub-plan cache hits"
            )
            self._m_misses = metrics.counter(
                "repro_plan_cache_misses_total", "Sub-plan cache misses"
            )
            self._m_invalidations = metrics.counter(
                "repro_plan_cache_invalidations_total",
                "Cache entries dropped by mutation events",
            )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Expr, kind: type | None = None) -> AssociationSet | None:
        """The cached result for a canonical key, counting hit or miss.

        ``kind`` guards the entry's representation: the same canonical
        subexpression may be cached decoded (an ``AssociationSet``, by a
        compact-region root or a reference-kernel node) in one query and
        compact (a ``CompactSet``, by a compact-region interior) in
        another.  A representation mismatch counts as a miss and the
        caller's subsequent ``put`` replaces the entry.
        """
        with self._lock:
            entry = self._entries.get(key)
        if entry is not None and kind is not None and not isinstance(entry[0], kind):
            entry = None
        if self.metrics is not None:
            (self._m_hits if entry is not None else self._m_misses).inc()
        return entry[0] if entry is not None else None

    def put(self, key: Expr, result, deps: frozenset[str]) -> None:
        value_deps = expr_value_dependencies(key)
        with self._lock:
            self._entries[key] = (result, deps, value_deps)

    # ------------------------------------------------------------------
    # plan choices
    # ------------------------------------------------------------------

    def get_plan(self, key: Expr) -> PlanEntry | None:
        """The remembered plan choice for a canonical query, if any."""
        with self._lock:
            return self._plans.get(key)

    def put_plan(self, key: Expr, entry: PlanEntry) -> None:
        with self._lock:
            self._plans[key] = entry

    def drop_plan(self, key: Expr) -> bool:
        """Forget one plan choice (adaptive re-planning after a q-error)."""
        with self._lock:
            return self._plans.pop(key, None) is not None

    def invalidate_stats(self, classes) -> int:
        """Drop plan choices depending on any of ``classes``.

        Called when the statistics catalog refreshes those classes: the
        choices were ranked with numbers that no longer describe the
        data.  Cached *results* are untouched — they depend on the data,
        which a stats refresh does not change.
        """
        touched = set(classes)
        with self._lock:
            stale = [
                key
                for key, entry in self._plans.items()
                if ANY in entry.deps or entry.deps & touched
            ]
            for key in stale:
                del self._plans[key]
        return len(stale)

    def invalidate_classes(self, classes, kind: str | None = None) -> int:
        """Drop entries depending on any of ``classes``; return the count.

        ``kind`` is the mutation-event kind, when the caller knows it.
        An ``"update"`` event changes attribute values only — patterns
        (extents, edges) are untouched — so it checks each entry's
        value-dependency set instead of the full class-dependency set:
        plans that reach a class solely through edges survive.  Opaque
        (:data:`ANY`) entries always drop.
        """
        touched = set(classes)
        values_only = kind == "update"
        with self._lock:
            stale = [
                key
                for key, (_, deps, value_deps) in self._entries.items()
                if ANY in deps
                or (value_deps if values_only else deps) & touched
            ]
            for key in stale:
                del self._entries[key]
        if stale and self.metrics is not None:
            self._m_invalidations.inc(len(stale))
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._plans.clear()
        if dropped and self.metrics is not None:
            self._m_invalidations.inc(dropped)

    def __str__(self) -> str:
        return f"PlanCache({len(self._entries)} entr(y/ies))"
