"""Compact execution arena: dense integer ids for IIDs and Edges.

The reference representation pays Python object overhead — tuple hashing
for every :class:`~repro.core.identity.IID`, composite hashing for every
:class:`~repro.core.edges.Edge` — on every set operation inside every
operator.  :class:`PatternArena` interns both onto dense ``int`` domains
so the batch kernels (:mod:`repro.exec.kernels`) can run the A-algebra as
plain integer set algebra, the way hypergraph mappings of the paper's
model do.

Encoding
--------
A compact pattern is either

* a raw ``int`` — the vertex id of a single Inner-pattern ``(a)`` (the
  overwhelmingly common leaf case: class extents), or
* a pair ``(vids, eids)`` of ``frozenset[int]`` — the vertex ids and edge
  ids of a multi-vertex pattern.

A :class:`CompactSet` is a frozenset of such keys.  Both forms hash and
compare as fast as CPython can make small ints and int-frozensets go, and
the encoding is trivially serializable/partitionable for later sharding
work.

Maintenance
-----------
The arena is **append-only**: ids are never reused, so compact sets held
by the :class:`~repro.exec.cache.PlanCache` stay valid across unrelated
mutations.  Derived caches (compact extents, per-association adjacency,
compact edge-pattern sets) are maintained incrementally from the same
mutation events :class:`~repro.exec.indexes.IndexManager` consumes, and
the same graph-version guard applies: the owning executor calls
:meth:`reset` when an out-of-band write is detected, which drops the
interning tables entirely (the executor clears the plan cache in the
same breath, so no stale ids can survive).
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator, Union

from repro.core.assoc_set import AssociationSet
from repro.core.edges import Edge, Polarity
from repro.core.identity import IID
from repro.core.pattern import Pattern
from repro.errors import PatternError
from repro.exec.columns import ColumnStore
from repro.objects.graph import ObjectGraph
from repro.schema.graph import Association

__all__ = ["CompactKey", "CompactSet", "PatternArena"]

#: A compact pattern: a vertex id, or (vertex-id set, edge-id set).
CompactKey = Union[int, "tuple[frozenset[int], frozenset[int]]"]

_EMPTY_FROZEN: frozenset = frozenset()


class CompactSet:
    """An association-set in compact (arena-relative) encoding.

    Thin immutable wrapper over a frozenset of compact keys — the kernels
    read ``.keys`` directly.  Only meaningful relative to the arena that
    produced it; the executor's version guard guarantees arena and set
    never drift apart.
    """

    __slots__ = ("keys",)

    def __init__(self, keys: frozenset) -> None:
        self.keys = keys

    @classmethod
    def empty(cls) -> "CompactSet":
        return cls(_EMPTY_FROZEN)

    def __len__(self) -> int:
        return len(self.keys)

    def __iter__(self) -> Iterator[CompactKey]:
        return iter(self.keys)

    def __bool__(self) -> bool:
        return bool(self.keys)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompactSet):
            return NotImplemented
        return self.keys == other.keys

    def __hash__(self) -> int:
        return hash(self.keys)

    def __repr__(self) -> str:
        return f"CompactSet({len(self.keys)} patterns)"


def key_parts(key: CompactKey) -> tuple[frozenset[int], frozenset[int]]:
    """Normalize a compact key to its (vids, eids) pair."""
    if isinstance(key, int):
        return frozenset((key,)), _EMPTY_FROZEN
    return key


def make_key(vids: frozenset, eids: frozenset) -> CompactKey:
    """Canonical compact key: collapse edge-free singletons to a raw int."""
    if not eids and len(vids) == 1:
        return next(iter(vids))
    return (vids, eids)


class PatternArena:
    """Interner + derived compact structures for one object graph."""

    def __init__(self, graph: ObjectGraph, metrics=None) -> None:
        self.graph = graph
        # --- interning tables (append-only) ---
        self._vids: dict[IID, int] = {}
        self._iids: list[IID] = []
        self._vcls: list[int] = []  # class id per vertex id
        self._cls_ids: dict[str, int] = {}
        self._cls_names: list[str] = []
        # class id → every vid ever interned for it (liveness-agnostic:
        # the class of a vid never changes); kernels intersect against the
        # frozen snapshots to classify vids at C speed
        self._cls_vids: dict[int, set[int]] = {}
        self._cls_vids_frozen: dict[int, frozenset[int]] = {}
        self._eids: dict[tuple[int, int, Polarity], int] = {}
        self._edges: list[Edge] = []
        # Interning must be safe under the branch scheduler's thread pool:
        # readers use plain dict lookups (atomic under the GIL); writers
        # take the lock, re-check, and publish the dict entry only after
        # the list append so a winning read always finds consistent state.
        self._lock = threading.RLock()
        # Decoded-pattern memo: ids are append-only, so a compact key
        # denotes the same Pattern for the arena's whole lifetime — repeat
        # decodes (warm query mixes sharing result patterns) become dict
        # hits against frozensets whose hashes are already cached.  Holds
        # at most the patterns already materialized for callers; dropped
        # wholesale on reset.
        self._decoded: dict[CompactKey, Pattern] = {}
        # Whole-set decode memo, same append-only rationale: a compact key
        # set denotes one AssociationSet for the arena's lifetime, so a
        # warm query mix pays the root-boundary decode only once per
        # distinct result.  Frozenset hashes are cached, so repeat lookups
        # cost one dict probe.
        self._decoded_sets: dict[frozenset, AssociationSet] = {}
        # --- derived caches (event-maintained, per-query reads) ---
        self._extent_csets: dict[str, CompactSet] = {}
        # class → (extent keys the mask was built from, live-extent bitmask);
        # the snapshot identity check makes the cache self-invalidating —
        # extent patches replace the CompactSet, so a stale mask can never
        # be read through a fresh extent
        self._cls_masks: dict[str, tuple[frozenset, int]] = {}
        self._edge_csets: dict[tuple[str, str, str], CompactSet] = {}
        self._adjacency: dict[tuple[str, str, str], dict[int, tuple[int, ...]]] = {}
        self._adj_masks: dict[tuple[str, str, str], dict[int, int]] = {}
        #: typed attribute columns keyed by this arena's vertex ids
        self.columns = ColumnStore(self, metrics)
        # --- metrics ---
        if metrics is not None:
            self._m_encoded = metrics.counter(
                "repro_compact_encode_total",
                "Patterns encoded into the compact arena representation",
            )
            self._m_decoded = metrics.counter(
                "repro_compact_decode_total",
                "Compact patterns decoded back to Pattern objects",
            )
            self._g_vertices = metrics.gauge(
                "repro_arena_vertices", "IIDs interned in the pattern arena"
            )
            self._g_edges = metrics.gauge(
                "repro_arena_edges", "Edges interned in the pattern arena"
            )
        else:
            self._m_encoded = self._m_decoded = None
            self._g_vertices = self._g_edges = None

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------

    def cls_id(self, cls: str) -> int:
        cid = self._cls_ids.get(cls)
        if cid is None:
            with self._lock:
                cid = self._cls_ids.get(cls)
                if cid is None:
                    cid = len(self._cls_names)
                    self._cls_names.append(cls)
                    self._cls_ids[cls] = cid
        return cid

    def vid(self, iid: IID) -> int:
        v = self._vids.get(iid)
        if v is None:
            with self._lock:
                v = self._vids.get(iid)
                if v is None:
                    v = len(self._iids)
                    cid = self.cls_id(iid.cls)
                    self._iids.append(iid)
                    self._vcls.append(cid)
                    self._cls_vids.setdefault(cid, set()).add(v)
                    self._cls_vids_frozen.pop(cid, None)
                    self._vids[iid] = v
                    if self._g_vertices is not None:
                        self._g_vertices.set(v + 1)
        return v

    def eid(self, edge: Edge) -> int:
        """Intern an existing Edge (encode path).

        The original object is kept for decode, so a derived edge round-
        trips with its ``derived`` flag intact (the flag is provenance,
        not identity — see :mod:`repro.core.edges`).
        """
        u, v = self.vid(edge.u), self.vid(edge.v)
        if v < u:
            u, v = v, u
        key = (u, v, edge.polarity)
        e = self._eids.get(key)
        if e is None:
            with self._lock:
                e = self._eids.get(key)
                if e is None:
                    e = len(self._edges)
                    self._edges.append(edge)
                    self._eids[key] = e
                    if self._g_edges is not None:
                        self._g_edges.set(e + 1)
        return e

    def eid_of_pair(self, u: int, v: int, polarity: Polarity) -> int:
        """Intern the edge between two already-interned vertices.

        This is the kernel-side fast path: no Edge object is built unless
        the edge is new to the arena.
        """
        if u == v:
            # mirrors Edge's self-loop rejection so kernels fail exactly
            # like the reference operators on recursive self-pairs
            raise PatternError(f"an edge cannot connect {self._iids[u]} to itself")
        if v < u:
            u, v = v, u
        key = (u, v, polarity)
        e = self._eids.get(key)
        if e is None:
            with self._lock:
                e = self._eids.get(key)
                if e is None:
                    edge = Edge(self._iids[u], self._iids[v], polarity)
                    e = len(self._edges)
                    self._edges.append(edge)
                    self._eids[key] = e
                    if self._g_edges is not None:
                        self._g_edges.set(e + 1)
        return e

    # ------------------------------------------------------------------
    # encode / decode
    # ------------------------------------------------------------------

    def encode_pattern(self, pattern: Pattern) -> CompactKey:
        vertices = pattern.vertices
        if len(vertices) == 1 and not pattern.edges:
            return self.vid(next(iter(vertices)))
        vid = self.vid
        eid = self.eid
        return (
            frozenset(vid(v) for v in vertices),
            frozenset(eid(e) for e in pattern.edges),
        )

    def encode_set(self, aset: AssociationSet) -> CompactSet:
        encode = self.encode_pattern
        keys = frozenset(encode(p) for p in aset)
        if self._m_encoded is not None:
            self._m_encoded.inc(len(keys))
        return CompactSet(keys)

    def decode_key(self, key: CompactKey) -> Pattern:
        pattern = self._decoded.get(key)
        if pattern is None:
            iids = self._iids
            if isinstance(key, int):
                pattern = Pattern.inner(iids[key])
            else:
                vids, eids = key
                edges = self._edges
                pattern = Pattern._from_parts(
                    frozenset(map(iids.__getitem__, vids)),
                    frozenset(map(edges.__getitem__, eids)),
                )
            self._decoded[key] = pattern
        return pattern

    def decode_set(self, cset: CompactSet) -> AssociationSet:
        if self._m_decoded is not None:
            self._m_decoded.inc(len(cset.keys))
        result = self._decoded_sets.get(cset.keys)
        if result is None:
            decode = self.decode_key
            result = AssociationSet.from_frozen(frozenset(map(decode, cset.keys)))
            self._decoded_sets[cset.keys] = result
        return result

    # ------------------------------------------------------------------
    # derived compact structures
    # ------------------------------------------------------------------

    def class_vids(self, cid: int) -> frozenset[int]:
        """Snapshot of every vid interned for class id ``cid``.

        Rebuilt lazily after new interning; within one kernel call the
        snapshot necessarily covers the operands (their vids were interned
        before the kernel started).
        """
        frozen = self._cls_vids_frozen.get(cid)
        if frozen is None:
            with self._lock:
                frozen = frozenset(self._cls_vids.get(cid, ()))
                self._cls_vids_frozen[cid] = frozen
        return frozen

    def extent_cset(self, cls: str) -> CompactSet:
        """The extent of ``cls`` as raw vertex ids, cached across queries."""
        cached = self._extent_csets.get(cls)
        if cached is None:
            with self._lock:
                vid = self.vid
                cached = CompactSet(frozenset(vid(i) for i in self.graph.extent(cls)))
                self._extent_csets[cls] = cached
        return cached

    def class_mask(self, cls: str) -> int:
        """Bitmask of the *live* extent of ``cls`` (bit ``v`` ⇔ vid ``v``).

        Cached against the extent snapshot it was built from, so extent
        patches (insert/delete) invalidate it for free.  NonAssociate's
        retention clause tests set complements; over this mask they become
        single big-int AND-NOTs.
        """
        cset = self.extent_cset(cls)
        cached = self._cls_masks.get(cls)
        if cached is None or cached[0] is not cset.keys:
            mask = 0
            for v in cset.keys:
                mask |= 1 << v
            cached = (cset.keys, mask)
            with self._lock:
                self._cls_masks[cls] = cached
        return cached[1]

    def edge_cset(self, assoc: Association) -> CompactSet:
        """One compact two-vertex pattern per regular edge of ``assoc``."""
        cached = self._edge_csets.get(assoc.key)
        if cached is None:
            with self._lock:
                vid = self.vid
                pair = self.eid_of_pair
                keys = set()
                for a, b in self.graph.edges(assoc):
                    va, vb = vid(a), vid(b)
                    keys.add(
                        (
                            frozenset((va, vb)),
                            frozenset((pair(va, vb, Polarity.REGULAR),)),
                        )
                    )
                cached = CompactSet(frozenset(keys))
                self._edge_csets[assoc.key] = cached
        return cached

    def adjacency(self, assoc: Association) -> dict[int, tuple[int, ...]]:
        """Int-domain adjacency over the regular edges of ``assoc``."""
        adj = self._adjacency.get(assoc.key)
        if adj is None:
            with self._lock:
                vid = self.vid
                tmp: dict[int, list[int]] = {}
                for a, b in self.graph.edges(assoc):
                    va, vb = vid(a), vid(b)
                    tmp.setdefault(va, []).append(vb)
                    if vb != va:
                        tmp.setdefault(vb, []).append(va)
                adj = {v: tuple(ps) for v, ps in tmp.items()}
                self._adjacency[assoc.key] = adj
        return adj

    def adjacency_masks(self, assoc: Association) -> dict[int, int]:
        """Per-vertex partner bitmask (bit ``p`` set ⇔ partner vid ``p``).

        NonAssociate's free-set tests are disjointness checks; over
        bitmasks they become single big-int ANDs.
        """
        masks = self._adj_masks.get(assoc.key)
        if masks is None:
            with self._lock:
                masks = {}
                for v, partners in self.adjacency(assoc).items():
                    m = 0
                    for p in partners:
                        m |= 1 << p
                    masks[v] = m
                self._adj_masks[assoc.key] = masks
        return masks

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def apply(self, event) -> None:
        """Fold one mutation event into the derived compact structures.

        Mirrors :meth:`IndexManager.apply` decision for decision: extents
        patch in place; link/unlink patch the association's adjacency,
        masks, and edge set when cached; deletes and multi-class inserts
        drop the association caches of the touched classes.  The interning
        tables never shrink — ids of deleted instances simply fall out of
        every derived structure.
        """
        kind = event.kind
        if kind == "insert":
            for instance in event.instances:
                cached = self._extent_csets.get(instance.cls)
                if cached is not None:
                    self._extent_csets[instance.cls] = CompactSet(
                        cached.keys | {self.vid(instance)}
                    )
            if len(event.instances) > 1:
                self._drop_assoc_caches({i.cls for i in event.instances})
        elif kind == "delete":
            for instance in event.instances:
                cached = self._extent_csets.get(instance.cls)
                if cached is not None:
                    self._extent_csets[instance.cls] = CompactSet(
                        cached.keys - {self.vid(instance)}
                    )
            self._drop_assoc_caches({i.cls for i in event.instances})
        elif kind in ("link", "unlink"):
            a, b = event.instances
            assoc = self.graph.schema.resolve(a.cls, b.cls, event.association)
            self._patch_assoc(assoc, a, b, add=(kind == "link"))
        # "update" changes values only; identity-based structures are
        # unaffected — but the value columns must be patched.
        self.columns.apply(event)

    def _patch_assoc(self, assoc: Association, a: IID, b: IID, *, add: bool) -> None:
        va, vb = self.vid(a), self.vid(b)
        adj = self._adjacency.get(assoc.key)
        if adj is not None:
            for x, y in ((va, vb), (vb, va)):
                partners = list(adj.get(x, ()))
                if add:
                    if y not in partners:
                        partners.append(y)
                elif y in partners:
                    partners.remove(y)
                adj[x] = tuple(partners)
        masks = self._adj_masks.get(assoc.key)
        if masks is not None:
            for x, y in ((va, vb), (vb, va)):
                if add:
                    masks[x] = masks.get(x, 0) | (1 << y)
                else:
                    masks[x] = masks.get(x, 0) & ~(1 << y)
        cached = self._edge_csets.get(assoc.key)
        if cached is not None:
            if va == vb:
                # a self-link cannot be a pattern edge; drop rather than
                # encode an invalid key (mirrors Edge's rejection)
                del self._edge_csets[assoc.key]
                return
            key = (
                frozenset((va, vb)),
                frozenset((self.eid_of_pair(va, vb, Polarity.REGULAR),)),
            )
            keys = cached.keys | {key} if add else cached.keys - {key}
            self._edge_csets[assoc.key] = CompactSet(keys)

    def _drop_assoc_caches(self, classes: set[str]) -> None:
        for table in (self._edge_csets, self._adjacency, self._adj_masks):
            stale = [k for k in table if k[0] in classes or k[1] in classes]
            for k in stale:
                del table[k]

    def reset(self) -> None:
        """Drop everything, interning tables included.

        Called under the graph-version guard: the events did not explain
        the graph's state, so previously issued ids may describe vertices
        and edges that no longer exist.  The executor clears the plan
        cache in the same pass, so no compact set encoded against the old
        id space survives.
        """
        with self._lock:
            self._vids.clear()
            self._iids.clear()
            self._vcls.clear()
            self._cls_ids.clear()
            self._cls_names.clear()
            self._cls_vids.clear()
            self._cls_vids_frozen.clear()
            self._eids.clear()
            self._edges.clear()
            self._decoded.clear()
            self._decoded_sets.clear()
            self._extent_csets.clear()
            self._cls_masks.clear()
            self._edge_csets.clear()
            self._adjacency.clear()
            self._adj_masks.clear()
            self.columns.reset()
            if self._g_vertices is not None:
                self._g_vertices.set(0)
                self._g_edges.set(0)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def classes_of(self, cset: CompactSet) -> frozenset[str]:
        """Every class with at least one Inner-pattern in the set."""
        vcls = self._vcls
        names = self._cls_names
        out: set[int] = set()
        for key in cset.keys:
            if isinstance(key, int):
                out.add(vcls[key])
            else:
                for v in key[0]:
                    out.add(vcls[v])
        return frozenset(names[c] for c in out)

    def __str__(self) -> str:
        return (
            f"PatternArena({len(self._iids)} vertices, {len(self._edges)} edges, "
            f"{len(self._extent_csets)} extent set(s))"
        )
