"""The physical execution engine: planning, caching, parallel dispatch.

One :class:`Executor` serves one :class:`~repro.objects.graph.ObjectGraph`.
It owns the derived state the physical layer runs on — an
:class:`~repro.exec.indexes.IndexManager` and a
:class:`~repro.exec.cache.PlanCache` — and keeps both honest through two
channels:

* :meth:`on_mutation` — the :class:`~repro.engine.database.Database`
  forwards every mutation event; indexes update incrementally, cache
  entries depending on the touched classes are dropped;
* the graph's ``version`` counter — a mutation that bypassed the event
  stream (direct graph access) leaves ``version`` ahead of what the
  events explained, and the next :meth:`run` rebuilds everything from
  scratch rather than serve stale results.

The logical evaluator remains the semantic reference; the executor is
an accelerator whose results are verified identical in the property
tests (``tests/properties/test_physical_equivalence.py``).
"""

from __future__ import annotations

from repro.core.assoc_set import AssociationSet
from repro.core.expression import Expr
from repro.exec.arena import PatternArena
from repro.exec.cache import PlanCache
from repro.exec.indexes import IndexManager
from repro.exec.physical import ExecContext, PhysicalNode, PhysicalPlanner
from repro.exec.scheduler import BranchScheduler, parallel_branches
from repro.objects.graph import ObjectGraph
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer

__all__ = ["Executor"]


class Executor:
    """Physical query execution over one object graph."""

    def __init__(
        self,
        graph: ObjectGraph,
        metrics: MetricsRegistry | None = None,
        max_workers: int = 4,
        compact: bool = True,
        stats=None,
        compiled_select: bool = True,
    ) -> None:
        self.graph = graph
        self.metrics = metrics
        # Optional StatisticsCatalog: fed the same mutation events as the
        # indexes, and its FeedbackStore collects actual cardinalities.
        self.stats = stats
        self.indexes = IndexManager(graph)
        self.arena = PatternArena(graph, metrics)
        self.cache = PlanCache(metrics)
        self.planner = PhysicalPlanner(
            graph, metrics, compact=compact, compiled_select=compiled_select
        )
        # The stats catalog's histogram/distinct builders scan columns
        # instead of objects once a class's column is materialized.
        if stats is not None and hasattr(stats, "attach_columns"):
            stats.attach_columns(self.arena.columns)
        self.scheduler = BranchScheduler(max_workers)
        self._synced_version = graph.version
        if metrics is not None:
            self._m_branches = metrics.counter(
                "repro_parallel_branches_total",
                "Plan branches dispatched to the parallel scheduler",
            )
            self._m_resets = metrics.counter(
                "repro_executor_resets_total",
                "Full index/cache rebuilds forced by out-of-band mutations",
            )

    # ------------------------------------------------------------------
    # state maintenance
    # ------------------------------------------------------------------

    def on_mutation(self, event, pre_version: int | None = None) -> int:
        """Fold one mutation event into indexes, arena, and cache.

        ``pre_version`` is the graph version the caller observed before
        applying the mutation, when it can vouch for one.  A mismatch
        with the version this executor last synced to means writes hit
        the graph *between* events (out-of-band) — the incremental state
        would explain the new version without ever having seen them, so
        everything derived is rebuilt instead.

        Returns the number of cache entries the event invalidated (the
        database's event log records non-zero counts).
        """
        if pre_version is not None and pre_version != self._synced_version:
            self.indexes.reset()
            self.arena.reset()
            self.cache.clear()
            if self.stats is not None:
                self.stats.on_out_of_band()
            self._synced_version = self.graph.version
            if self.metrics is not None:
                self._m_resets.inc()
            return 0
        self.indexes.apply(event)
        self.arena.apply(event)
        # Per-kind delta classification: attribute-only updates invalidate
        # against each entry's value-dependency set, so plans that touch
        # the class solely through edges keep their cached results.
        invalidated = self.cache.invalidate_classes(
            {i.cls for i in event.instances}, kind=event.kind
        )
        if self.stats is not None:
            self.stats.apply(event)
        self._synced_version = self.graph.version
        return invalidated

    def refresh(self) -> None:
        """Drop all derived state if the graph moved without events.

        The arena's interning tables go too — compact cache entries
        encoded against the old id space are cleared in the same pass, so
        the re-interned arena can never be read through stale ids.
        """
        if self.graph.version != self._synced_version:
            self.indexes.reset()
            self.arena.reset()
            self.cache.clear()
            if self.stats is not None:
                self.stats.on_out_of_band()
            self._synced_version = self.graph.version
            if self.metrics is not None:
                self._m_resets.inc()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def plan(
        self,
        expr: Expr,
        compact: bool | None = None,
        compiled_select: bool | None = None,
    ) -> PhysicalNode:
        """The physical plan the executor would run for ``expr``.

        ``compact`` / ``compiled_select`` override the planner's settings
        for this call only (``None`` keeps the constructor's defaults).
        """
        self.refresh()
        return self.planner.plan(
            expr, compact=compact, compiled_select=compiled_select
        )

    def run(
        self,
        expr: Expr,
        *,
        trace: Tracer | None = None,
        parallel: bool = False,
        use_cache: bool = True,
        compact: bool | None = None,
        compiled_select: bool | None = None,
        plan: PhysicalNode | None = None,
    ) -> AssociationSet:
        """Evaluate ``expr`` through its physical plan.

        A caller that already holds the plan (from :meth:`plan`, e.g. to
        read its root strategy) passes it back via ``plan`` and skips
        replanning; the plan must come from this executor *after* its
        last refresh.
        """
        if plan is None:
            self.refresh()
            plan = self.planner.plan(
                expr, compact=compact, compiled_select=compiled_select
            )
        ctx = ExecContext(
            self.graph,
            self.indexes,
            self.cache,
            use_cache,
            arena=self.arena,
            feedback=self.stats.feedback if self.stats is not None else None,
        )
        if parallel:
            branches = parallel_branches(plan)
            if len(branches) >= 2:
                if self.metrics is not None:
                    self._m_branches.inc(len(branches))
                return self.scheduler.run(plan, branches, ctx, trace)
        return plan.execute(ctx, trace)

    def __str__(self) -> str:
        return f"Executor({self.indexes}, {self.cache})"
