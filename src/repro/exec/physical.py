"""Physical plans: strategy-annotated, cache-aware operator trees.

A physical plan mirrors its logical :class:`~repro.core.expression.Expr`
tree node for node — the span tree a traced execution records therefore
still mirrors the expression tree, which ``EXPLAIN ANALYZE`` relies on.
What changes is *how* each node computes its result:

========================  =====================================================
strategy                  applies to
========================  =====================================================
``extent-scan``           :class:`ClassExtent` — reads the IndexManager's
                          cached extent set (the underlying graph extent is
                          scanned once, then maintained incrementally)
``edge-scan``             Associate of two bare extents matching the
                          association's ends: the answer IS the association's
                          edge list, read straight from the adjacency index
``index-join``            any other Associate — index-nested-loop through
                          ``graph.partners``, driving from the smaller operand
                          (Associate is commutative, so the swap is free)
``value-index-scan``      ``σ(X)[X = const]`` — answered from the per-class
                          value index, then re-checked by the predicate
``compact-select``        any other σ over a bare extent whose predicate
                          compiles to column masks
                          (:func:`repro.exec.columns.compile_select`) —
                          evaluated as a selection bitmask over the arena's
                          typed attribute columns, joined to the region by
                          ``k_select_mask``
``compact-kernel``        any maximal operator subtree closed over the batch
                          kernels of :mod:`repro.exec.kernels` — executed
                          over the integer-interned arena representation,
                          decoded only at the region root
``cache-hit``             any node whose canonical subexpression is in the
                          plan cache (reported at run time, not plan time)
========================  =====================================================

Everything else keeps its reference kernel under an honest strategy name
(``complement-scan``, ``free-set-scan``, ``hash-intersect``, ``union``,
``difference``, ``divide``, ``object-eval``, ``project``, ``literal``).
``object-eval`` is the per-pattern ``Predicate.evaluate`` σ path — the
fallback for predicates the column compiler cannot lower.  With
``PhysicalPlanner(compact=False)`` the compact path is disabled and
those reference strategies also cover Associate/NonAssociate/Intersect/
Union/Difference/value-index/compiled Select.

The planner never consults instance data — only the schema and O(1)
statistics — so planning is cheap enough to run per query.
"""

from __future__ import annotations

from typing import Any

from repro.core.assoc_set import AssociationSet
from repro.core.expression import (
    Associate,
    ClassExtent,
    Complement,
    Difference,
    Divide,
    Expr,
    Intersect,
    Literal,
    NonAssociate,
    Project,
    Select,
    Union,
)
from repro.core.operators import (
    a_complement,
    a_difference,
    a_divide,
    a_intersect,
    a_project,
    a_select,
    a_union,
    associate,
    non_associate,
)
from repro.errors import EvaluationError
from repro.exec.arena import CompactSet, PatternArena
from repro.exec.cache import PlanCache, canonicalize
from repro.exec.columns import compiled_select_probe
from repro.exec.indexes import IndexManager
from repro.exec.kernels import (
    k_associate,
    k_difference,
    k_intersect,
    k_nonassociate,
    k_select_mask,
    k_union,
)
from repro.core.pattern import Pattern
from repro.objects.graph import ObjectGraph
from repro.obs.span import Span, Tracer
from repro.optimizer.analysis import (
    edge_scannable,
    predicate_classes,
    value_index_probe,
)

__all__ = ["CompactNode", "ExecContext", "PhysicalNode", "PhysicalPlanner"]


class ExecContext:
    """Everything a physical node needs at run time.

    ``precomputed`` maps ``id(node)`` → ``(result, branch_tracer)`` for
    subtrees the parallel scheduler already evaluated on worker threads;
    reaching such a node adopts the branch's spans instead of re-running.
    """

    __slots__ = (
        "graph",
        "indexes",
        "cache",
        "use_cache",
        "precomputed",
        "arena",
        "feedback",
    )

    def __init__(
        self,
        graph: ObjectGraph,
        indexes: IndexManager,
        cache: PlanCache | None = None,
        use_cache: bool = True,
        precomputed: dict[int, tuple[AssociationSet, Tracer | None]] | None = None,
        arena: PatternArena | None = None,
        feedback=None,
    ) -> None:
        self.graph = graph
        self.indexes = indexes
        self.cache = cache
        self.use_cache = use_cache
        self.precomputed = precomputed
        # Compact-kernel nodes need an arena; a context built without one
        # (tests driving plans by hand) lazily gets a private arena.
        self.arena = arena if arena is not None else PatternArena(graph)
        # Optional FeedbackStore: actual sub-plan cardinalities recorded
        # on cache misses (true executions) for the adaptive cost model.
        self.feedback = feedback


class PhysicalNode:
    """One node of a physical plan (mirrors one logical node)."""

    strategy = "?"

    def __init__(
        self,
        expr: Expr,
        children: tuple["PhysicalNode", ...] = (),
        key: Expr | None = None,
        deps: frozenset[str] = frozenset(),
    ) -> None:
        self.expr = expr
        self.children = children
        #: Canonical subexpression used as the plan-cache key (None = don't).
        self.key = key
        #: Classes this subtree's result depends on (cache invalidation).
        self.deps = deps

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(self, ctx: ExecContext, trace: Tracer | None = None) -> AssociationSet:
        """Evaluate this subtree, mirroring ``Expr.evaluate``'s tracing."""
        if ctx.precomputed is not None:
            entry = ctx.precomputed.get(id(self))
            if entry is not None:
                result, branch = entry
                if trace is not None and branch is not None:
                    _adopt_spans(trace, branch)
                return result
        if trace is None:
            return self._cached(ctx, None, None)
        span = trace.begin(str(self.expr), self.expr.kind, strategy=self.strategy)
        try:
            result = self._cached(ctx, trace, span)
        except BaseException as exc:
            trace.finish(span, error=type(exc).__name__)
            raise
        trace.finish(span, output=len(result))
        return result

    def _cached(
        self, ctx: ExecContext, trace: Tracer | None, span: Span | None
    ) -> AssociationSet:
        if ctx.use_cache and ctx.cache is not None and self.key is not None:
            hit = ctx.cache.get(self.key, AssociationSet)
            if hit is not None:
                if span is not None:
                    span.attributes["strategy"] = "cache-hit"
                return hit
            result = self._execute(ctx, trace, span)
            ctx.cache.put(self.key, result, self.deps)
            self._record(ctx, len(result))
            return result
        return self._execute(ctx, trace, span)

    def _record(self, ctx: ExecContext, actual: int) -> None:
        """Record the actual cardinality of one true (cache-miss) run.

        Only the cache-miss path records, so estimates always describe a
        *previous* execution — EXPLAIN runs bypass the cache and never
        feed the store, keeping q-error measurements honest.
        """
        if ctx.feedback is not None and self.key is not None:
            ctx.feedback.record(self.key, actual, self.deps)

    def _execute(
        self, ctx: ExecContext, trace: Tracer | None, span: Span | None
    ) -> AssociationSet:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def walk(self, depth: int = 0):
        """Yield ``(node, depth)`` pairs, pre-order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    @property
    def label(self) -> str:
        """Display label for plan listings (strategy, possibly qualified)."""
        return self.strategy

    def describe(self) -> str:
        """One line per node: strategy and expression, indented by depth."""
        return "\n".join(
            f"{'  ' * depth}{node.label:<18} {node.expr}"
            for node, depth in self.walk()
        )

    def __str__(self) -> str:
        return f"{type(self).__name__}[{self.strategy}]({self.expr})"


def _adopt_spans(trace: Tracer, branch: Tracer) -> None:
    """Splice a branch tracer's finished forest into the open span."""
    if trace._stack:
        trace._stack[-1].children.extend(branch.roots)
    else:
        trace.roots.extend(branch.roots)
    trace.completed.extend(branch.completed)


# ----------------------------------------------------------------------
# leaves
# ----------------------------------------------------------------------


class ExtentScan(PhysicalNode):
    strategy = "extent-scan"

    def _execute(self, ctx, trace, span):
        return ctx.indexes.extent_set(self.expr.name)


class LiteralValue(PhysicalNode):
    strategy = "literal"

    def _execute(self, ctx, trace, span):
        return self.expr.value


# ----------------------------------------------------------------------
# binary graph operators
# ----------------------------------------------------------------------


class EdgeScanJoin(PhysicalNode):
    """Associate of two bare extents: read the edge list directly.

    The operand extents are still evaluated (their spans and scan metrics
    are part of the query's observable shape, and they are cached reads),
    but the join itself is a dictionary lookup, not a loop.
    """

    strategy = "edge-scan"

    def _execute(self, ctx, trace, span):
        assoc, _, _ = self.expr.resolve(ctx.graph)
        for child in self.children:
            child.execute(ctx, trace)
        return ctx.indexes.edge_set(assoc)


class IndexJoin(PhysicalNode):
    """Index-nested-loop Associate driving from the smaller operand."""

    strategy = "index-join"

    def _execute(self, ctx, trace, span):
        assoc, a_cls, b_cls = self.expr.resolve(ctx.graph)
        left = self.children[0].execute(ctx, trace)
        right = self.children[1].execute(ctx, trace)
        if len(right) < len(left):
            # α *[R(A,B)] β  =  β *[R(B,A)] α — drive the probe loop from
            # the smaller side.
            if span is not None:
                span.attributes["drive"] = "right"
            return associate(right, left, ctx.graph, assoc, b_cls, a_cls)
        if span is not None:
            span.attributes["drive"] = "left"
        return associate(left, right, ctx.graph, assoc, a_cls, b_cls)


class ComplementScan(PhysicalNode):
    strategy = "complement-scan"

    def _execute(self, ctx, trace, span):
        assoc, a_cls, b_cls = self.expr.resolve(ctx.graph)
        left = self.children[0].execute(ctx, trace)
        right = self.children[1].execute(ctx, trace)
        return a_complement(left, right, ctx.graph, assoc, a_cls, b_cls)


class FreeSetScan(PhysicalNode):
    strategy = "free-set-scan"

    def _execute(self, ctx, trace, span):
        assoc, a_cls, b_cls = self.expr.resolve(ctx.graph)
        left = self.children[0].execute(ctx, trace)
        right = self.children[1].execute(ctx, trace)
        return non_associate(left, right, ctx.graph, assoc, a_cls, b_cls)


# ----------------------------------------------------------------------
# set operators
# ----------------------------------------------------------------------


class HashIntersect(PhysicalNode):
    strategy = "hash-intersect"

    def _execute(self, ctx, trace, span):
        left = self.children[0].execute(ctx, trace)
        right = self.children[1].execute(ctx, trace)
        return a_intersect(left, right, self.expr.classes)


class UnionOp(PhysicalNode):
    strategy = "union"

    def _execute(self, ctx, trace, span):
        left = self.children[0].execute(ctx, trace)
        right = self.children[1].execute(ctx, trace)
        return a_union(left, right)


class DifferenceOp(PhysicalNode):
    strategy = "difference"

    def _execute(self, ctx, trace, span):
        left = self.children[0].execute(ctx, trace)
        right = self.children[1].execute(ctx, trace)
        return a_difference(left, right)


class DivideOp(PhysicalNode):
    strategy = "divide"

    def _execute(self, ctx, trace, span):
        left = self.children[0].execute(ctx, trace)
        right = self.children[1].execute(ctx, trace)
        return a_divide(left, right, self.expr.classes)


# ----------------------------------------------------------------------
# unary operators
# ----------------------------------------------------------------------


class FilterScan(PhysicalNode):
    """σ via per-pattern ``Predicate.evaluate`` — the object path."""

    strategy = "object-eval"

    def _execute(self, ctx, trace, span):
        operand = self.children[0].execute(ctx, trace)
        return a_select(operand, self.expr.predicate, ctx.graph)


class ValueIndexSelect(PhysicalNode):
    """``σ(X)[X = const]`` answered from the per-class value index.

    The operand extent is still evaluated for its span; the candidate set
    comes from the index, and the full predicate re-checks it (cheap — the
    candidates already match — and keeps semantics exactly aligned with
    the reference kernel for exotic value types).
    """

    strategy = "value-index-scan"

    def __init__(self, expr, children, key, deps, cls: str, value: Any) -> None:
        super().__init__(expr, children, key, deps)
        self.cls = cls
        self.value = value

    def _execute(self, ctx, trace, span):
        self.children[0].execute(ctx, trace)
        candidates = ctx.indexes.find_by_value(self.cls, self.value)
        return a_select(candidates, self.expr.predicate, ctx.graph)


class ProjectOp(PhysicalNode):
    strategy = "project"

    def _execute(self, ctx, trace, span):
        operand = self.children[0].execute(ctx, trace)
        return a_project(operand, self.expr.templates, self.expr.links)


# ----------------------------------------------------------------------
# compact-kernel nodes
# ----------------------------------------------------------------------


class CompactNode(PhysicalNode):
    """A plan node running inside a compact region.

    A *compact region* is a maximal subtree closed over kernel-supported
    operators.  Interior nodes exchange :class:`CompactSet` values through
    :meth:`execute_compact`; the region's root is reached through the
    ordinary :meth:`execute` protocol and decodes its kernel result at the
    boundary, so callers (and the span tree) see exactly what the
    reference nodes produce.  ``span.attributes["kernel"]`` names the
    batch kernel that ran; the strategy is ``compact-kernel`` throughout.
    """

    strategy = "compact-kernel"
    kernel = "?"

    @property
    def label(self) -> str:
        return f"{self.strategy}[{self.kernel}]"

    # -- region root: the ordinary protocol, decoding at the boundary ----
    # PhysicalNode.execute → _cached (decoded AssociationSet entries, so a
    # warm repeat skips the kernel AND the decode) → _execute below.

    def _execute(self, ctx, trace, span):
        return ctx.arena.decode_set(self._run_kernel(ctx, trace, span))

    # -- interior protocol: compact in, compact out ----------------------

    def execute_compact(self, ctx: ExecContext, trace: Tracer | None) -> CompactSet:
        if ctx.precomputed is not None:
            entry = ctx.precomputed.get(id(self))
            if entry is not None:
                result, branch = entry
                if trace is not None and branch is not None:
                    _adopt_spans(trace, branch)
                # Branch workers run through execute() and hand back a
                # decoded set; re-encoding is interning lookups only.
                if isinstance(result, CompactSet):
                    return result
                return ctx.arena.encode_set(result)
        if trace is None:
            return self._compact_cached(ctx, None, None)
        span = trace.begin(str(self.expr), self.expr.kind, strategy=self.strategy)
        try:
            result = self._compact_cached(ctx, trace, span)
        except BaseException as exc:
            trace.finish(span, error=type(exc).__name__)
            raise
        trace.finish(span, output=len(result))
        return result

    def _compact_cached(
        self, ctx: ExecContext, trace: Tracer | None, span: Span | None
    ) -> CompactSet:
        if ctx.use_cache and ctx.cache is not None and self.key is not None:
            hit = ctx.cache.get(self.key, CompactSet)
            if hit is not None:
                if span is not None:
                    span.attributes["strategy"] = "cache-hit"
                return hit
            result = self._run_kernel(ctx, trace, span)
            ctx.cache.put(self.key, result, self.deps)
            self._record(ctx, len(result))
            return result
        return self._run_kernel(ctx, trace, span)

    def _run_kernel(self, ctx, trace, span) -> CompactSet:
        if span is not None:
            span.attributes["kernel"] = self.kernel
        return self._kernel(ctx, trace, span)

    def _kernel(self, ctx, trace, span) -> CompactSet:
        raise NotImplementedError


class CompactExtentScan(CompactNode):
    kernel = "extent"

    def _kernel(self, ctx, trace, span):
        return ctx.arena.extent_cset(self.expr.name)


class CompactLiteral(CompactNode):
    kernel = "encode"

    def _kernel(self, ctx, trace, span):
        return ctx.arena.encode_set(self.expr.value)


class CompactEdgeScan(CompactNode):
    """Associate of two bare extents: the arena's edge set IS the answer."""

    kernel = "edge-scan"

    def _kernel(self, ctx, trace, span):
        assoc, _, _ = self.expr.resolve(ctx.graph)
        for child in self.children:
            child.execute_compact(ctx, trace)
        return ctx.arena.edge_cset(assoc)


class CompactJoin(CompactNode):
    """Associate as a hash join over int adjacency, smaller side driving."""

    kernel = "hash-join"

    def _kernel(self, ctx, trace, span):
        assoc, a_cls, b_cls = self.expr.resolve(ctx.graph)
        left = self.children[0].execute_compact(ctx, trace)
        right = self.children[1].execute_compact(ctx, trace)
        if len(right) < len(left):
            if span is not None:
                span.attributes["drive"] = "right"
            return k_associate(ctx.arena, right, left, assoc, b_cls, a_cls)
        if span is not None:
            span.attributes["drive"] = "left"
        return k_associate(ctx.arena, left, right, assoc, a_cls, b_cls)


class CompactFreeSetScan(CompactNode):
    kernel = "free-set"

    def _kernel(self, ctx, trace, span):
        assoc, a_cls, b_cls = self.expr.resolve(ctx.graph)
        left = self.children[0].execute_compact(ctx, trace)
        right = self.children[1].execute_compact(ctx, trace)
        return k_nonassociate(ctx.arena, left, right, assoc, a_cls, b_cls)


class CompactIntersect(CompactNode):
    kernel = "signature-join"

    def _kernel(self, ctx, trace, span):
        left = self.children[0].execute_compact(ctx, trace)
        right = self.children[1].execute_compact(ctx, trace)
        return k_intersect(ctx.arena, left, right, self.expr.classes)


class CompactUnion(CompactNode):
    kernel = "merge-union"

    def _kernel(self, ctx, trace, span):
        left = self.children[0].execute_compact(ctx, trace)
        right = self.children[1].execute_compact(ctx, trace)
        return k_union(left, right)


class CompactDifference(CompactNode):
    kernel = "anchored-difference"

    def _kernel(self, ctx, trace, span):
        left = self.children[0].execute_compact(ctx, trace)
        right = self.children[1].execute_compact(ctx, trace)
        return k_difference(left, right)


class CompactValueSelect(CompactNode):
    """``σ(X)[X = const]`` over the value index, interned on the way in.

    Mirrors :class:`ValueIndexSelect`: the operand extent runs for its
    span only; candidates come from the index and the full predicate
    re-checks each one (on its decoded Inner-pattern, so exotic value
    types behave exactly as in the reference).
    """

    kernel = "value-index"

    def __init__(self, expr, children, key, deps, cls: str, value: Any) -> None:
        super().__init__(expr, children, key, deps)
        self.cls = cls
        self.value = value

    def _kernel(self, ctx, trace, span):
        self.children[0].execute_compact(ctx, trace)
        predicate = self.expr.predicate
        graph = ctx.graph
        vid = ctx.arena.vid
        keys = frozenset(
            vid(iid)
            for iid in graph.find_by_value(self.cls, self.value)
            if predicate.evaluate(Pattern.inner(iid), graph)
        )
        return CompactSet(keys)


class CompactMaskSelect(CompactNode):
    """σ over a bare extent via compiled column masks.

    The predicate was lowered to a column-mask program at plan time
    (:func:`repro.exec.columns.compile_select`); the kernel evaluates it
    over the class's typed column to a set of satisfying vertex ids and
    intersects the operand extent with it — no Pattern is allocated and
    no per-pattern ``evaluate`` runs.  ``span.attributes["mask_card"]``
    reports the mask's cardinality for ``EXPLAIN ANALYZE``.
    """

    strategy = "compact-select"
    kernel = "mask-eval"

    def __init__(self, expr, children, key, deps, cls: str) -> None:
        super().__init__(expr, children, key, deps)
        self.cls = cls

    def _kernel(self, ctx, trace, span):
        base = self.children[0].execute_compact(ctx, trace)
        vids = ctx.arena.columns.eval_select(self.expr.predicate, self.cls)
        if vids is None:  # pragma: no cover - planner guarantees compilable
            decoded = a_select(
                ctx.arena.decode_set(base), self.expr.predicate, ctx.graph
            )
            return ctx.arena.encode_set(decoded)
        if span is not None:
            span.attributes["mask_card"] = len(vids)
        return k_select_mask(base, vids)


class CompactShardSelect(CompactNode):
    """σ over a bare extent keeping one OID-hash partition of it.

    The sharded executor rewrites a partitioned ``ClassExtent(C)`` leaf
    into ``σ(C)[shard(C) = i/n]``; this kernel answers it by hashing each
    extent vertex's OID directly — no Pattern is decoded and no
    per-pattern ``evaluate`` runs, so per-shard queries stay closed over
    the compact kernels inside worker processes.
    """

    strategy = "compact-select"
    kernel = "shard-hash"

    def __init__(self, expr, children, key, deps, flt) -> None:
        super().__init__(expr, children, key, deps)
        self.flt = flt

    def _kernel(self, ctx, trace, span):
        from repro.shard.partition import shard_of

        base = self.children[0].execute_compact(ctx, trace)
        iids = ctx.arena._iids
        shard, shards = self.flt.shard, self.flt.shards
        keys = frozenset(
            v for v in base.keys if shard_of(iids[v].oid, shards) == shard
        )
        return CompactSet(keys)


def _shard_select_probe(expr):
    """The ShardFilter of a ``σ(C)[shard(C) = i/n]`` node, else None.

    Imported lazily: :mod:`repro.shard` imports this module back.
    """
    from repro.shard.partition import ShardFilter

    predicate = expr.predicate
    if (
        isinstance(predicate, ShardFilter)
        and isinstance(expr.operand, ClassExtent)
        and expr.operand.name == predicate.cls
    ):
        return predicate
    return None


#: Binary operators a compact region can contain (Select is handled apart).
_KERNEL_OPS = (Associate, NonAssociate, Intersect, Union, Difference)


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------


class PhysicalPlanner:
    """Turns logical expression trees into physical plans.

    With ``compact=True`` (the default) every maximal operator subtree
    closed over the kernel-supported operators — Associate, NonAssociate,
    A-Intersect, A-Union, A-Difference, and value-index A-Select — plans
    as a compact region executed by the batch kernels; everything else
    keeps the reference strategies.  Kernel-supported operators that fall
    back (an unsupported operand below them, or an unresolvable
    association) are counted by ``repro_compact_fallback_total``.

    With ``compiled_select=True`` (the default) a σ over a bare extent
    whose predicate the column compiler can lower plans as a
    ``compact-select`` mask evaluation; σ-over-extent predicates it
    cannot lower are counted by ``repro_select_fallback_total`` and run
    the object path.  ``repro_select_compiled_total`` counts the lowered
    ones.
    """

    def __init__(
        self,
        graph: ObjectGraph,
        metrics=None,
        compact: bool = True,
        compiled_select: bool = True,
    ) -> None:
        self.graph = graph
        self.compact = compact
        self.compiled_select = compiled_select
        if metrics is not None:
            self._m_fallbacks = metrics.counter(
                "repro_compact_fallback_total",
                "Kernel-supported operators planned with reference strategies",
            )
            self._m_select_compiled = metrics.counter(
                "repro_select_compiled_total",
                "Selects planned as compiled column-mask evaluation",
            )
            self._m_select_fallback = metrics.counter(
                "repro_select_fallback_total",
                "Selects over bare extents falling back to the object path",
            )
        else:
            self._m_fallbacks = None
            self._m_select_compiled = None
            self._m_select_fallback = None

    def plan(
        self,
        expr: Expr,
        compact: bool | None = None,
        compiled_select: bool | None = None,
    ) -> PhysicalNode:
        """The physical plan for ``expr`` (node-for-node mirror).

        ``compact`` and ``compiled_select`` override the planner's
        defaults for this one call — ``False`` forces the reference
        strategies, ``True`` enables them, ``None`` keeps the
        constructor's setting.  The flags are threaded through the
        recursion (not stored), so concurrent ``plan`` calls with
        different overrides are safe.
        """
        return self._plan(
            expr,
            self.compact if compact is None else bool(compact),
            self.compiled_select
            if compiled_select is None
            else bool(compiled_select),
        )

    def _plan(self, expr: Expr, compact: bool, compiled: bool) -> PhysicalNode:
        if isinstance(expr, ClassExtent):
            # Cached by the IndexManager itself; no plan-cache entry.
            return ExtentScan(expr, (), None, frozenset({expr.name}))
        if isinstance(expr, Literal):
            return LiteralValue(expr, (), None, frozenset())

        if compact:
            if self._compact_ok(expr, compiled):
                return self._plan_compact(expr, compiled)
            if isinstance(expr, _KERNEL_OPS) and self._m_fallbacks is not None:
                self._m_fallbacks.inc()
            if (
                compiled
                and isinstance(expr, Select)
                and isinstance(expr.operand, ClassExtent)
                and self._m_select_fallback is not None
            ):
                self._m_select_fallback.inc()

        children = tuple(
            self._plan(child, compact, compiled) for child in expr.children()
        )
        key = canonicalize(expr)
        deps = frozenset().union(*(c.deps for c in children)) if children else frozenset()

        if isinstance(expr, Associate):
            return self._plan_associate(expr, children, key, deps)
        if isinstance(expr, (Complement, NonAssociate)):
            deps = deps | self._assoc_deps(expr)
            node_cls = ComplementScan if isinstance(expr, Complement) else FreeSetScan
            return node_cls(expr, children, key, deps)
        if isinstance(expr, Intersect):
            return HashIntersect(expr, children, key, deps)
        if isinstance(expr, Union):
            return UnionOp(expr, children, key, deps)
        if isinstance(expr, Difference):
            return DifferenceOp(expr, children, key, deps)
        if isinstance(expr, Divide):
            return DivideOp(expr, children, key, deps)
        if isinstance(expr, Select):
            return self._plan_select(expr, children, key, deps)
        if isinstance(expr, Project):
            return ProjectOp(expr, children, key, deps)
        raise TypeError(f"unknown expression node {expr!r}")  # pragma: no cover

    def _assoc_deps(self, expr) -> frozenset[str]:
        """End classes of a binary graph operator's association, if resolvable.

        Needed because a Literal operand contributes no class dependencies
        of its own, yet the node's result changes with the association's
        edges.  Unresolvable nodes raise the same error at execution time,
        so their (never-produced) results need no dependencies.
        """
        try:
            _, a_cls, b_cls = expr.resolve(self.graph)
        except EvaluationError:
            return frozenset()
        return frozenset({a_cls, b_cls})

    def _plan_associate(self, expr, children, key, deps) -> PhysicalNode:
        deps = deps | self._assoc_deps(expr)
        if edge_scannable(expr, self.graph):
            return EdgeScanJoin(expr, children, key, deps)
        return IndexJoin(expr, children, key, deps)

    def _plan_select(self, expr, children, key, deps) -> PhysicalNode:
        deps = deps | predicate_classes(expr.predicate)
        probe = value_index_probe(expr)
        if probe is not None:
            cls, value = probe
            return ValueIndexSelect(expr, children, key, deps, cls, value)
        return FilterScan(expr, children, key, deps)

    # ------------------------------------------------------------------
    # compact regions
    # ------------------------------------------------------------------

    def _compact_ok(self, expr: Expr, compiled: bool) -> bool:
        """Whether ``expr`` is an operator subtree the kernels fully cover.

        Leaves (extents, literals) are encodable but do not *start* a
        region — a bare extent at the root stays a plain extent-scan.
        Associate/NonAssociate additionally need a resolvable association
        (unresolvable ones must raise through the reference path, at the
        same tree position).
        """
        if isinstance(expr, (Associate, NonAssociate)):
            try:
                expr.resolve(self.graph)
            except EvaluationError:
                return False
            return self._encodable(expr.left, compiled) and self._encodable(
                expr.right, compiled
            )
        if isinstance(expr, (Intersect, Union, Difference)):
            return self._encodable(expr.left, compiled) and self._encodable(
                expr.right, compiled
            )
        if isinstance(expr, Select):
            # Both σ forms apply only over a bare extent, which is always
            # encodable: the value-index probe, and the compiled column
            # masks (exact only over singleton patterns).
            if value_index_probe(expr) is not None:
                return True
            if _shard_select_probe(expr) is not None:
                return True
            return compiled and compiled_select_probe(expr) is not None
        return False

    def _encodable(self, expr: Expr, compiled: bool) -> bool:
        if isinstance(expr, (ClassExtent, Literal)):
            return True
        return self._compact_ok(expr, compiled)

    def _plan_compact(self, expr: Expr, compiled: bool) -> CompactNode:
        if isinstance(expr, ClassExtent):
            return CompactExtentScan(expr, (), None, frozenset({expr.name}))
        if isinstance(expr, Literal):
            return CompactLiteral(expr, (), None, frozenset())

        children = tuple(
            self._plan_compact(child, compiled) for child in expr.children()
        )
        key = canonicalize(expr)
        deps = frozenset().union(*(c.deps for c in children))

        if isinstance(expr, Associate):
            deps = deps | self._assoc_deps(expr)
            if edge_scannable(expr, self.graph):
                return CompactEdgeScan(expr, children, key, deps)
            return CompactJoin(expr, children, key, deps)
        if isinstance(expr, NonAssociate):
            deps = deps | self._assoc_deps(expr)
            return CompactFreeSetScan(expr, children, key, deps)
        if isinstance(expr, Intersect):
            return CompactIntersect(expr, children, key, deps)
        if isinstance(expr, Union):
            return CompactUnion(expr, children, key, deps)
        if isinstance(expr, Difference):
            return CompactDifference(expr, children, key, deps)
        assert isinstance(expr, Select)  # guaranteed by _compact_ok
        deps = deps | predicate_classes(expr.predicate)
        probe = value_index_probe(expr)
        if probe is not None:
            cls, value = probe
            return CompactValueSelect(expr, children, key, deps, cls, value)
        flt = _shard_select_probe(expr)
        if flt is not None:
            return CompactShardSelect(expr, children, key, deps, flt)
        cls = compiled_select_probe(expr)
        if self._m_select_compiled is not None:
            self._m_select_compiled.inc()
        return CompactMaskSelect(expr, children, key, deps, cls)
