"""Physical execution layer for the A-algebra engine.

Separates logical :class:`~repro.core.expression.Expr` trees from the
physical plans that evaluate them: incrementally maintained access
structures (:mod:`repro.exec.indexes`), a mutation-invalidated sub-plan
cache (:mod:`repro.exec.cache`), strategy-annotated operator trees
(:mod:`repro.exec.physical`), an integer-interning pattern arena with
batch kernels (:mod:`repro.exec.arena`, :mod:`repro.exec.kernels`), a
typed column store with compiled predicate masks
(:mod:`repro.exec.columns`) and a parallel branch scheduler
(:mod:`repro.exec.scheduler`), all coordinated by one
:class:`~repro.exec.executor.Executor` per database.  See
``docs/execution.md``.
"""

from repro.exec.arena import CompactSet, PatternArena
from repro.exec.cache import PlanCache, PlanEntry, canonicalize, expr_dependencies
from repro.exec.columns import ColumnStore, compile_select, compiled_select_probe
from repro.exec.executor import Executor
from repro.exec.indexes import IndexManager
from repro.exec.physical import CompactNode, ExecContext, PhysicalNode, PhysicalPlanner
from repro.exec.scheduler import BranchScheduler, parallel_branches

__all__ = [
    "BranchScheduler",
    "ColumnStore",
    "CompactNode",
    "CompactSet",
    "ExecContext",
    "Executor",
    "IndexManager",
    "PatternArena",
    "PhysicalNode",
    "PhysicalPlanner",
    "PlanCache",
    "PlanEntry",
    "canonicalize",
    "compile_select",
    "compiled_select_probe",
    "expr_dependencies",
    "parallel_branches",
]
