"""Parallel branch scheduling over physical plans.

§4 of the paper argues the algebra suits parallel processing because
rewritten queries decompose into independently evaluable branches.  The
original :mod:`repro.optimizer.parallel` exploited exactly one shape —
top-level A-Unions of a *logical* expression.  Here the idea generalizes
to physical plans: :func:`parallel_branches` picks one disjoint group of
independent subtrees (the flattened frontier under a Union spine, or the
operand subtrees of any binary node, whichever first offers at least two
non-trivial branches), and :class:`BranchScheduler` evaluates that group
on a worker pool.

Two constraints shape the implementation:

* a :class:`~repro.obs.span.Tracer` is stack-based and not thread-safe,
  so every branch records into its own tracer; the main thread then
  re-executes the plan with the branch results *precomputed*, splicing
  each branch's span tree in at the position the serial evaluation would
  have produced it — traced output is indistinguishable in structure
  from a serial run;
* exactly one group is scheduled per query and branches never submit
  nested work, so a bounded pool cannot deadlock on itself.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.core.assoc_set import AssociationSet
from repro.core.expression import Union
from repro.exec.physical import ExecContext, PhysicalNode
from repro.obs.span import Tracer

__all__ = ["parallel_branches", "BranchScheduler"]

#: Minimum node count for a subtree to be worth a thread.
_MIN_WEIGHT = 2


def parallel_branches(plan: PhysicalNode) -> list[PhysicalNode]:
    """One disjoint group of independent subtrees worth parallelizing.

    Walks through single-child spines (Select/Project wrappers), then:
    under a Union, takes the flattened frontier of non-Union subtrees;
    under any other multi-child node, its operand subtrees.  Trivial
    branches (bare extents, literals) are not worth a thread; if fewer
    than two heavy branches remain, the search recurses into the single
    heavy one.  Returns ``[]`` when nothing profitable exists.
    """
    node = plan
    while len(node.children) == 1:
        node = node.children[0]
    if not node.children:
        return []
    if isinstance(node.expr, Union):
        candidates = _union_frontier(node)
    else:
        candidates = list(node.children)
    heavy = [c for c in candidates if _weight(c) >= _MIN_WEIGHT]
    if len(heavy) >= 2:
        return heavy
    if len(heavy) == 1:
        return parallel_branches(heavy[0])
    return []


def _union_frontier(node: PhysicalNode) -> list[PhysicalNode]:
    """Maximal non-Union subtrees under a spine of Unions, left to right."""
    if isinstance(node.expr, Union):
        out: list[PhysicalNode] = []
        for child in node.children:
            out.extend(_union_frontier(child))
        return out
    return [node]


def _weight(node: PhysicalNode) -> int:
    return sum(1 for _ in node.walk())


class BranchScheduler:
    """Evaluates one group of plan branches on a bounded worker pool."""

    def __init__(self, max_workers: int = 4) -> None:
        self.max_workers = max_workers

    def run(
        self,
        plan: PhysicalNode,
        branches: list[PhysicalNode],
        ctx: ExecContext,
        trace: Tracer | None = None,
    ) -> AssociationSet:
        """Evaluate ``branches`` concurrently, then finish ``plan`` serially.

        Each branch gets a private tracer (the shared one is not
        thread-safe); the final serial pass consumes the branch results
        through ``ExecContext.precomputed`` and splices their span trees
        into the correct structural position.
        """

        def run_branch(branch: PhysicalNode):
            branch_trace = Tracer() if trace is not None else None
            return branch.execute(ctx, branch_trace), branch_trace

        workers = max(1, min(self.max_workers, len(branches)))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run_branch, branch) for branch in branches]
            try:
                outcomes = [future.result() for future in futures]
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        precomputed = {
            id(branch): outcome for branch, outcome in zip(branches, outcomes)
        }
        final_ctx = ExecContext(
            ctx.graph,
            ctx.indexes,
            ctx.cache,
            ctx.use_cache,
            precomputed,
            arena=ctx.arena,
            feedback=ctx.feedback,
        )
        return plan.execute(final_ctx, trace)
