"""Batch kernels over compact sets.

Each kernel is the whole-set counterpart of one reference operator in
:mod:`repro.core.operators`, rewritten over the integer domains of a
:class:`~repro.exec.arena.PatternArena`: hash joins key on vertex ids,
union/difference are frozenset merges of int keys, and NonAssociate's
free-set tests are big-int bitmask ANDs.  The property suite
(``tests/properties/test_compact_equivalence.py``) holds every kernel to
bit-identical results against its reference operator — the kernels mirror
the reference control flow decision for decision, only the representation
changes.

All kernels take the arena first and return a new :class:`CompactSet`;
operands are never mutated.
"""

from __future__ import annotations

from repro.core.edges import Polarity
from repro.exec.arena import CompactSet, PatternArena, key_parts, make_key

__all__ = [
    "class_rows",
    "k_associate",
    "k_difference",
    "k_intersect",
    "k_nonassociate",
    "k_select_mask",
    "k_union",
]

_EMPTY_FROZEN: frozenset = frozenset()


def class_rows(
    arena: PatternArena, cset: CompactSet, cls: str
) -> list[tuple[object, frozenset, frozenset, frozenset]]:
    """``(key, vids, eids, instances-of-cls)`` rows, instance-bearing only.

    The compact analogue of ``AssociationSet.patterns_with_class`` — the
    binary graph kernels iterate it on both sides.
    """
    cid = arena.cls_id(cls)
    vcls = arena._vcls
    cls_set = arena.class_vids(cid)
    rows = []
    for key in cset.keys:
        if isinstance(key, int):
            if vcls[key] == cid:
                vids = frozenset((key,))
                rows.append((key, vids, _EMPTY_FROZEN, vids))
        else:
            insts = key[0] & cls_set
            if insts:
                rows.append((key, key[0], key[1], insts))
    return rows


# ----------------------------------------------------------------------
# Associate
# ----------------------------------------------------------------------


def k_associate(
    arena: PatternArena,
    alpha: CompactSet,
    beta: CompactSet,
    assoc,
    a_cls: str,
    b_cls: str,
) -> CompactSet:
    """``α *[R(A,B)] β`` — index-nested-loop join over int adjacency."""
    beta_index: dict[int, list[tuple[frozenset, frozenset]]] = {}
    for _, vids, eids, insts in class_rows(arena, beta, b_cls):
        for b in insts:
            beta_index.setdefault(b, []).append((vids, eids))
    if not beta_index:
        return CompactSet.empty()

    alpha_rows = class_rows(arena, alpha, a_cls)
    adj_get = arena.adjacency(assoc).get
    beta_get = beta_index.get
    pair = arena.eid_of_pair

    # Many alpha rows share the same A-instance, so resolve each distinct
    # instance's continuations (adjacent B-instances that actually appear
    # in beta, with the connecting edge id) once, not once per row.  A
    # neighbour outside ``beta_index`` is either the wrong class or not in
    # beta — the index probe subsumes the class check.
    a_insts: set = set()
    for row in alpha_rows:
        a_insts |= row[3]
    cont: dict[int, list[tuple[frozenset, list]]] = {}
    for a_m in a_insts:
        lst = []
        for b_n in adj_get(a_m, ()):
            rows_b = beta_get(b_n)
            if rows_b is not None:
                lst.append((frozenset((pair(a_m, b_n, Polarity.REGULAR),)), rows_b))
        if lst:
            cont[a_m] = lst
    if not cont:
        return CompactSet.empty()

    cont_get = cont.get
    out: set = set()
    add = out.add
    # Raw-int alpha keys (class extents and mask-filtered σ results) carry
    # exactly one instance and no edges, so the general loop's per-row set
    # unions collapse: the continuation's edge set IS the pattern's.
    composites = []
    for row in alpha_rows:
        key = row[0]
        if isinstance(key, int):
            lst = cont_get(key)
            if lst is None:
                continue
            sa = row[1]
            for connect, rows_b in lst:
                for vids_b, eids_b in rows_b:
                    add((vids_b | sa, connect | eids_b))
        else:
            composites.append(row)
    for _, vids_a, eids_a, insts_a in composites:
        for a_m in insts_a:
            lst = cont_get(a_m)
            if lst is None:
                continue
            for connect, rows_b in lst:
                # both operands of the inner unions are loop-invariant here
                eids_ac = eids_a | connect
                for vids_b, eids_b in rows_b:
                    add((vids_a | vids_b, eids_ac | eids_b))
    return CompactSet(frozenset(out))


# ----------------------------------------------------------------------
# A-Select (compiled masks)
# ----------------------------------------------------------------------


def k_select_mask(base: CompactSet, vids: frozenset) -> CompactSet:
    """``σ`` over an extent as a selection-mask intersection.

    ``vids`` is the set of vertex ids whose singleton pattern satisfies
    the compiled predicate (:meth:`ColumnStore.eval_select`); ``base`` is
    the operand extent in compact form, whose keys are raw ints.  Masks
    are only exact for singleton patterns — a multi-instance pattern's
    predicate is not distributive over its instances — so the planner
    applies this kernel exclusively over bare class extents.
    """
    return CompactSet(base.keys & vids)


# ----------------------------------------------------------------------
# A-Intersect
# ----------------------------------------------------------------------


def k_intersect(
    arena: PatternArena,
    alpha: CompactSet,
    beta: CompactSet,
    classes=None,
) -> CompactSet:
    """``α •{W} β`` — hash join on per-class instance-set signatures."""
    if classes is None:
        shared = arena.classes_of(alpha) & arena.classes_of(beta)
    else:
        shared = frozenset(classes)
    if not shared:
        return CompactSet.empty()
    cids = tuple(arena.cls_id(c) for c in shared)
    n = len(cids)
    vcls = arena._vcls
    only_cid = cids[0]  # the single {W} class when n == 1
    # snapshot per-class vid sets once; keeping the pattern's (small) vid
    # set on the left makes the &s below C-level probes into these
    class_sets = tuple(arena.class_vids(c) for c in cids)
    combined = class_sets[0]
    for cls_set in class_sets[1:]:
        combined = combined | cls_set

    def signature(key):
        # A vertex id belongs to exactly one class, so a pattern's
        # per-class instance partition over {W} is fully determined by its
        # set of {W}-class vids — the filtered frozenset IS the signature.
        # None if any {W} class is absent (the pinned non-vacuous reading).
        if isinstance(key, int):
            if n != 1 or vcls[key] != only_cid:
                return None
            return frozenset((key,))
        vids = key[0]
        sig = None
        for cls_set in class_sets:
            part = vids & cls_set
            if not part:
                return None
            sig = part if sig is None else sig | part
        return sig

    # The merge is symmetric, so index the smaller operand with the full
    # coverage-checked signature and stream the larger one past it.
    small, big = (
        (alpha, beta) if len(alpha.keys) <= len(beta.keys) else (beta, alpha)
    )
    index: dict[frozenset, list[tuple[frozenset, frozenset]]] = {}
    for key in small.keys:
        sig = signature(key)
        if sig is not None:
            index.setdefault(sig, []).append(key_parts(key))
    if not index:
        return CompactSet.empty()

    # Probe side: ``vids & combined`` IS the candidate signature (the union
    # of the per-class parts), and every index entry already covers all of
    # {W}, so a dict hit implies the probe key covers {W} too — no
    # per-class check needed on this side.
    index_get = index.get
    out: set = set()
    add = out.add
    for key in big.keys:
        if isinstance(key, int):
            if key not in combined:
                continue
            vids_b = frozenset((key,))
            eids_b = _EMPTY_FROZEN
            cand = vids_b
        else:
            vids_b, eids_b = key
            cand = vids_b & combined
        rows = index_get(cand)
        if rows is None:
            continue
        for vids_a, eids_a in rows:
            if vids_a <= vids_b and eids_a <= eids_b:
                # merging a contained pattern returns the probe key as-is
                # (already canonical, frozenset hashes already cached)
                add(key)
            else:
                add(make_key(vids_b | vids_a, eids_b | eids_a))
    return CompactSet(frozenset(out))


# ----------------------------------------------------------------------
# A-Union / A-Difference
# ----------------------------------------------------------------------


def k_union(alpha: CompactSet, beta: CompactSet) -> CompactSet:
    """``α + β`` — one frozenset union; compact keys are canonical, so
    duplicate patterns collapse exactly as in the reference."""
    return CompactSet(alpha.keys | beta.keys)


def k_difference(alpha: CompactSet, beta: CompactSet) -> CompactSet:
    """``α - β`` — drop minuend patterns containing any subtrahend pattern.

    Subtrahends are bucketed by their minimum vertex id (the compact
    analogue of ``ContainmentIndex``): a contained subtrahend's anchor
    vertex must appear in the minuend, so only those buckets are probed.
    """
    if not beta.keys:
        return alpha
    by_anchor: dict[int, list[tuple[frozenset, frozenset]]] = {}
    for key in beta.keys:
        vids, eids = key_parts(key)
        by_anchor.setdefault(min(vids), []).append((vids, eids))

    keep: set = set()
    for key in alpha.keys:
        vids_a, eids_a = key_parts(key)
        contained = False
        for v in vids_a:
            for vids_b, eids_b in by_anchor.get(v, ()):
                if vids_b <= vids_a and eids_b <= eids_a:
                    contained = True
                    break
            if contained:
                break
        if not contained:
            keep.add(key)
    return CompactSet(frozenset(keep))


# ----------------------------------------------------------------------
# NonAssociate
# ----------------------------------------------------------------------


def k_nonassociate(
    arena: PatternArena,
    alpha: CompactSet,
    beta: CompactSet,
    assoc,
    a_cls: str,
    b_cls: str,
) -> CompactSet:
    """``α ![R(A,B)] β`` — the reference's main + retention clauses with
    free-set tests as bitmask ANDs."""
    alpha_rows = class_rows(arena, alpha, a_cls)
    beta_rows = class_rows(arena, beta, b_cls)

    all_a = frozenset(i for row in alpha_rows for i in row[3])
    all_b = frozenset(i for row in beta_rows for i in row[3])
    masks = arena.adjacency_masks(assoc)

    # Operands covering the full class extent (the common case: the plan
    # feeds extent scans straight in) reuse the arena's cached per-class
    # bitmask instead of rebuilding it bit by bit on every call.
    def _operand_mask(cls: str, insts: frozenset) -> int:
        if insts == arena.extent_cset(cls).keys:
            return arena.class_mask(cls)
        m = 0
        for v in insts:
            m |= 1 << v
        return m

    mask_a = _operand_mask(a_cls, all_a)
    mask_b = _operand_mask(b_cls, all_b)

    # "Free" instances: associated with no instance of the other operand.
    free_a = frozenset(a for a in all_a if not masks.get(a, 0) & mask_b)
    free_b = frozenset(b for b in all_b if not masks.get(b, 0) & mask_a)

    out: set = set()
    paired_alpha: set = set()
    paired_beta: set = set()
    pair = arena.eid_of_pair

    for key_a, vids_a, eids_a, insts_a in alpha_rows:
        usable_a = insts_a & free_a
        if not usable_a:
            continue
        for key_b, vids_b, eids_b, insts_b in beta_rows:
            usable_b = insts_b & free_b
            if not usable_b:
                continue
            for a_m in usable_a:
                for b_n in usable_b:
                    connect = frozenset((pair(a_m, b_n, Polarity.COMPLEMENT),))
                    out.add((vids_a | vids_b, eids_a | eids_b | connect))
            paired_alpha.add(key_a)
            paired_beta.add(key_b)

    _retain(out, masks, alpha_rows, paired_alpha, free_a, mask_a, all_b)
    _retain(out, masks, beta_rows, paired_beta, free_b, mask_b, all_a)
    return CompactSet(frozenset(out))


def _retain(out, masks, rows, paired, free_own, own_mask, all_other) -> None:
    """Retention clauses (1)-(3) for one operand side — see the reference
    ``non_associate._retain`` for the semantics being mirrored.

    ``own_mask`` is the bitmask of the whole own-side operand; the mask of
    the instances *outside* one pattern is then ``own_mask & ~row_mask`` —
    two big-int ops per row instead of a bit-build over the set difference.
    """
    for key, _, _, instances in rows:
        if key in paired:
            continue
        if not instances <= free_own:
            continue
        if not all_other:
            out.add(key)
            continue
        row_mask = 0
        for v in instances:
            row_mask |= 1 << v
        outside_mask = own_mask & ~row_mask
        if all(masks.get(other, 0) & outside_mask for other in all_other):
            out.add(key)
