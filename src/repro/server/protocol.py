"""Length-prefixed JSON wire protocol for the concurrent query service.

Framing
-------
Every message — request or response, either direction — is one *frame*:

    +----------------+----------------------------------------+
    | 4 bytes        | ``length`` bytes                       |
    | big-endian u32 | UTF-8 JSON object                      |
    +----------------+----------------------------------------+

Frames larger than :data:`MAX_FRAME_BYTES` are rejected before the body
is read, so a corrupt or hostile peer cannot make either side allocate
unbounded memory.  Both blocking-socket helpers (used by the client) and
``asyncio`` stream helpers (used by the server) are provided.

Requests
--------
A request is a JSON object with an ``op`` field::

    {"op": "ping"}
    {"op": "open",  "database": "university"}
    {"op": "query", "q": "pi(TA * Grad)[TA]",
                    "values_of": ["SS#"],      # optional value retrieval
                    "explain": false,          # EXPLAIN ANALYZE text
                    "trace": false,            # span-tree export
                    "compact": null,           # kernel strategy override
                    "use_cache": true,
                    "timeout": 5.0,            # per-request deadline (s)
                    "page_size": 500}          # result paging
    {"op": "fetch", "cursor": "c1"}            # next page of a paged result
    {"op": "mutate", "mutations": [            # DML batch (see below)
        {"action": "insert_value", "cls": "GPA", "value": 3.8}],
                     "durable": true}          # ack only after WAL flush
    {"op": "metrics"}                          # Prometheus snapshot
    {"op": "events", "type": "request.finish", # structured event ring
                     "after": 17, "limit": 50} #   (all fields optional)
    {"op": "slow_queries", "limit": 10}        # slow-query capture records
    {"op": "views"}                            # materialized-view catalog
    {"op": "create_view", "name": "v",         # define + materialize a view
                          "q": "TA * Grad"}
    {"op": "drop_view", "name": "v"}
    {"op": "subscribe", "view": "v"}           # live delta feed (see below)
    {"op": "unsubscribe", "view": "v"}
    {"op": "close"}

Any request may additionally carry a **trace context** stamped by the
caller — ``{"trace_ctx": {"trace_id": "...", "parent_span_id": "..."}}``
— which the server threads through its event log and, for traced
queries, into the ``server.request`` span's attributes, so a client can
stitch the returned span tree under its own root (see
``ServerClient.query(trace=True)``).

Responses
---------
Success frames carry ``{"ok": true, ...}`` with op-specific payload; a
``query`` response holds ``count``, the first page of ``patterns`` (see
:func:`pattern_to_wire`), a ``cursor`` when more pages remain, the root
physical ``strategy``, ``elapsed_ms``, ``queue_wait_ms`` (admission
wait), the echoed ``trace_id`` when a context was stamped, and — on
request — ``values``, ``explain`` and ``trace``.  A ``mutate`` response
holds ``applied`` (actions that landed), per-action ``results`` (created
OIDs for inserts) and ``durable_seq`` — with ``durable`` (the default)
the frame is sent only after the storage engine's WAL flushed, so an
acknowledged batch survives ``kill -9`` (actions: ``insert``,
``insert_value``, ``link``, ``unlink``, ``delete``, ``update``; see
``ServerClient.mutate``).  Failure frames carry a
structured error::

    {"ok": false, "error": {"code": "timeout", "message": "..."}}

Error codes are stable protocol surface (:data:`ERROR_CODES`); the client
raises the matching :class:`ServerError` subclass per code.

Push frames (view subscriptions)
--------------------------------
After ``subscribe`` (whose response carries the initial ``version`` and
``patterns`` snapshot), the server may write **notification frames** to
the session at any point — between a request and its response included.
They are distinguished from responses by a ``notify`` field instead of
``ok``::

    {"notify": "view.delta",  "database": "...", "view": "v",
     "version": 7, "origin": "delta",           # or "refresh"
     "added": [wire patterns], "removed": [wire patterns]}
    {"notify": "view.resync", "database": "...", "view": "v",
     "version": 9, "reason": "overflow",        # backlog was dropped
     "patterns": [wire patterns], "count": 12}  # full current state
    {"notify": "view.dropped", "database": "...", "view": "v",
     "reason": "..."}                           # view no longer exists

``version`` is per-view monotonic; a subscriber applies a delta only
when its version exceeds what it has, and replaces its copy wholesale on
``view.resync``.  A session's deltas caused by its *own* mutate arrive
before the mutate acknowledgement.  :class:`ServerClient` buffers
notification frames transparently (``next_notification``).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from repro.core.pattern import Pattern
from repro.errors import ReproError

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "ProtocolError",
    "ServerError",
    "QueryTimeoutError",
    "ServerOverloadedError",
    "ServerShuttingDownError",
    "error_response",
    "error_to_exception",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "read_frame",
    "write_frame",
    "pattern_to_wire",
    "wire_to_labels",
]

#: Bumped on incompatible wire changes; echoed in the ``ping`` response.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's JSON body (16 MiB).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: The stable error codes a server may return.
ERROR_CODES = (
    "bad_request",
    "unknown_database",
    "engine_error",
    "timeout",
    "overloaded",
    "shutting_down",
    "frame_too_large",
)


class ProtocolError(ReproError):
    """A frame could not be read, parsed, or was oversized."""


class ServerError(ReproError):
    """An error frame returned by the query service.

    ``code`` is one of :data:`ERROR_CODES`; subclasses exist for the
    codes a caller typically handles individually.
    """

    code = "engine_error"

    def __init__(self, message: str, code: str | None = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code


class QueryTimeoutError(ServerError):
    """The request exceeded its deadline (code ``timeout``)."""

    code = "timeout"


class ServerOverloadedError(ServerError):
    """The admission queue was full and the request was shed."""

    code = "overloaded"


class ServerShuttingDownError(ServerError):
    """The server is draining and accepts no new requests."""

    code = "shutting_down"


_ERROR_CLASSES = {
    "timeout": QueryTimeoutError,
    "overloaded": ServerOverloadedError,
    "shutting_down": ServerShuttingDownError,
}


def error_response(code: str, message: str) -> dict[str, Any]:
    """The wire form of one structured error."""
    return {"ok": False, "error": {"code": code, "message": message}}


def error_to_exception(error: dict[str, Any]) -> ServerError:
    """The client-side exception for an error frame's ``error`` object."""
    code = str(error.get("code", "engine_error"))
    message = str(error.get("message", "unknown server error"))
    return _ERROR_CLASSES.get(code, ServerError)(message, code)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Header + JSON body for one message."""
    body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> dict[str, Any]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame body must be a JSON object")
    return payload


def send_frame(sock: socket.socket, payload: dict[str, Any]) -> None:
    """Blocking send of one frame."""
    sock.sendall(encode_frame(payload))


def _recv_exactly(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Blocking read of one frame; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"incoming frame of {length} bytes is oversized")
    body = _recv_exactly(sock, length) if length else b""
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return _decode_body(body)


async def read_frame(reader) -> dict[str, Any] | None:
    """Async read of one frame from a StreamReader; ``None`` on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"incoming frame of {length} bytes is oversized")
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return _decode_body(body)


async def write_frame(writer, payload: dict[str, Any]) -> None:
    """Async write of one frame to a StreamWriter (drains)."""
    writer.write(encode_frame(payload))
    await writer.drain()


# ----------------------------------------------------------------------
# result serialization
# ----------------------------------------------------------------------


def pattern_to_wire(pattern: Pattern) -> dict[str, Any]:
    """One association pattern as plain JSON data.

    Vertices are ``[class, oid]`` pairs in canonical order; edges are
    ``[[class, oid], [class, oid], polarity]`` triples.  The encoding is
    lossless for pattern *identity* (values live in the graph, not the
    pattern) and deterministic, so pages are stable across fetches.
    """
    return {
        "vertices": [[v.cls, v.oid] for v in sorted(pattern.vertices)],
        "edges": sorted(
            [[e.u.cls, e.u.oid], [e.v.cls, e.v.oid], e.polarity.value]
            for e in pattern.edges
        ),
    }


def wire_to_labels(wire_pattern: dict[str, Any]) -> str:
    """A compact human rendering of one wire pattern (client display)."""
    labels = []
    for cls, oid in wire_pattern["vertices"]:
        labels.append(f"{cls.lower()}{oid}" if len(cls) == 1 else f"{cls}#{oid}")
    return "(" + " ".join(labels) + ")"
