"""HTTP admin endpoint: health, readiness, metrics, events, slow queries.

A deliberately tiny HTTP/1.1 server (asyncio streams on the service's
existing event loop, no dependencies) bound to a *side port* so that
operational probes never compete with query traffic on the wire-protocol
listener.  GET routes:

* ``/healthz`` — liveness: ``200 ok`` while the event loop is alive;
* ``/readyz`` — readiness: ``200`` once the default database is mounted
  and the service is not draining, ``503`` otherwise; the JSON body says
  which (``{"ready": ..., "draining": ..., "databases": [...]}``);
* ``/metrics`` — the shared registry in Prometheus text exposition
  format (scrape this);
* ``/events?type=T&after=N&limit=N`` — the structured event ring as a
  JSON array (``after`` resumes from a sequence number);
* ``/slow-queries?limit=N`` — captured slow-query records as JSON;
* ``/views`` — one row per materialized view across mounted databases
  (name, definition, pattern count, change version).

Anything else is ``404``; non-GET methods are ``405``.  Responses are
``Connection: close`` — every probe is one short-lived connection, which
keeps the implementation honest (no keep-alive state) and is exactly how
``curl``/Kubernetes probes behave anyway.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.service import QueryService

__all__ = ["AdminServer"]

_MAX_REQUEST_BYTES = 8192

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}


class AdminServer:
    """The admin side-port of one :class:`~repro.server.service.QueryService`."""

    def __init__(self, service: "QueryService") -> None:
        self.service = service
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None

    async def start(self, host: str, port: int) -> None:
        """Bind the admin listener; ``self.port`` holds the actual port."""
        self._server = await asyncio.start_server(self._handle, host, port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener (in-flight probe responses finish on close)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            raw = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=10.0
            )
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            asyncio.TimeoutError,
            ConnectionError,
        ):
            writer.close()
            return
        if len(raw) > _MAX_REQUEST_BYTES:
            await self._respond(writer, 400, "text/plain", "request too large\n")
            return
        request_line = raw.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = request_line.split()
        if len(parts) != 3:
            await self._respond(writer, 400, "text/plain", "malformed request\n")
            return
        method, target, _version = parts
        if method != "GET":
            await self._respond(writer, 405, "text/plain", "GET only\n")
            return
        status, content_type, body = self._route(target)
        await self._respond(writer, status, content_type, body)

    def _route(self, target: str) -> tuple[int, str, str]:
        """Dispatch one GET target to ``(status, content-type, body)``."""
        url = urlsplit(target)
        params = parse_qs(url.query)

        def _int_param(name: str) -> int | None:
            values = params.get(name)
            if not values:
                return None
            try:
                return int(values[0])
            except ValueError:
                return None

        path = url.path.rstrip("/") or "/"
        if path == "/healthz":
            return 200, "text/plain; charset=utf-8", "ok\n"
        if path == "/readyz":
            snapshot = self.service.readiness()
            status = 200 if snapshot["ready"] else 503
            return (
                status,
                "application/json",
                json.dumps(snapshot, sort_keys=True) + "\n",
            )
        if path == "/metrics":
            from repro.obs.export import metrics_to_prometheus

            return (
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                metrics_to_prometheus(self.service.metrics),
            )
        if path == "/events":
            type_values = params.get("type")
            events = self.service.events.events(
                type=type_values[0] if type_values else None,
                after=_int_param("after"),
                limit=_int_param("limit"),
            )
            body = json.dumps(
                [event.to_dict() for event in events], sort_keys=True, default=str
            )
            return 200, "application/json", body + "\n"
        if path == "/views":
            body = json.dumps(self.service.view_rows(), sort_keys=True, default=str)
            return 200, "application/json", body + "\n"
        if path == "/slow-queries":
            records = self.service.slow_queries.records(limit=_int_param("limit"))
            body = json.dumps(records, sort_keys=True, default=str)
            return 200, "application/json", body + "\n"
        return 404, "text/plain; charset=utf-8", f"no route {url.path}\n"

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, content_type: str, body: str
    ) -> None:
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        try:
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    def __str__(self) -> str:
        return f"AdminServer(port={self.port})"
