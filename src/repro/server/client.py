"""Blocking client for the concurrent query service.

:class:`ServerClient` speaks the length-prefixed JSON protocol of
:mod:`repro.server.protocol` over one TCP connection (= one server-side
session).  It is deliberately synchronous — tests, benchmarks and the
``repro client`` CLI all want a plain call-and-return surface::

    from repro.server import ServerClient

    with ServerClient("127.0.0.1", 7411) as client:
        client.open("university")
        result = client.query("pi(TA * Grad)[TA]", values_of=["TA"])
        result.count          # 2
        result.values["TA"]   # the TA values (here: none carried)
        print(client.metrics())  # Prometheus snapshot over the wire

Error frames raise the matching :class:`~repro.server.protocol.ServerError`
subclass (``timeout`` → :class:`~repro.server.protocol.QueryTimeoutError`,
``overloaded`` → :class:`~repro.server.protocol.ServerOverloadedError`,
...), so callers handle structured failures as exceptions.

Cross-process tracing: ``query(trace=True)`` stamps a fresh trace
context (``trace_id`` + the client root's span id) into the request,
reconstructs the span tree the server returns
(:func:`~repro.obs.export.spans_from_wire`), rebases it onto this
process's ``perf_counter`` timeline, and mounts it under a local
``client.call`` root — :attr:`RemoteResult.tracer` then holds one
stitched end-to-end tree (client call → ``server.request`` →
``server.queue_wait`` + engine operator spans) ready for
:func:`~repro.obs.export.spans_to_tree` or a Chrome ``trace_event``
export.
"""

from __future__ import annotations

import socket
import time
import uuid
from collections import deque
from typing import Any

from repro.obs.export import spans_from_wire
from repro.obs.span import Tracer
from repro.server.protocol import (
    ProtocolError,
    ServerError,
    error_to_exception,
    recv_frame,
    send_frame,
    wire_to_labels,
)

__all__ = ["RemoteResult", "ServerClient"]


def _rebase(span, offset: float) -> None:
    """Shift a reconstructed span tree onto this process's timeline.

    Server spans carry the *server's* ``perf_counter`` values; adding
    ``send_time - server_root_start`` places the server root exactly at
    the moment the client sent the request, preserving every relative
    duration.  On loopback the true clock skew is negligible, so the
    stitched tree nests correctly; across hosts it is still the honest
    best effort (relative durations stay exact, absolute placement is
    approximate).
    """
    for node, _ in span.walk():
        node.start += offset
        if node.end is not None:
            node.end += offset


class RemoteResult:
    """One query's response, materialized client-side.

    ``patterns`` holds the wire-encoded patterns of every page (the
    client follows ``cursor`` chains transparently unless told not to);
    ``values`` maps class name → sorted value list for each requested
    ``values_of`` class; ``explain``/``trace`` are present when requested.
    """

    def __init__(self, response: dict[str, Any]) -> None:
        self.count: int = int(response.get("count", 0))
        self.patterns: list[dict[str, Any]] = list(response.get("patterns", ()))
        self.values: dict[str, list[Any]] = dict(response.get("values", {}))
        self.explain: str | None = response.get("explain")
        self.trace: list[dict[str, Any]] | None = response.get("trace")
        self.strategy: str | None = response.get("strategy")
        self.elapsed_ms: float | None = response.get("elapsed_ms")
        self.queue_wait_ms: float | None = response.get("queue_wait_ms")
        self.cursor: str | None = response.get("cursor")
        #: Stamped trace id (``query(trace=True)`` / ``trace_stamp=True``).
        self.trace_id: str | None = response.get("trace_id")
        #: The stitched client+server span tree (``trace=True`` only).
        self.tracer: "Tracer | None" = None

    def labels(self) -> list[str]:
        """Human renderings of the patterns (``(ta1 grad1)``-style)."""
        return [wire_to_labels(p) for p in self.patterns]

    def __len__(self) -> int:
        return self.count

    def __str__(self) -> str:
        return f"RemoteResult({self.count} pattern(s), strategy={self.strategy})"


class ServerClient:
    """One blocking connection (= one session) to a query service."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServerError(
                f"cannot connect to {host}:{port}: {exc}", "connection"
            ) from exc
        #: Notification frames (``view.delta``/``view.resync``/...) read
        #: off the wire while waiting for a response; drained in arrival
        #: order by :meth:`next_notification`.
        self._notifications: deque = deque()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _rpc(self, request: dict[str, Any]) -> dict[str, Any]:
        """One request/response round trip; error frames raise.

        The server may interleave subscription push frames ahead of the
        response (a session's own mutate delivers the view delta before
        the ack); anything carrying ``notify`` is buffered, the first
        non-notification frame is the response.
        """
        try:
            send_frame(self._sock, request)
            while True:
                response = recv_frame(self._sock)
                if response is None or "notify" not in response:
                    break
                self._notifications.append(response)
        except OSError as exc:
            raise ServerError(f"connection failed: {exc}", "connection") from exc
        if response is None:
            raise ProtocolError("server closed the connection")
        if not response.get("ok"):
            raise error_to_exception(response.get("error", {}))
        return response

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        """Round-trip liveness check; returns the session id and version."""
        return self._rpc({"op": "ping"})

    def open(self, database: str) -> dict[str, Any]:
        """Mount a server-side database for this session."""
        return self._rpc({"op": "open", "database": database})

    def query(
        self,
        q: str,
        *,
        values_of: "list[str] | tuple[str, ...]" = (),
        explain: bool = False,
        trace: bool = False,
        trace_stamp: bool = False,
        compact: bool | None = None,
        use_cache: bool = True,
        timeout: float | None = None,
        page_size: int | None = None,
        fetch_all: bool = True,
    ) -> RemoteResult:
        """Evaluate OQL text server-side and return a :class:`RemoteResult`.

        ``timeout`` is the *server-side* deadline (queue wait included);
        ``page_size`` bounds patterns per frame, and ``fetch_all=True``
        (default) follows the cursor until every page has arrived.

        ``trace=True`` stamps a trace context, asks the server for its
        span tree, and stitches it under a local ``client.call`` root
        (:attr:`RemoteResult.tracer`); ``trace_stamp=True`` stamps the
        context *without* span collection — the cheap mode that still
        correlates the server's event log by ``trace_id``.
        """
        request: dict[str, Any] = {
            "op": "query",
            "q": q,
            "explain": explain,
            "trace": trace,
            "use_cache": use_cache,
        }
        if values_of:
            request["values_of"] = list(values_of)
        if compact is not None:
            request["compact"] = compact
        if timeout is not None:
            request["timeout"] = timeout
        if page_size is not None:
            request["page_size"] = page_size

        tracer: Tracer | None = None
        root = None
        if trace or trace_stamp:
            trace_id = uuid.uuid4().hex
            span_id = uuid.uuid4().hex[:16]
            request["trace_ctx"] = {"trace_id": trace_id, "parent_span_id": span_id}
        if trace:
            tracer = Tracer()
            root = tracer.begin(
                "client.call",
                op="query",
                server=f"{self.host}:{self.port}",
                trace_id=trace_id,
                span_id=span_id,
            )
        sent_at = time.perf_counter()
        try:
            response = self._rpc(request)
        except BaseException as exc:
            if tracer is not None and root is not None:
                tracer.finish(root, error=type(exc).__name__)
            raise
        result = RemoteResult(response)
        while fetch_all and result.cursor is not None:
            page = self._rpc({"op": "fetch", "cursor": result.cursor})
            result.patterns.extend(page.get("patterns", ()))
            result.cursor = page.get("cursor")
        if tracer is not None and root is not None:
            for remote_root in spans_from_wire(result.trace or ()):
                _rebase(remote_root, sent_at - remote_root.start)
                root.children.append(remote_root)
            tracer.finish(root, output=result.count)
            result.tracer = tracer
        return result

    def mutate(
        self,
        mutations: "list[dict[str, Any]] | tuple[dict[str, Any], ...]",
        *,
        durable: bool = True,
    ) -> dict[str, Any]:
        """Apply a batch of mutations to the session's database.

        Each mutation is a dict with an ``action`` key::

            {"action": "insert",       "classes": ["TA", "Grad"], "value": None}
            {"action": "insert_value", "cls": "GPA", "value": 3.8}
            {"action": "link",   "a": ["TA", 3], "b": ["Grad", 3],
                                 "assoc": "isa_TA_Grad"}   # assoc optional
            {"action": "unlink", "a": [...], "b": [...]}
            {"action": "delete", "instance": ["GPA", 41]}
            {"action": "update", "instance": ["GPA", 41], "value": 3.9}

        With ``durable`` (the default) the server acknowledges only
        after its storage engine flushed the WAL — a returned response
        means the batch survives ``kill -9``.  The response carries
        ``applied``, per-action ``results`` (created OIDs for inserts)
        and the engine's ``durable_seq``.
        """
        return self._rpc(
            {"op": "mutate", "mutations": list(mutations), "durable": durable}
        )

    def fetch(self, cursor: str) -> dict[str, Any]:
        """One explicit page of a paged result (``patterns`` + ``cursor``)."""
        return self._rpc({"op": "fetch", "cursor": cursor})

    def metrics(self) -> str:
        """The server's Prometheus metrics snapshot, over the wire."""
        return str(self._rpc({"op": "metrics"})["prometheus"])

    def events(
        self,
        *,
        type: str | None = None,
        after: int | None = None,
        limit: int | None = None,
    ) -> dict[str, Any]:
        """The server's structured event ring (``events`` + ``last_seq``).

        ``after`` resumes from a sequence number — remember the returned
        ``last_seq`` and pass it back to tail-follow without replays.
        """
        request: dict[str, Any] = {"op": "events"}
        if type is not None:
            request["type"] = type
        if after is not None:
            request["after"] = after
        if limit is not None:
            request["limit"] = limit
        return self._rpc(request)

    # ------------------------------------------------------------------
    # materialized views
    # ------------------------------------------------------------------

    def views(self) -> list[dict[str, Any]]:
        """Info rows for the session database's materialized views."""
        return list(self._rpc({"op": "views"}).get("views", ()))

    def create_view(self, name: str, q: str) -> dict[str, Any]:
        """Define and materialize a server-side view from OQL text."""
        return self._rpc({"op": "create_view", "name": name, "q": q})

    def drop_view(self, name: str) -> dict[str, Any]:
        return self._rpc({"op": "drop_view", "name": name})

    def subscribe(self, view: str) -> dict[str, Any]:
        """Open a live delta feed on ``view``; returns the initial snapshot.

        The response carries ``version`` and the full ``patterns``
        snapshot; subsequent changes arrive as ``view.delta`` /
        ``view.resync`` notification frames — read them with
        :meth:`next_notification`.  Apply a delta only when its
        ``version`` exceeds the last one seen (the snapshot's included);
        on ``view.resync`` replace the local copy wholesale.
        """
        return self._rpc({"op": "subscribe", "view": view})

    def unsubscribe(self, view: str) -> dict[str, Any]:
        return self._rpc({"op": "unsubscribe", "view": view})

    def next_notification(
        self, timeout: float | None = None
    ) -> dict[str, Any] | None:
        """The next buffered or wire notification frame, else ``None``.

        Blocks up to ``timeout`` seconds for a frame to arrive
        (``None`` = the connection's default timeout).  Returns ``None``
        on timeout; raises :class:`ProtocolError` if the server closes
        the connection or sends a non-notification frame while no
        request is in flight.
        """
        if self._notifications:
            return self._notifications.popleft()
        previous = self._sock.gettimeout()
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            frame = recv_frame(self._sock)
        except socket.timeout:
            return None
        except OSError as exc:
            raise ServerError(f"connection failed: {exc}", "connection") from exc
        finally:
            self._sock.settimeout(previous)
        if frame is None:
            raise ProtocolError(
                "server closed the connection while waiting for a notification"
            )
        if "notify" not in frame:
            raise ProtocolError(f"unexpected non-notification frame: {frame!r}")
        return frame

    def slow_queries(self, *, limit: int | None = None) -> dict[str, Any]:
        """Captured slow-query records (``slow_queries`` + ``total``)."""
        request: dict[str, Any] = {"op": "slow_queries"}
        if limit is not None:
            request["limit"] = limit
        return self._rpc(request)

    def close(self) -> None:
        """Polite goodbye (``close`` frame), then drop the socket."""
        try:
            self._rpc({"op": "close"})
        except (ServerError, ProtocolError):
            pass  # closing anyway
        finally:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __str__(self) -> str:
        return f"ServerClient({self.host}:{self.port})"
