"""Blocking client for the concurrent query service.

:class:`ServerClient` speaks the length-prefixed JSON protocol of
:mod:`repro.server.protocol` over one TCP connection (= one server-side
session).  It is deliberately synchronous — tests, benchmarks and the
``repro client`` CLI all want a plain call-and-return surface::

    from repro.server import ServerClient

    with ServerClient("127.0.0.1", 7411) as client:
        client.open("university")
        result = client.query("pi(TA * Grad)[TA]", values_of=["TA"])
        result.count          # 2
        result.values["TA"]   # the TA values (here: none carried)
        print(client.metrics())  # Prometheus snapshot over the wire

Error frames raise the matching :class:`~repro.server.protocol.ServerError`
subclass (``timeout`` → :class:`~repro.server.protocol.QueryTimeoutError`,
``overloaded`` → :class:`~repro.server.protocol.ServerOverloadedError`,
...), so callers handle structured failures as exceptions.
"""

from __future__ import annotations

import socket
from typing import Any

from repro.server.protocol import (
    ProtocolError,
    ServerError,
    error_to_exception,
    recv_frame,
    send_frame,
    wire_to_labels,
)

__all__ = ["RemoteResult", "ServerClient"]


class RemoteResult:
    """One query's response, materialized client-side.

    ``patterns`` holds the wire-encoded patterns of every page (the
    client follows ``cursor`` chains transparently unless told not to);
    ``values`` maps class name → sorted value list for each requested
    ``values_of`` class; ``explain``/``trace`` are present when requested.
    """

    def __init__(self, response: dict[str, Any]) -> None:
        self.count: int = int(response.get("count", 0))
        self.patterns: list[dict[str, Any]] = list(response.get("patterns", ()))
        self.values: dict[str, list[Any]] = dict(response.get("values", {}))
        self.explain: str | None = response.get("explain")
        self.trace: list[dict[str, Any]] | None = response.get("trace")
        self.strategy: str | None = response.get("strategy")
        self.elapsed_ms: float | None = response.get("elapsed_ms")
        self.cursor: str | None = response.get("cursor")

    def labels(self) -> list[str]:
        """Human renderings of the patterns (``(ta1 grad1)``-style)."""
        return [wire_to_labels(p) for p in self.patterns]

    def __len__(self) -> int:
        return self.count

    def __str__(self) -> str:
        return f"RemoteResult({self.count} pattern(s), strategy={self.strategy})"


class ServerClient:
    """One blocking connection (= one session) to a query service."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServerError(
                f"cannot connect to {host}:{port}: {exc}", "connection"
            ) from exc

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _rpc(self, request: dict[str, Any]) -> dict[str, Any]:
        """One request/response round trip; error frames raise."""
        try:
            send_frame(self._sock, request)
            response = recv_frame(self._sock)
        except OSError as exc:
            raise ServerError(f"connection failed: {exc}", "connection") from exc
        if response is None:
            raise ProtocolError("server closed the connection")
        if not response.get("ok"):
            raise error_to_exception(response.get("error", {}))
        return response

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        """Round-trip liveness check; returns the session id and version."""
        return self._rpc({"op": "ping"})

    def open(self, database: str) -> dict[str, Any]:
        """Mount a server-side database for this session."""
        return self._rpc({"op": "open", "database": database})

    def query(
        self,
        q: str,
        *,
        values_of: "list[str] | tuple[str, ...]" = (),
        explain: bool = False,
        trace: bool = False,
        compact: bool | None = None,
        use_cache: bool = True,
        timeout: float | None = None,
        page_size: int | None = None,
        fetch_all: bool = True,
    ) -> RemoteResult:
        """Evaluate OQL text server-side and return a :class:`RemoteResult`.

        ``timeout`` is the *server-side* deadline (queue wait included);
        ``page_size`` bounds patterns per frame, and ``fetch_all=True``
        (default) follows the cursor until every page has arrived.
        """
        request: dict[str, Any] = {
            "op": "query",
            "q": q,
            "explain": explain,
            "trace": trace,
            "use_cache": use_cache,
        }
        if values_of:
            request["values_of"] = list(values_of)
        if compact is not None:
            request["compact"] = compact
        if timeout is not None:
            request["timeout"] = timeout
        if page_size is not None:
            request["page_size"] = page_size
        result = RemoteResult(self._rpc(request))
        while fetch_all and result.cursor is not None:
            page = self._rpc({"op": "fetch", "cursor": result.cursor})
            result.patterns.extend(page.get("patterns", ()))
            result.cursor = page.get("cursor")
        return result

    def fetch(self, cursor: str) -> dict[str, Any]:
        """One explicit page of a paged result (``patterns`` + ``cursor``)."""
        return self._rpc({"op": "fetch", "cursor": cursor})

    def metrics(self) -> str:
        """The server's Prometheus metrics snapshot, over the wire."""
        return str(self._rpc({"op": "metrics"})["prometheus"])

    def close(self) -> None:
        """Polite goodbye (``close`` frame), then drop the socket."""
        try:
            self._rpc({"op": "close"})
        except (ServerError, ProtocolError):
            pass  # closing anyway
        finally:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __str__(self) -> str:
        return f"ServerClient({self.host}:{self.port})"
