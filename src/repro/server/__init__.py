"""The concurrent query service: wire protocol, asyncio server, client.

The A-algebra engine below this package is an in-process library; this
package puts a *service* in front of it, the way the paper positions the
algebra as the processing layer of a database server:

* :mod:`repro.server.protocol` — a length-prefixed JSON wire protocol
  (request/response/error frames, result paging, structured error codes);
* :mod:`repro.server.service` — :class:`QueryService`, an asyncio TCP
  server with per-connection sessions over shared named databases, a
  bounded admission queue with load shedding, per-request deadlines, and
  graceful drain; engine work runs on a worker thread pool so the event
  loop never blocks;
* :mod:`repro.server.client` — :class:`ServerClient`, the blocking
  client used by tests, benchmarks, and the ``repro client`` CLI; it can
  stamp a trace context and stitch the server's span tree under a local
  ``client.call`` root for end-to-end traces;
* :mod:`repro.server.admin` — :class:`AdminServer`, an HTTP side port
  serving ``/healthz``, ``/readyz``, ``/metrics``, ``/events`` and
  ``/slow-queries`` for probes and scrapers.

Quickstart::

    from repro.server import ServerConfig, ServerClient, start_server

    with start_server(ServerConfig(max_concurrency=4)) as server:
        with ServerClient(server.host, server.port) as client:
            result = client.query("pi(TA * Grad)[TA]", values_of=["TA"])
            print(result.count, client.metrics())

See ``docs/server.md`` for the protocol specification, the session
lifecycle, and the admission-control knobs.
"""

from repro.server.admin import AdminServer
from repro.server.client import RemoteResult, ServerClient
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    QueryTimeoutError,
    ServerError,
    ServerOverloadedError,
    ServerShuttingDownError,
)
from repro.server.service import (
    QueryService,
    ServerConfig,
    ServerHandle,
    Session,
    start_server,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServerError",
    "QueryTimeoutError",
    "ServerOverloadedError",
    "ServerShuttingDownError",
    "QueryService",
    "ServerConfig",
    "ServerHandle",
    "Session",
    "start_server",
    "ServerClient",
    "RemoteResult",
    "AdminServer",
]
