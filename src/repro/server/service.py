"""The concurrent query service: asyncio TCP server over ``Database.query``.

One :class:`QueryService` owns

* a catalog of named, lazily mounted :class:`~repro.engine.database.Database`
  instances — the bundled datasets plus an optional JSON snapshot — shared
  by every session (queries are read-only; concurrent readers are safe,
  see ``tests/test_thread_safety.py``);
* a per-connection :class:`Session` (current database, open paging
  cursors, request counter);
* a bounded admission pipeline: at most ``max_concurrency`` queries
  execute at once on a worker thread pool (the asyncio loop never blocks
  on engine work), at most ``queue_limit`` more may wait for a slot, and
  anything beyond that is *shed* with a structured ``overloaded`` error
  instead of a dropped connection;
* per-request deadlines: a request carries its own ``timeout`` (capped
  by ``max_deadline``); the budget covers queue wait plus execution, and
  an expiry returns a structured ``timeout`` error while other in-flight
  requests keep running (the abandoned engine call finishes on its worker
  thread and releases its slot then — cancellation is cooperative at the
  await point, best-effort at the engine);
* graceful drain: :meth:`stop` closes the listener, lets in-flight
  requests finish (up to ``drain_timeout``), answers anything newly read
  with ``shutting_down``, then closes the connections.

Observability: the service registers
``repro_server_requests_total{op,status}``, ``repro_server_inflight``,
``repro_server_queue_depth``, ``repro_server_request_seconds``,
``repro_server_queue_wait_seconds`` and ``repro_server_shed_total`` in
its :class:`~repro.obs.metrics.MetricsRegistry`, which is shared with
every mounted database — one ``metrics`` frame returns the whole
engine's Prometheus snapshot over the wire.  Beyond metrics, the live
observability pipeline has three more pieces (``docs/observability.md``,
"Operating the service"):

* a **structured event log** (:class:`~repro.obs.events.EventLog`)
  shared with every mounted database: request start/finish, admission
  sheds, timeouts, mutation batches, plan-cache invalidations, stats
  refreshes and replans all land in one bounded ring, drained by the
  ``events`` wire op / ``/events`` admin route / ``repro events`` CLI;
* **cross-process trace propagation**: a request may carry a
  ``trace_ctx`` (``trace_id`` + ``parent_span_id``); the service stamps
  both into its events and — when ``trace`` is requested — stitches a
  ``server.request`` span above the engine's span tree with an explicit
  ``server.queue_wait`` child covering admission wait, so the client can
  mount the returned tree under its own ``client.call`` root;
* a **slow-query log** (:class:`~repro.obs.events.SlowQueryLog`):
  queries over ``slow_query_threshold`` seconds (or whose EXPLAIN run
  shows a q-error over ``slow_query_q_error``) capture query text, the
  physical plan with strategy annotations, per-node est/actual
  cardinalities and q-errors, stats version and admission state.

With ``admin_port`` configured, an HTTP side port
(:class:`~repro.server.admin.AdminServer`) serves ``/healthz``,
``/readyz``, ``/metrics``, ``/events``, ``/slow-queries`` and ``/views``.

**Live view subscriptions** (``docs/views.md``): a session may
``subscribe`` to a materialized view of its current database.  The
service registers one :class:`~repro.views.registry.ViewRegistry`
listener per mounted database; view deltas are built into wire frames on
the mutating worker thread and handed to the event loop, which fans them
out into a bounded per-subscription queue (``subscription_queue``).  A
full queue drops the backlog and marks the subscription for **resync** —
the next flush sends one ``view.resync`` frame carrying the complete
current materialization instead of the lost deltas, so a subscriber
never sees a gap it cannot detect.  Push frames are written under a
per-session write lock, and every response write first flushes the
session's pending pushes — a client that mutates a view it subscribes to
receives the ``view.delta`` frame *before* the mutate acknowledgement.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.core.identity import IID
from repro.engine.database import Database
from repro.errors import ReproError, ViewError
from repro.obs.events import EventLog, SlowQueryLog
from repro.obs.export import metrics_to_prometheus, spans_to_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Span, Tracer
from repro.server.admin import AdminServer
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    error_response,
    pattern_to_wire,
    read_frame,
    write_frame,
)

__all__ = ["ServerConfig", "Session", "QueryService", "ServerHandle", "start_server"]

#: Dataset names sessions may ``open`` (mirrors the CLI's ``--dataset``).
DATASET_NAMES = ("university", "figure7", "supplier_parts", "parts_explosion")


def _trace_id_of(request: dict[str, Any]) -> str | None:
    """The client-stamped trace id of a request frame, if any."""
    ctx = request.get("trace_ctx")
    if isinstance(ctx, dict) and ctx.get("trace_id"):
        return str(ctx["trace_id"])
    return None


@dataclass
class ServerConfig:
    """Knobs of one :class:`QueryService` (see ``docs/server.md``)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands on service.port
    default_database: str = "university"
    snapshot_path: str | None = None  # mounted under the name "snapshot"
    max_concurrency: int = 4  # engine executions running at once
    queue_limit: int = 16  # requests allowed to wait for a slot
    default_deadline: float = 30.0  # seconds, when the request names none
    max_deadline: float = 300.0  # hard cap on requested deadlines
    drain_timeout: float = 10.0  # seconds stop() waits for in-flight work
    page_size: int = 500  # patterns per response page
    admin_port: int | None = None  # HTTP admin side port (None = disabled)
    slow_query_threshold: float | None = None  # seconds; None = no capture
    slow_query_q_error: float | None = None  # EXPLAIN max q-error trigger
    event_capacity: int = 1024  # event-ring size (0 disables the log)
    slow_query_capacity: int = 128  # slow-query ring size
    subscription_queue: int = 64  # pending push frames per subscription
    shards: int | None = None  # worker processes per mounted database


def _wire_patterns(patterns) -> list[dict[str, Any]]:
    """Wire-encode a pattern set in the service's canonical order."""
    return sorted(
        (pattern_to_wire(p) for p in patterns),
        key=lambda p: (p["vertices"], p["edges"]),
    )


@dataclass
class _Subscription:
    """One session's live feed of one view's deltas.

    ``queue`` holds wire-ready push frames awaiting the session's next
    flush.  When it would exceed ``ServerConfig.subscription_queue`` the
    backlog is dropped and ``needs_resync`` records why; the next flush
    then sends one ``view.resync`` frame with the full materialization
    instead of the lost deltas.
    """

    view: str
    queue: deque = field(default_factory=deque)
    needs_resync: str | None = None


@dataclass(eq=False)
class Session:
    """Per-connection state: identity, mounted database, paging cursors.

    ``eq=False`` keeps identity hashing — the service tracks sessions in
    per-view subscriber sets.
    """

    id: str
    database_name: str
    database: Database
    peer: str = ""
    requests: int = 0
    cursors: dict[str, list[list[dict[str, Any]]]] = field(default_factory=dict)
    subscriptions: dict[str, _Subscription] = field(default_factory=dict)
    writer: asyncio.StreamWriter | None = None
    write_lock: asyncio.Lock | None = None


class QueryService:
    """Asyncio TCP query service over a catalog of shared databases."""

    def __init__(
        self, config: ServerConfig | None = None, metrics: MetricsRegistry | None = None
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.port: int | None = None  # set once the listener is bound
        self.admin_port: int | None = None  # set once the admin port is bound
        #: One event ring for the whole process: engine events from every
        #: mounted database interleave with the service's request events.
        self.events = EventLog(self.config.event_capacity, self.metrics)
        self.slow_queries = SlowQueryLog(
            self.config.slow_query_capacity, self.metrics
        )
        self._admin: AdminServer | None = None
        self._databases: dict[str, Database] = {}
        self._db_lock = threading.Lock()
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="repro-server",
        )
        self._slots: asyncio.Semaphore | None = None  # created on the loop
        self._queued = 0
        self._active_requests = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._connections: set[asyncio.StreamWriter] = set()
        self._sessions = 0
        #: (database name, view name) → sessions subscribed to that view.
        #: Mutated only on the event loop; read from worker threads to
        #: skip frame building when nobody is listening.
        self._view_sessions: dict[tuple[str, str], set[Session]] = {}
        self._push_tasks: set[asyncio.Task] = set()

        self._m_requests = self.metrics.counter(
            "repro_server_requests_total", "Server requests handled, by op and status"
        )
        self._m_inflight = self.metrics.gauge(
            "repro_server_inflight", "Queries currently executing on worker threads"
        )
        self._m_queue_depth = self.metrics.gauge(
            "repro_server_queue_depth", "Queries waiting for an execution slot"
        )
        self._m_shed = self.metrics.counter(
            "repro_server_shed_total", "Requests shed because the admission queue was full"
        )
        self._m_request_seconds = self.metrics.histogram(
            "repro_server_request_seconds", "Wall-clock seconds per server request, by op"
        )
        self._m_queue_wait = self.metrics.histogram(
            "repro_server_queue_wait_seconds",
            "Seconds an admitted query waited for an execution slot",
        )
        self._m_sessions = self.metrics.gauge(
            "repro_server_sessions", "Currently connected sessions"
        )

    # ------------------------------------------------------------------
    # database catalog
    # ------------------------------------------------------------------

    def database(self, name: str) -> Database:
        """The shared database mounted under ``name`` (lazy, cached).

        Known names are the bundled datasets plus ``"snapshot"`` when the
        config points at a JSON snapshot or storage directory.  All
        sessions opening one name
        share a single :class:`Database`; the engine's derived state
        (plan cache, arena, indexes) is safe under concurrent readers.
        """
        with self._db_lock:
            db = self._databases.get(name)
            if db is not None:
                return db
            if name == "snapshot" and self.config.snapshot_path is not None:
                # A storage directory mounts durable (WAL + recovery); a
                # JSON file mounts as the classic in-memory snapshot.
                db = Database.open(
                    self.config.snapshot_path,
                    create=False,
                    metrics=self.metrics,
                    events=self.events,
                )
            elif name in DATASET_NAMES:
                import repro.datasets as datasets

                dataset = getattr(datasets, name)()
                db = Database(
                    dataset.schema,
                    dataset.graph,
                    metrics=self.metrics,
                    events=self.events,
                )
            else:
                raise LookupError(name)
            # Fan this database's view deltas out to wire subscriptions.
            db.views.subscribe(self._make_view_listener(name))
            if self.config.shards is not None and self.config.shards > 1:
                # sharded serving: queries default to scatter-gather over
                # the pool (``shard.pool_start`` lands in the event log)
                db.start_shards(self.config.shards)
            self._databases[name] = db
            return db

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener; ``self.port`` holds the actual port."""
        self._loop = asyncio.get_running_loop()
        self._slots = asyncio.Semaphore(self.config.max_concurrency)
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.admin_port is not None:
            self._admin = AdminServer(self)
            await self._admin.start(self.config.host, self.config.admin_port)
            self.admin_port = self._admin.port
        # Mount the default database eagerly so the first query pays no
        # dataset-construction latency.
        self.database(self.config.default_database)
        self.events.emit(
            "server.start", host=self.config.host, port=self.port,
            admin_port=self.admin_port,
        )

    async def serve_forever(self) -> None:
        """Serve until cancelled (``start`` must have run)."""
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work, close."""
        self._draining = True
        self.events.emit("server.drain", active_requests=self._active_requests)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), self.config.drain_timeout)
        except asyncio.TimeoutError:
            pass  # drain window elapsed; close connections regardless
        if self._admin is not None:
            await self._admin.stop()
        for task in tuple(self._push_tasks):
            task.cancel()
        for writer in tuple(self._connections):
            writer.close()
        self._pool.shutdown(wait=False)
        # Flush every mounted database's storage engine: a durable mount
        # checkpoints its WAL tail so the next open recovers instantly.
        for name in sorted(self._databases):
            try:
                self._databases[name].close()
            except ReproError:  # pragma: no cover — close must not block stop
                pass
        self.events.emit("server.stop")

    def readiness(self) -> dict[str, Any]:
        """The ``/readyz`` snapshot: catalog mount state and drain state."""
        mounted = sorted(self._databases)
        return {
            "ready": bool(
                not self._draining and self.config.default_database in mounted
            ),
            "draining": self._draining,
            "databases": mounted,
        }

    # ------------------------------------------------------------------
    # view subscriptions
    # ------------------------------------------------------------------

    def _make_view_listener(self, db_name: str):
        """A ViewRegistry listener fanning deltas out to subscribed sessions.

        Runs on whichever thread committed the mutation (a server worker,
        usually), while the database's write lock is held — so it only
        *builds* the wire frame there and hands delivery to the event
        loop.  ``call_soon_threadsafe`` preserves scheduling order, which
        makes the delta-before-ack guarantee deterministic: the fanout
        callback is queued during the DML call, strictly before the
        worker's own completion callback resolves the mutate future.
        """

        def listener(view, added, removed, origin: str) -> None:
            loop = self._loop
            if loop is None or loop.is_closed():
                return
            key = (db_name, view.name)
            if not self._view_sessions.get(key):
                return
            frame = {
                "notify": "view.delta",
                "database": db_name,
                "view": view.name,
                "version": view.version,
                "origin": origin,
                "added": _wire_patterns(added),
                "removed": _wire_patterns(removed),
            }
            try:
                loop.call_soon_threadsafe(self._fanout_view_frame, key, frame)
            except RuntimeError:  # pragma: no cover — loop closed mid-call
                pass

        return listener

    def _fanout_view_frame(self, key: tuple[str, str], frame: dict[str, Any]) -> None:
        """Queue one push frame on every subscribed session (loop thread)."""
        for session in list(self._view_sessions.get(key, ())):
            sub = session.subscriptions.get(frame["view"])
            if sub is None:
                continue
            if (
                sub.needs_resync is None
                and len(sub.queue) >= self.config.subscription_queue
            ):
                sub.queue.clear()
                sub.needs_resync = "overflow"
                self.events.emit(
                    "subscription.overflow",
                    session=session.id,
                    view=frame["view"],
                    database=key[0],
                )
            if sub.needs_resync is None:
                sub.queue.append(frame)
            self._schedule_push(session)

    def _schedule_push(self, session: Session) -> None:
        """Flush a session's pending pushes soon (idempotent per frame)."""
        if session.writer is None:
            return
        task = asyncio.ensure_future(self._flush_session(session))
        self._push_tasks.add(task)
        task.add_done_callback(self._push_tasks.discard)

    async def _flush_session(self, session: Session) -> None:
        """Write every queued push frame for ``session`` (loop thread)."""
        writer, lock = session.writer, session.write_lock
        if writer is None or lock is None or not session.subscriptions:
            return
        async with lock:
            try:
                for sub in list(session.subscriptions.values()):
                    await self._drain_subscription(session, writer, sub)
            except (ConnectionError, OSError):
                pass  # the connection handler notices and cleans up

    async def _drain_subscription(
        self, session: Session, writer: asyncio.StreamWriter, sub: _Subscription
    ) -> None:
        if sub.needs_resync is not None:
            reason, sub.needs_resync = sub.needs_resync, None
            sub.queue.clear()
            try:
                view = session.database.views.get(sub.view)
            except ViewError:
                # The view was dropped while the backlog overflowed.
                session.subscriptions.pop(sub.view, None)
                self._unregister_subscription(session, sub.view)
                await write_frame(
                    writer,
                    {
                        "notify": "view.dropped",
                        "database": session.database_name,
                        "view": sub.view,
                        "reason": reason,
                    },
                )
                return
            await write_frame(
                writer,
                {
                    "notify": "view.resync",
                    "database": session.database_name,
                    "view": sub.view,
                    "version": view.version,
                    "reason": reason,
                    "patterns": _wire_patterns(view.patterns),
                    "count": len(view.patterns),
                },
            )
        while sub.queue:
            await write_frame(writer, sub.queue.popleft())

    def _register_subscription(self, session: Session, view_name: str) -> None:
        key = (session.database_name, view_name)
        self._view_sessions.setdefault(key, set()).add(session)

    def _unregister_subscription(self, session: Session, view_name: str) -> None:
        key = (session.database_name, view_name)
        sessions = self._view_sessions.get(key)
        if sessions is not None:
            sessions.discard(session)
            if not sessions:
                del self._view_sessions[key]

    def _drop_session_subscriptions(self, session: Session) -> None:
        for name in list(session.subscriptions):
            self._unregister_subscription(session, name)
        session.subscriptions.clear()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        session = Session(
            id=uuid.uuid4().hex[:12],
            database_name=self.config.default_database,
            database=self.database(self.config.default_database),
            peer=str(peer),
            writer=writer,
            write_lock=asyncio.Lock(),
        )
        self._sessions += 1
        self._m_sessions.inc()
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    async with session.write_lock:
                        await write_frame(
                            writer, error_response("bad_request", str(exc))
                        )
                    break
                if request is None:
                    break  # client closed cleanly
                response = await self._handle_request(session, request)
                # Push frames this request itself caused (view deltas from
                # a mutate) flush *before* the response: a session that
                # mutates a view it subscribes to reads the delta, then
                # the acknowledgement.
                await self._flush_session(session)
                async with session.write_lock:
                    await write_frame(writer, response)
                if request.get("op") == "close":
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # peer went away or the server is closing down
        finally:
            self._drop_session_subscriptions(session)
            session.writer = None
            self._connections.discard(writer)
            self._m_sessions.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------

    async def _handle_request(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        op = str(request.get("op", ""))
        trace_id = _trace_id_of(request)
        session.requests += 1
        started = time.perf_counter()
        self._track_request(+1)
        self.events.emit(
            "request.start", trace_id=trace_id, op=op or "?", session=session.id
        )
        response: dict[str, Any]
        try:
            response = await self._dispatch(session, op, request)
        except ReproError as exc:
            response = error_response("engine_error", str(exc))
        finally:
            elapsed = time.perf_counter() - started
            self._m_request_seconds.observe(elapsed, op=op or "?")
            self._track_request(-1)
        status = (
            "ok" if response.get("ok") else response.get("error", {}).get("code", "?")
        )
        self.events.emit(
            "request.finish",
            trace_id=trace_id,
            op=op or "?",
            session=session.id,
            status=status,
            elapsed_ms=round(elapsed * 1e3, 3),
        )
        return response

    async def _dispatch(
        self, session: Session, op: str, request: dict[str, Any]
    ) -> dict[str, Any]:
        """Route one request frame to its op handler."""
        if self._draining:
            return error_response("shutting_down", "server is draining")
        if op == "ping":
            self._count("ping", "ok")
            return {
                "ok": True,
                "pong": True,
                "session": session.id,
                "protocol": PROTOCOL_VERSION,
            }
        if op == "open":
            return self._op_open(session, request)
        if op == "query":
            return await self._op_query(session, request)
        if op == "mutate":
            return await self._op_mutate(session, request)
        if op == "fetch":
            return self._op_fetch(session, request)
        if op == "views":
            return self._op_views(session)
        if op == "subscribe":
            return self._op_subscribe(session, request)
        if op == "unsubscribe":
            return self._op_unsubscribe(session, request)
        if op == "create_view":
            return await self._op_create_view(session, request)
        if op == "drop_view":
            return await self._op_drop_view(session, request)
        if op == "metrics":
            self._count("metrics", "ok")
            return {"ok": True, "prometheus": metrics_to_prometheus(self.metrics)}
        if op == "events":
            return self._op_events(request)
        if op == "slow_queries":
            return self._op_slow_queries(request)
        if op == "close":
            return {"ok": True, "closed": True, "requests": session.requests}
        return error_response("bad_request", f"unknown op {op!r}")

    def _track_request(self, delta: int) -> None:
        self._active_requests += delta
        if self._active_requests == 0:
            self._idle.set()
        else:
            self._idle.clear()

    def _count(self, op: str, status: str) -> None:
        self._m_requests.inc(op=op, status=status)

    # -- open ----------------------------------------------------------

    def _op_open(self, session: Session, request: dict[str, Any]) -> dict[str, Any]:
        name = str(request.get("database", ""))
        try:
            database = self.database(name)
        except LookupError:
            self._count("open", "error")
            known = list(DATASET_NAMES)
            if self.config.snapshot_path is not None:
                known.append("snapshot")
            return error_response(
                "unknown_database", f"unknown database {name!r}; known: {known}"
            )
        self._drop_session_subscriptions(session)
        session.database_name = name
        session.database = database
        session.cursors.clear()
        self._count("open", "ok")
        return {
            "ok": True,
            "database": name,
            "classes": len(database.schema.classes),
            "instances": len(list(database.graph.instances())),
        }

    # -- query ---------------------------------------------------------

    async def _op_query(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        text = request.get("q")
        if not isinstance(text, str) or not text.strip():
            self._count("query", "error")
            return error_response("bad_request", "query op requires a 'q' string")
        deadline = request.get("timeout")
        try:
            deadline = (
                float(deadline)
                if deadline is not None
                else self.config.default_deadline
            )
        except (TypeError, ValueError):
            self._count("query", "error")
            return error_response("bad_request", f"bad timeout {deadline!r}")
        deadline = min(max(deadline, 0.001), self.config.max_deadline)
        expires = time.monotonic() + deadline
        trace_id = _trace_id_of(request)
        received = time.perf_counter()

        # Admission: when every slot is busy and the wait queue is full,
        # shed; otherwise queue for a slot.
        assert self._slots is not None
        if self._slots.locked() and self._queued >= self.config.queue_limit:
            self._m_shed.inc()
            self._count("query", "shed")
            self.events.emit(
                "admission.shed",
                trace_id=trace_id,
                session=session.id,
                queued=self._queued,
                queue_limit=self.config.queue_limit,
            )
            return error_response(
                "overloaded",
                f"admission queue full ({self.config.queue_limit} waiting)",
            )
        self._queued += 1
        self._m_queue_depth.set(self._queued)
        try:
            try:
                await asyncio.wait_for(
                    self._slots.acquire(), timeout=expires - time.monotonic()
                )
            except asyncio.TimeoutError:
                self._count("query", "timeout")
                self.events.emit(
                    "request.timeout",
                    trace_id=trace_id,
                    session=session.id,
                    where="queue",
                    deadline=deadline,
                )
                return error_response(
                    "timeout", f"deadline of {deadline:g}s elapsed in queue"
                )
        finally:
            self._queued -= 1
            self._m_queue_depth.set(self._queued)
        admitted = time.perf_counter()
        self._m_queue_wait.observe(admitted - received)

        # One slot held: run the engine work on the pool, under deadline.
        self._m_inflight.inc()
        assert self._loop is not None
        future = self._loop.run_in_executor(
            self._pool, self._execute_query, session, text, request, received, admitted
        )

        def _release(_):
            # The slot frees only when the engine call truly finished —
            # a timed-out request's zombie thread keeps holding it.
            self._m_inflight.dec()
            self._slots.release()

        future.add_done_callback(_release)
        try:
            response = await asyncio.wait_for(
                asyncio.shield(future), timeout=expires - time.monotonic()
            )
        except asyncio.TimeoutError:
            self._count("query", "timeout")
            self.events.emit(
                "request.timeout",
                trace_id=trace_id,
                session=session.id,
                where="execution",
                deadline=deadline,
            )
            return error_response(
                "timeout", f"deadline of {deadline:g}s exceeded during execution"
            )
        except ReproError as exc:
            self._count("query", "error")
            return error_response("engine_error", str(exc))
        self._count("query", "ok" if response.get("ok") else "error")
        return response

    def _execute_query(
        self,
        session: Session,
        text: str,
        request: dict[str, Any],
        received: float | None = None,
        admitted: float | None = None,
    ) -> dict[str, Any]:
        """Engine work, on a worker thread.  Returns a response frame.

        ``received``/``admitted`` are the loop's ``perf_counter`` stamps
        at frame receipt and slot acquisition; the traced
        ``server.request`` span is rebased to start at ``received`` with
        an explicit ``server.queue_wait`` child covering the gap, so the
        admission wait the asyncio side imposed is visible in the tree a
        remote client stitches.
        """
        db = session.database
        explain = bool(request.get("explain", False))
        want_trace = bool(request.get("trace", False))
        compact = request.get("compact")
        use_cache = bool(request.get("use_cache", True))
        trace_ctx = request.get("trace_ctx")
        trace_ctx = trace_ctx if isinstance(trace_ctx, dict) else {}
        trace_id = _trace_id_of(request)

        tracer = Tracer() if want_trace else None
        started = time.perf_counter()
        if tracer is not None:
            # The service's span sits above the engine's span tree, so the
            # export shows the server request wrapping the executor spans.
            attrs: dict[str, Any] = {
                "op": "query",
                "session": session.id,
                "database": session.database_name,
            }
            if trace_id:
                attrs["trace_id"] = trace_id
            if trace_ctx.get("parent_span_id"):
                attrs["parent_span_id"] = str(trace_ctx["parent_span_id"])
            with tracer.span("server.request", **attrs) as server_span:
                if received is not None and admitted is not None:
                    # Rebase the root to frame-receipt time and make the
                    # admission wait an explicit child span (appended
                    # directly: it already ended before this thread ran).
                    server_span.start = received
                    queue_span = Span(
                        "server.queue_wait", start=received, end=admitted
                    )
                    server_span.children.append(queue_span)
                result = db.query(
                    text,
                    trace=tracer,
                    explain=explain,
                    compact=compact if isinstance(compact, bool) else None,
                    use_cache=use_cache,
                )
        else:
            result = db.query(
                text,
                explain=explain,
                compact=compact if isinstance(compact, bool) else None,
                use_cache=use_cache,
            )
        finished = time.perf_counter()
        elapsed_ms = (finished - started) * 1e3

        wire_patterns = sorted(
            (pattern_to_wire(p) for p in result.set),
            key=lambda p: (p["vertices"], p["edges"]),
        )
        queue_wait_ms = (
            (admitted - received) * 1e3
            if received is not None and admitted is not None
            else 0.0
        )
        response: dict[str, Any] = {
            "ok": True,
            "count": len(wire_patterns),
            "strategy": result.strategy,
            "elapsed_ms": round(elapsed_ms, 3),
            "queue_wait_ms": round(queue_wait_ms, 3),
        }
        if trace_id:
            response["trace_id"] = trace_id

        page_size = int(request.get("page_size") or self.config.page_size)
        page_size = max(1, page_size)
        if len(wire_patterns) > page_size:
            pages = [
                wire_patterns[i : i + page_size]
                for i in range(page_size, len(wire_patterns), page_size)
            ]
            cursor = uuid.uuid4().hex[:12]
            session.cursors[cursor] = pages
            response["patterns"] = wire_patterns[:page_size]
            response["cursor"] = cursor
        else:
            response["patterns"] = wire_patterns
            response["cursor"] = None

        values_of = request.get("values_of") or ()
        if values_of:
            response["values"] = {
                cls: sorted(result.values(cls), key=repr) for cls in values_of
            }
        if explain and result.report is not None:
            response["explain"] = str(result.report)
        if tracer is not None:
            response["trace"] = [
                json.loads(line) for line in spans_to_jsonl(tracer).splitlines()
            ]

        # The capture trigger measures *request* latency (queue wait and
        # worker dispatch included) — what the caller experienced — not
        # just the engine call.
        request_elapsed_s = (
            finished - received if received is not None else elapsed_ms / 1e3
        )
        self._maybe_capture_slow(
            session,
            text,
            result,
            elapsed_s=request_elapsed_s,
            queue_wait_ms=queue_wait_ms,
            trace_id=trace_id,
        )
        return response

    def _maybe_capture_slow(
        self,
        session: Session,
        text: str,
        result: Any,
        *,
        elapsed_s: float,
        queue_wait_ms: float,
        trace_id: str | None,
    ) -> None:
        """Record a slow-query entry when a capture threshold trips.

        Two independent triggers: wall-clock latency over
        ``slow_query_threshold``, and (when the request already ran
        EXPLAIN) a worst-node q-error over ``slow_query_q_error``.  The
        per-node estimate/actual detail comes from a *diagnostic*
        ``explain_analyze`` rerun on this worker thread — paid only for
        queries that already tripped a threshold, never on the hot path.
        """
        threshold = self.config.slow_query_threshold
        q_threshold = self.config.slow_query_q_error
        if threshold is None and q_threshold is None:
            return
        reason = None
        if threshold is not None and elapsed_s >= threshold:
            reason = "latency"
        if (
            reason is None
            and q_threshold is not None
            and getattr(result, "report", None) is not None
            and result.report.max_q_error >= q_threshold
        ):
            reason = "q_error"
        if reason is None:
            return

        db = session.database
        entry: dict[str, Any] = {
            "query": text,
            "database": session.database_name,
            "session": session.id,
            "reason": reason,
            "elapsed_ms": round(elapsed_s * 1e3, 3),
            "queue_wait_ms": round(queue_wait_ms, 3),
            "strategy": result.strategy,
            "stats_version": db.stats.version,
            "admission": {
                "inflight": self._active_requests,
                "queued": self._queued,
            },
        }
        if trace_id:
            entry["trace_id"] = trace_id
        try:
            report = db.explain_analyze(text)
            entry["plan"] = report.pretty()
            entry["max_q_error"] = round(report.max_q_error, 3)
            entry["nodes"] = [
                {
                    "operator": node.text,
                    "kind": node.kind,
                    "strategy": node.strategy,
                    "depth": depth,
                    "estimated": node.estimated,
                    "actual": node.actual,
                    "q_error": round(node.q_error, 3),
                }
                for node, depth in report.walk()
            ]
        except ReproError as exc:  # diagnostics must never fail the query
            entry["plan_error"] = str(exc)
        self.slow_queries.record(entry)
        self.events.emit(
            "query.slow",
            trace_id=trace_id,
            reason=reason,
            elapsed_ms=entry["elapsed_ms"],
            query=text,
        )

    # -- fetch ---------------------------------------------------------

    # -- mutate --------------------------------------------------------

    async def _op_mutate(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        """Apply a batch of mutations; acknowledge only once durable.

        The batch runs on a worker thread (a WAL fsync must not stall
        the event loop) and, with ``durable`` set (the default), the
        response is sent only after the engine flushed — an acknowledged
        mutation survives ``kill -9``.  Batches serialize per database
        through its write lock; there are no transactions, so a failing
        action leaves the earlier ones applied (``applied`` says how
        many landed).
        """
        mutations = request.get("mutations")
        if not isinstance(mutations, list) or not mutations:
            self._count("mutate", "error")
            return error_response(
                "bad_request", "mutate op requires a nonempty 'mutations' list"
            )
        durable = bool(request.get("durable", True))
        trace_id = _trace_id_of(request)
        assert self._loop is not None
        self._m_inflight.inc()
        future = self._loop.run_in_executor(
            self._pool,
            self._execute_mutations,
            session,
            mutations,
            durable,
            trace_id,
        )
        future.add_done_callback(lambda _: self._m_inflight.dec())
        response = await asyncio.shield(future)
        self._count("mutate", "ok" if response.get("ok") else "error")
        return response

    def _execute_mutations(
        self,
        session: Session,
        mutations: list[Any],
        durable: bool,
        trace_id: str | None,
    ) -> dict[str, Any]:
        """Worker-thread side of ``mutate``: apply, then group-commit."""
        db = session.database
        results: list[dict[str, Any]] = []
        applied = 0
        failure: dict[str, Any] | None = None
        for action in mutations:
            try:
                results.append(self._apply_mutation(db, action))
                applied += 1
            except (KeyError, TypeError, ValueError) as exc:
                failure = error_response(
                    "bad_request", f"malformed mutation {applied}: {exc!r}"
                )
                break
            except ReproError as exc:
                failure = error_response(
                    "engine_error", f"mutation {applied} failed: {exc}"
                )
                break
        # Group commit: one flush acknowledges the whole batch (partial
        # batches flush too — what landed before the failure is durable).
        durable_seq = db.engine.flush() if durable else db.engine.last_seq
        self.events.emit(
            "mutation.batch",
            trace_id=trace_id,
            session=session.id,
            database=session.database_name,
            count=applied,
            durable=durable,
            durable_seq=durable_seq,
            status="error" if failure else "ok",
        )
        if failure is not None:
            failure["applied"] = applied
            failure["durable_seq"] = durable_seq
            return failure
        return {
            "ok": True,
            "applied": applied,
            "results": results,
            "durable_seq": durable_seq,
        }

    @staticmethod
    def _apply_mutation(db: Database, action: Any) -> dict[str, Any]:
        """One wire mutation → one Database DML call → wire result."""
        if not isinstance(action, dict):
            raise TypeError(f"mutation must be an object, got {action!r}")
        kind = action.get("action")
        if kind == "insert":
            created = db.insert(action["classes"], action.get("value"))
            return {
                "action": "insert",
                "created": {cls: i.oid for cls, i in created.items()},
            }
        if kind == "insert_value":
            instance = db.insert_value(action["cls"], action["value"])
            return {"action": "insert_value", "created": [instance.cls, instance.oid]}
        if kind in ("link", "unlink"):
            a = IID(str(action["a"][0]), int(action["a"][1]))
            b = IID(str(action["b"][0]), int(action["b"][1]))
            (db.link if kind == "link" else db.unlink)(
                a, b, action.get("assoc")
            )
            return {"action": kind}
        if kind == "delete":
            instance = action["instance"]
            db.delete(IID(str(instance[0]), int(instance[1])))
            return {"action": "delete"}
        if kind == "update":
            instance = action["instance"]
            db.update_value(
                IID(str(instance[0]), int(instance[1])), action["value"]
            )
            return {"action": "update"}
        raise ValueError(f"unknown mutation action {kind!r}")

    def _op_fetch(self, session: Session, request: dict[str, Any]) -> dict[str, Any]:
        cursor = str(request.get("cursor", ""))
        pages = session.cursors.get(cursor)
        if pages is None:
            self._count("fetch", "error")
            return error_response("bad_request", f"unknown cursor {cursor!r}")
        page = pages.pop(0)
        if not pages:
            del session.cursors[cursor]
            cursor_out = None
        else:
            cursor_out = cursor
        self._count("fetch", "ok")
        return {"ok": True, "patterns": page, "cursor": cursor_out}

    # -- views ---------------------------------------------------------

    def view_rows(self) -> list[dict[str, Any]]:
        """One info row per view across mounted databases (admin ``/views``)."""
        with self._db_lock:
            items = sorted(self._databases.items())
        rows: list[dict[str, Any]] = []
        for name, db in items:
            for info in db.views.info():
                rows.append({"database": name, **info})
        return rows

    def _op_views(self, session: Session) -> dict[str, Any]:
        self._count("views", "ok")
        return {
            "ok": True,
            "database": session.database_name,
            "views": session.database.views.info(),
        }

    def _op_subscribe(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        """Open a live delta feed on one view; returns the initial snapshot.

        The subscription is registered *before* the snapshot is read, so
        a delta committed concurrently is queued rather than lost; the
        client drops queued frames whose ``version`` is not above the
        snapshot's (added/removed are sets, so replaying one is also
        harmless).  Subscribing twice is idempotent — the feed continues,
        a fresh snapshot is returned.
        """
        name = str(request.get("view", ""))
        try:
            view = session.database.views.get(name)
        except ViewError as exc:
            self._count("subscribe", "error")
            return error_response("unknown_view", str(exc))
        if name not in session.subscriptions:
            session.subscriptions[name] = _Subscription(view=name)
            self._register_subscription(session, name)
        self._count("subscribe", "ok")
        return {
            "ok": True,
            "view": name,
            "database": session.database_name,
            "version": view.version,
            "patterns": _wire_patterns(view.patterns),
            "count": len(view.patterns),
        }

    def _op_unsubscribe(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        name = str(request.get("view", ""))
        sub = session.subscriptions.pop(name, None)
        if sub is None:
            self._count("unsubscribe", "error")
            return error_response("bad_request", f"no subscription on view {name!r}")
        self._unregister_subscription(session, name)
        self._count("unsubscribe", "ok")
        return {"ok": True, "view": name, "unsubscribed": True}

    async def _op_create_view(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        """Create and materialize a view from OQL text (worker thread)."""
        name = str(request.get("name", ""))
        query = request.get("q")
        if not name or not isinstance(query, str) or not query.strip():
            self._count("create_view", "error")
            return error_response(
                "bad_request", "create_view requires 'name' and a 'q' string"
            )
        assert self._loop is not None

        def work() -> dict[str, Any]:
            view = session.database.create_view(name, query)
            return {
                "ok": True,
                "view": name,
                "count": len(view.patterns),
                "version": view.version,
            }

        try:
            response = await asyncio.shield(
                self._loop.run_in_executor(self._pool, work)
            )
        except ViewError as exc:
            self._count("create_view", "error")
            return error_response("view_error", str(exc))
        self._count("create_view", "ok")
        return response

    async def _op_drop_view(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        name = str(request.get("name", ""))
        assert self._loop is not None

        def work() -> dict[str, Any]:
            session.database.drop_view(name)
            return {"ok": True, "view": name, "dropped": True}

        try:
            response = await asyncio.shield(
                self._loop.run_in_executor(self._pool, work)
            )
        except ViewError as exc:
            self._count("drop_view", "error")
            return error_response("view_error", str(exc))
        self._count("drop_view", "ok")
        return response

    # -- events / slow queries -----------------------------------------

    def _op_events(self, request: dict[str, Any]) -> dict[str, Any]:
        """Drain the structured event ring (optionally filtered/resumed)."""
        type_filter = request.get("type")
        after = request.get("after")
        limit = request.get("limit")
        try:
            after = int(after) if after is not None else None
            limit = int(limit) if limit is not None else None
        except (TypeError, ValueError):
            self._count("events", "error")
            return error_response("bad_request", "after/limit must be integers")
        events = self.events.events(
            type=str(type_filter) if type_filter is not None else None,
            after=after,
            limit=limit,
        )
        self._count("events", "ok")
        return {
            "ok": True,
            "events": [event.to_dict() for event in events],
            "last_seq": self.events.last_seq,
            "dropped": self.events.dropped,
        }

    def _op_slow_queries(self, request: dict[str, Any]) -> dict[str, Any]:
        """Return captured slow-query records, newest last."""
        limit = request.get("limit")
        try:
            limit = int(limit) if limit is not None else None
        except (TypeError, ValueError):
            self._count("slow_queries", "error")
            return error_response("bad_request", "limit must be an integer")
        self._count("slow_queries", "ok")
        return {
            "ok": True,
            "slow_queries": self.slow_queries.records(limit=limit),
            "total": self.slow_queries.total,
        }

    def __str__(self) -> str:
        return (
            f"QueryService({self.config.host}:{self.port}, "
            f"{len(self._databases)} database(s), {self._sessions} session(s) served)"
        )


# ----------------------------------------------------------------------
# background-thread harness (tests, benchmarks, and the CLI's client side)
# ----------------------------------------------------------------------


class ServerHandle:
    """A running :class:`QueryService` on a background thread.

    ``host``/``port`` point at the loopback listener; :meth:`stop`
    performs the graceful drain and joins the thread.
    """

    def __init__(
        self,
        service: QueryService,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        stop_event: asyncio.Event,
    ) -> None:
        self.service = service
        self._thread = thread
        self._loop = loop
        self._stop_event = stop_event
        self._stopped = False

    @property
    def host(self) -> str:
        return self.service.config.host

    @property
    def port(self) -> int:
        assert self.service.port is not None
        return self.service.port

    def stop(self, timeout: float = 15.0) -> None:
        """Drain and shut the server down; idempotent."""
        if self._stopped:
            return
        self._stopped = True
        try:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        except RuntimeError:
            pass  # loop already gone (boot failure)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server(
    config: ServerConfig | None = None,
    metrics: MetricsRegistry | None = None,
    ready_timeout: float = 15.0,
) -> ServerHandle:
    """Start a :class:`QueryService` on a daemon thread and wait for it.

    The returned :class:`ServerHandle` is a context manager::

        with start_server(ServerConfig(max_concurrency=2)) as server:
            with ServerClient(server.host, server.port) as client:
                client.query("TA * Grad")
    """
    service = QueryService(config, metrics)
    ready = threading.Event()
    boot_error: list[BaseException] = []
    box: list = []  # [(loop, stop_event)] once the service is up

    async def _run() -> None:
        try:
            await service.start()
        except BaseException as exc:  # bind failure, bad snapshot...
            boot_error.append(exc)
            ready.set()
            return
        stop_event = asyncio.Event()
        box.append((asyncio.get_running_loop(), stop_event))
        ready.set()
        await stop_event.wait()
        await service.stop()

    thread = threading.Thread(
        target=lambda: asyncio.run(_run()), name="repro-server-loop", daemon=True
    )
    thread.start()
    if not ready.wait(ready_timeout):
        raise RuntimeError("query service failed to start in time")
    if boot_error:
        thread.join(ready_timeout)
        raise boot_error[0]
    loop, stop_event = box[0]
    return ServerHandle(service, thread, loop, stop_event)
