"""The concurrent query service: asyncio TCP server over ``Database.query``.

One :class:`QueryService` owns

* a catalog of named, lazily mounted :class:`~repro.engine.database.Database`
  instances — the bundled datasets plus an optional JSON snapshot — shared
  by every session (queries are read-only; concurrent readers are safe,
  see ``tests/test_thread_safety.py``);
* a per-connection :class:`Session` (current database, open paging
  cursors, request counter);
* a bounded admission pipeline: at most ``max_concurrency`` queries
  execute at once on a worker thread pool (the asyncio loop never blocks
  on engine work), at most ``queue_limit`` more may wait for a slot, and
  anything beyond that is *shed* with a structured ``overloaded`` error
  instead of a dropped connection;
* per-request deadlines: a request carries its own ``timeout`` (capped
  by ``max_deadline``); the budget covers queue wait plus execution, and
  an expiry returns a structured ``timeout`` error while other in-flight
  requests keep running (the abandoned engine call finishes on its worker
  thread and releases its slot then — cancellation is cooperative at the
  await point, best-effort at the engine);
* graceful drain: :meth:`stop` closes the listener, lets in-flight
  requests finish (up to ``drain_timeout``), answers anything newly read
  with ``shutting_down``, then closes the connections.

Observability: the service registers
``repro_server_requests_total{op,status}``, ``repro_server_inflight``,
``repro_server_queue_depth``, ``repro_server_request_seconds`` and
``repro_server_shed_total`` in its :class:`~repro.obs.metrics.MetricsRegistry`,
which is shared with every mounted database — one ``metrics`` frame
returns the whole engine's Prometheus snapshot over the wire.  A traced
request opens a ``server.request`` span *above* the engine's span tree,
so the export shows the service wrapping the executor's existing spans.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import uuid
from dataclasses import dataclass, field
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.engine.database import Database
from repro.errors import ReproError
from repro.obs.export import metrics_to_prometheus, spans_to_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    error_response,
    pattern_to_wire,
    read_frame,
    write_frame,
)

__all__ = ["ServerConfig", "Session", "QueryService", "ServerHandle", "start_server"]

#: Dataset names sessions may ``open`` (mirrors the CLI's ``--dataset``).
DATASET_NAMES = ("university", "figure7", "supplier_parts", "parts_explosion")


@dataclass
class ServerConfig:
    """Knobs of one :class:`QueryService` (see ``docs/server.md``)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands on service.port
    default_database: str = "university"
    snapshot_path: str | None = None  # mounted under the name "snapshot"
    max_concurrency: int = 4  # engine executions running at once
    queue_limit: int = 16  # requests allowed to wait for a slot
    default_deadline: float = 30.0  # seconds, when the request names none
    max_deadline: float = 300.0  # hard cap on requested deadlines
    drain_timeout: float = 10.0  # seconds stop() waits for in-flight work
    page_size: int = 500  # patterns per response page


@dataclass
class Session:
    """Per-connection state: identity, mounted database, paging cursors."""

    id: str
    database_name: str
    database: Database
    peer: str = ""
    requests: int = 0
    cursors: dict[str, list[list[dict[str, Any]]]] = field(default_factory=dict)


class QueryService:
    """Asyncio TCP query service over a catalog of shared databases."""

    def __init__(
        self, config: ServerConfig | None = None, metrics: MetricsRegistry | None = None
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.port: int | None = None  # set once the listener is bound
        self._databases: dict[str, Database] = {}
        self._db_lock = threading.Lock()
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="repro-server",
        )
        self._slots: asyncio.Semaphore | None = None  # created on the loop
        self._queued = 0
        self._active_requests = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._connections: set[asyncio.StreamWriter] = set()
        self._sessions = 0

        self._m_requests = self.metrics.counter(
            "repro_server_requests_total", "Server requests handled, by op and status"
        )
        self._m_inflight = self.metrics.gauge(
            "repro_server_inflight", "Queries currently executing on worker threads"
        )
        self._m_queue_depth = self.metrics.gauge(
            "repro_server_queue_depth", "Queries waiting for an execution slot"
        )
        self._m_shed = self.metrics.counter(
            "repro_server_shed_total", "Requests shed because the admission queue was full"
        )
        self._m_request_seconds = self.metrics.histogram(
            "repro_server_request_seconds", "Wall-clock seconds per server request, by op"
        )
        self._m_sessions = self.metrics.gauge(
            "repro_server_sessions", "Currently connected sessions"
        )

    # ------------------------------------------------------------------
    # database catalog
    # ------------------------------------------------------------------

    def database(self, name: str) -> Database:
        """The shared database mounted under ``name`` (lazy, cached).

        Known names are the bundled datasets plus ``"snapshot"`` when the
        config points at a JSON snapshot.  All sessions opening one name
        share a single :class:`Database`; the engine's derived state
        (plan cache, arena, indexes) is safe under concurrent readers.
        """
        with self._db_lock:
            db = self._databases.get(name)
            if db is not None:
                return db
            if name == "snapshot" and self.config.snapshot_path is not None:
                from repro.storage.serialization import load_database

                loaded = load_database(self.config.snapshot_path)
                db = Database(loaded.schema, loaded.graph, metrics=self.metrics)
            elif name in DATASET_NAMES:
                import repro.datasets as datasets

                dataset = getattr(datasets, name)()
                db = Database(dataset.schema, dataset.graph, metrics=self.metrics)
            else:
                raise LookupError(name)
            self._databases[name] = db
            return db

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener; ``self.port`` holds the actual port."""
        self._loop = asyncio.get_running_loop()
        self._slots = asyncio.Semaphore(self.config.max_concurrency)
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        # Mount the default database eagerly so the first query pays no
        # dataset-construction latency.
        self.database(self.config.default_database)

    async def serve_forever(self) -> None:
        """Serve until cancelled (``start`` must have run)."""
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work, close."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), self.config.drain_timeout)
        except asyncio.TimeoutError:
            pass  # drain window elapsed; close connections regardless
        for writer in tuple(self._connections):
            writer.close()
        self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        session = Session(
            id=uuid.uuid4().hex[:12],
            database_name=self.config.default_database,
            database=self.database(self.config.default_database),
            peer=str(peer),
        )
        self._sessions += 1
        self._m_sessions.inc()
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    await write_frame(
                        writer, error_response("bad_request", str(exc))
                    )
                    break
                if request is None:
                    break  # client closed cleanly
                response = await self._handle_request(session, request)
                await write_frame(writer, response)
                if request.get("op") == "close":
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # peer went away or the server is closing down
        finally:
            self._connections.discard(writer)
            self._m_sessions.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------

    async def _handle_request(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        op = str(request.get("op", ""))
        session.requests += 1
        started = time.perf_counter()
        self._track_request(+1)
        try:
            if self._draining:
                return error_response("shutting_down", "server is draining")
            if op == "ping":
                return {
                    "ok": True,
                    "pong": True,
                    "session": session.id,
                    "protocol": PROTOCOL_VERSION,
                }
            if op == "open":
                return self._op_open(session, request)
            if op == "query":
                return await self._op_query(session, request)
            if op == "fetch":
                return self._op_fetch(session, request)
            if op == "metrics":
                return {"ok": True, "prometheus": metrics_to_prometheus(self.metrics)}
            if op == "close":
                return {"ok": True, "closed": True, "requests": session.requests}
            return error_response("bad_request", f"unknown op {op!r}")
        except ReproError as exc:
            return error_response("engine_error", str(exc))
        finally:
            elapsed = time.perf_counter() - started
            self._m_request_seconds.observe(elapsed, op=op or "?")
            self._track_request(-1)

    def _track_request(self, delta: int) -> None:
        self._active_requests += delta
        if self._active_requests == 0:
            self._idle.set()
        else:
            self._idle.clear()

    def _count(self, op: str, status: str) -> None:
        self._m_requests.inc(op=op, status=status)

    # -- open ----------------------------------------------------------

    def _op_open(self, session: Session, request: dict[str, Any]) -> dict[str, Any]:
        name = str(request.get("database", ""))
        try:
            database = self.database(name)
        except LookupError:
            self._count("open", "error")
            known = list(DATASET_NAMES)
            if self.config.snapshot_path is not None:
                known.append("snapshot")
            return error_response(
                "unknown_database", f"unknown database {name!r}; known: {known}"
            )
        session.database_name = name
        session.database = database
        session.cursors.clear()
        self._count("open", "ok")
        return {
            "ok": True,
            "database": name,
            "classes": len(database.schema.classes),
            "instances": len(list(database.graph.instances())),
        }

    # -- query ---------------------------------------------------------

    async def _op_query(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        text = request.get("q")
        if not isinstance(text, str) or not text.strip():
            self._count("query", "error")
            return error_response("bad_request", "query op requires a 'q' string")
        deadline = request.get("timeout")
        try:
            deadline = (
                float(deadline)
                if deadline is not None
                else self.config.default_deadline
            )
        except (TypeError, ValueError):
            self._count("query", "error")
            return error_response("bad_request", f"bad timeout {deadline!r}")
        deadline = min(max(deadline, 0.001), self.config.max_deadline)
        expires = time.monotonic() + deadline

        # Admission: when every slot is busy and the wait queue is full,
        # shed; otherwise queue for a slot.
        assert self._slots is not None
        if self._slots.locked() and self._queued >= self.config.queue_limit:
            self._m_shed.inc()
            self._count("query", "shed")
            return error_response(
                "overloaded",
                f"admission queue full ({self.config.queue_limit} waiting)",
            )
        self._queued += 1
        self._m_queue_depth.set(self._queued)
        try:
            try:
                await asyncio.wait_for(
                    self._slots.acquire(), timeout=expires - time.monotonic()
                )
            except asyncio.TimeoutError:
                self._count("query", "timeout")
                return error_response(
                    "timeout", f"deadline of {deadline:g}s elapsed in queue"
                )
        finally:
            self._queued -= 1
            self._m_queue_depth.set(self._queued)

        # One slot held: run the engine work on the pool, under deadline.
        self._m_inflight.inc()
        assert self._loop is not None
        future = self._loop.run_in_executor(
            self._pool, self._execute_query, session, text, request
        )

        def _release(_):
            # The slot frees only when the engine call truly finished —
            # a timed-out request's zombie thread keeps holding it.
            self._m_inflight.dec()
            self._slots.release()

        future.add_done_callback(_release)
        try:
            response = await asyncio.wait_for(
                asyncio.shield(future), timeout=expires - time.monotonic()
            )
        except asyncio.TimeoutError:
            self._count("query", "timeout")
            return error_response(
                "timeout", f"deadline of {deadline:g}s exceeded during execution"
            )
        except ReproError as exc:
            self._count("query", "error")
            return error_response("engine_error", str(exc))
        self._count("query", "ok" if response.get("ok") else "error")
        return response

    def _execute_query(
        self, session: Session, text: str, request: dict[str, Any]
    ) -> dict[str, Any]:
        """Engine work, on a worker thread.  Returns a response frame."""
        db = session.database
        explain = bool(request.get("explain", False))
        want_trace = bool(request.get("trace", False))
        compact = request.get("compact")
        use_cache = bool(request.get("use_cache", True))

        tracer = Tracer() if want_trace else None
        started = time.perf_counter()
        if tracer is not None:
            # The service's span sits above the engine's span tree, so the
            # export shows the server request wrapping the executor spans.
            with tracer.span(
                "server.request",
                op="query",
                session=session.id,
                database=session.database_name,
            ):
                result = db.query(
                    text,
                    trace=tracer,
                    explain=explain,
                    compact=compact if isinstance(compact, bool) else None,
                    use_cache=use_cache,
                )
        else:
            result = db.query(
                text,
                explain=explain,
                compact=compact if isinstance(compact, bool) else None,
                use_cache=use_cache,
            )
        elapsed_ms = (time.perf_counter() - started) * 1e3

        wire_patterns = sorted(
            (pattern_to_wire(p) for p in result.set),
            key=lambda p: (p["vertices"], p["edges"]),
        )
        response: dict[str, Any] = {
            "ok": True,
            "count": len(wire_patterns),
            "strategy": result.strategy,
            "elapsed_ms": round(elapsed_ms, 3),
        }

        page_size = int(request.get("page_size") or self.config.page_size)
        page_size = max(1, page_size)
        if len(wire_patterns) > page_size:
            pages = [
                wire_patterns[i : i + page_size]
                for i in range(page_size, len(wire_patterns), page_size)
            ]
            cursor = uuid.uuid4().hex[:12]
            session.cursors[cursor] = pages
            response["patterns"] = wire_patterns[:page_size]
            response["cursor"] = cursor
        else:
            response["patterns"] = wire_patterns
            response["cursor"] = None

        values_of = request.get("values_of") or ()
        if values_of:
            response["values"] = {
                cls: sorted(result.values(cls), key=repr) for cls in values_of
            }
        if explain and result.report is not None:
            response["explain"] = str(result.report)
        if tracer is not None:
            response["trace"] = [
                json.loads(line) for line in spans_to_jsonl(tracer).splitlines()
            ]
        return response

    # -- fetch ---------------------------------------------------------

    def _op_fetch(self, session: Session, request: dict[str, Any]) -> dict[str, Any]:
        cursor = str(request.get("cursor", ""))
        pages = session.cursors.get(cursor)
        if pages is None:
            self._count("fetch", "error")
            return error_response("bad_request", f"unknown cursor {cursor!r}")
        page = pages.pop(0)
        if not pages:
            del session.cursors[cursor]
            cursor_out = None
        else:
            cursor_out = cursor
        self._count("fetch", "ok")
        return {"ok": True, "patterns": page, "cursor": cursor_out}

    def __str__(self) -> str:
        return (
            f"QueryService({self.config.host}:{self.port}, "
            f"{len(self._databases)} database(s), {self._sessions} session(s) served)"
        )


# ----------------------------------------------------------------------
# background-thread harness (tests, benchmarks, and the CLI's client side)
# ----------------------------------------------------------------------


class ServerHandle:
    """A running :class:`QueryService` on a background thread.

    ``host``/``port`` point at the loopback listener; :meth:`stop`
    performs the graceful drain and joins the thread.
    """

    def __init__(
        self,
        service: QueryService,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        stop_event: asyncio.Event,
    ) -> None:
        self.service = service
        self._thread = thread
        self._loop = loop
        self._stop_event = stop_event
        self._stopped = False

    @property
    def host(self) -> str:
        return self.service.config.host

    @property
    def port(self) -> int:
        assert self.service.port is not None
        return self.service.port

    def stop(self, timeout: float = 15.0) -> None:
        """Drain and shut the server down; idempotent."""
        if self._stopped:
            return
        self._stopped = True
        try:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        except RuntimeError:
            pass  # loop already gone (boot failure)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server(
    config: ServerConfig | None = None,
    metrics: MetricsRegistry | None = None,
    ready_timeout: float = 15.0,
) -> ServerHandle:
    """Start a :class:`QueryService` on a daemon thread and wait for it.

    The returned :class:`ServerHandle` is a context manager::

        with start_server(ServerConfig(max_concurrency=2)) as server:
            with ServerClient(server.host, server.port) as client:
                client.query("TA * Grad")
    """
    service = QueryService(config, metrics)
    ready = threading.Event()
    boot_error: list[BaseException] = []
    box: list = []  # [(loop, stop_event)] once the service is up

    async def _run() -> None:
        try:
            await service.start()
        except BaseException as exc:  # bind failure, bad snapshot...
            boot_error.append(exc)
            ready.set()
            return
        stop_event = asyncio.Event()
        box.append((asyncio.get_running_loop(), stop_event))
        ready.set()
        await stop_event.wait()
        await service.stop()

    thread = threading.Thread(
        target=lambda: asyncio.run(_run()), name="repro-server-loop", daemon=True
    )
    thread.start()
    if not ready.wait(ready_timeout):
        raise RuntimeError("query service failed to start in time")
    if boot_error:
        thread.join(ready_timeout)
        raise boot_error[0]
    loop, stop_event = box[0]
    return ServerHandle(service, thread, loop, stop_event)
