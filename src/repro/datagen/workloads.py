"""Random query workloads.

Generates well-formed navigation queries by walking the schema graph —
the workload side of the synthetic benchmarks, and a light fuzzer: every
generated query must evaluate without error on any database of the same
schema.

Queries are Associate chains along schema edges (the dominant shape in
the paper's examples), optionally wrapped in a final A-Project onto the
chain's endpoint classes, with occasional A-Union of two walks sharing a
start class and occasional NonAssociate final hops.
"""

from __future__ import annotations

import random

from repro.core.expression import AssocSpec, Associate, Expr, NonAssociate, Union, ref
from repro.schema.graph import SchemaGraph

__all__ = ["random_walk_query", "workload"]


def _walk(schema: SchemaGraph, rng: random.Random, start: str, hops: int) -> Expr:
    """An Associate chain from ``start``, avoiding immediate backtracking."""
    expr: Expr = ref(start)
    here = start
    previous: str | None = None
    for _ in range(hops):
        options = [assoc for assoc in schema.incident(here)]
        if previous is not None and len(options) > 1:
            options = [a for a in options if a.other(here) != previous] or options
        if not options:
            break
        assoc = rng.choice(sorted(options, key=lambda a: a.key))
        nxt = assoc.other(here)
        expr = Associate(expr, ref(nxt), AssocSpec(here, nxt, assoc.name))
        previous, here = here, nxt
    return expr


def random_walk_query(
    schema: SchemaGraph,
    rng: random.Random,
    max_hops: int = 4,
) -> Expr:
    """One random, always-valid query over ``schema``."""
    classes = sorted(schema.class_names)
    start = rng.choice(classes)
    hops = rng.randint(1, max_hops)
    expr = _walk(schema, rng, start, hops)

    shape = rng.random()
    if shape < 0.2:
        # A-Union of two walks from the same start class.
        expr = Union(expr, _walk(schema, rng, start, rng.randint(1, max_hops)))
    elif shape < 0.35:
        # A NonAssociate final hop.
        tail = expr.tail_class
        if tail is not None:
            incident = sorted(schema.incident(tail), key=lambda a: a.key)
            if incident:
                assoc = rng.choice(incident)
                expr = NonAssociate(
                    expr, ref(assoc.other(tail)), AssocSpec(tail, assoc.other(tail), assoc.name)
                )
    if rng.random() < 0.5:
        head = expr.head_class if not isinstance(expr, Union) else None
        if head is not None:
            expr = expr.project([head])
    return expr


def workload(
    schema: SchemaGraph,
    n_queries: int = 50,
    max_hops: int = 4,
    seed: int = 0,
) -> list[Expr]:
    """A deterministic list of ``n_queries`` random queries."""
    rng = random.Random(seed)
    return [random_walk_query(schema, rng, max_hops) for _ in range(n_queries)]
