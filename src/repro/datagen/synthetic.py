"""Parameterized synthetic object graphs.

The paper has no performance evaluation of its own, so the benchmark
harness sweeps synthetic databases whose shape is controlled by three
knobs: schema topology (chain / star / the Figure 10 shape), extent size
per class, and edge density per association.  Everything is seeded and
deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.objects.graph import ObjectGraph
from repro.schema.graph import SchemaGraph

__all__ = [
    "SyntheticDataset",
    "random_graph",
    "chain_dataset",
    "star_dataset",
    "figure10_dataset",
    "university_scaled",
]


@dataclass(frozen=True)
class SyntheticDataset:
    """A generated schema + object graph with its generation parameters."""

    schema: SchemaGraph
    graph: ObjectGraph
    extent_size: int
    density: float
    seed: int


def random_graph(
    schema: SchemaGraph,
    sizes: Mapping[str, int] | int,
    density: float = 0.1,
    seed: int = 0,
) -> ObjectGraph:
    """Populate ``schema`` with random instances and edges.

    ``sizes`` is either one extent size for every class or a per-class
    mapping.  Each potential edge of each association is kept with
    probability ``density`` (a float in [0, 1]); every instance of the
    association's left class additionally receives at least one partner
    when the extent opposite is non-empty, so chains do not dead-end at
    low densities.
    """
    rng = random.Random(seed)
    graph = ObjectGraph(schema)
    oid = 0
    for cdef in schema.classes:
        count = sizes if isinstance(sizes, int) else sizes.get(cdef.name, 0)
        for index in range(count):
            oid += 1
            value = f"{cdef.name}-{index}" if cdef.is_primitive else None
            graph.add_instance(cdef.name, oid, value)
    for assoc in schema.associations:
        left = sorted(graph.extent(assoc.left))
        right = sorted(graph.extent(assoc.right))
        if not left or not right:
            continue
        for a in left:
            linked = False
            for b in right:
                if a != b and rng.random() < density:
                    graph.add_edge(assoc, a, b)
                    linked = True
            if not linked:
                b = rng.choice(right)
                if a != b:
                    graph.add_edge(assoc, a, b)
    return graph


def chain_dataset(
    n_classes: int = 4,
    extent_size: int = 50,
    density: float = 0.1,
    seed: int = 0,
) -> SyntheticDataset:
    """A linear schema ``K0—K1—…—K(n-1)`` — the Associate-chain workload."""
    schema = SchemaGraph(f"chain-{n_classes}")
    names = [f"K{i}" for i in range(n_classes)]
    for name in names:
        schema.add_entity_class(name)
    for left, right in zip(names, names[1:]):
        schema.add_association(left, right)
    graph = random_graph(schema, extent_size, density, seed)
    return SyntheticDataset(schema, graph, extent_size, density, seed)


def star_dataset(
    n_arms: int = 4,
    extent_size: int = 50,
    density: float = 0.1,
    seed: int = 0,
) -> SyntheticDataset:
    """A hub class ``Hub`` with ``n_arms`` spoke classes — the A-Intersect
    (branch-building) workload."""
    schema = SchemaGraph(f"star-{n_arms}")
    schema.add_entity_class("Hub")
    for index in range(n_arms):
        name = f"S{index}"
        schema.add_entity_class(name)
        schema.add_association("Hub", name)
    graph = random_graph(schema, extent_size, density, seed)
    return SyntheticDataset(schema, graph, extent_size, density, seed)


def figure10_dataset(
    extent_size: int = 20,
    density: float = 0.15,
    seed: int = 7,
) -> SyntheticDataset:
    """The schema behind Figure 10's optimization example.

    ``expr = A * (B*E*F + B * (C*D*H • C*G))`` navigates the associations
    A—B, B—E, E—F, B—C, C—D, D—H, C—G.
    """
    schema = SchemaGraph("figure10")
    for name in "ABCDEFGH":
        schema.add_entity_class(name)
    for left, right in (
        ("A", "B"),
        ("B", "E"),
        ("E", "F"),
        ("B", "C"),
        ("C", "D"),
        ("D", "H"),
        ("C", "G"),
    ):
        schema.add_association(left, right)
    graph = random_graph(schema, extent_size, density, seed)
    return SyntheticDataset(schema, graph, extent_size, density, seed)


def university_scaled(
    n_students: int = 100,
    n_courses: int = 20,
    seed: int = 0,
):
    """A scaled-up university population for the relational comparison.

    Reuses the Figure 1 schema but draws a parameterized population:
    ``n_students`` students (10% of them TAs), ``n_courses`` courses with
    two sections each, and random takes/teaches/enrollment edges.
    Returns a populated :class:`~repro.datasets.university.UniversityDB`-
    shaped object (schema + graph only).
    """
    from repro.datasets.university import university_schema
    from repro.objects.builder import GraphBuilder

    rng = random.Random(seed)
    schema = university_schema()
    builder = GraphBuilder(schema)
    graph = builder.graph

    departments = []
    for name in ("CIS", "EE", "Math"):
        dept = graph.add_instance("Department")
        builder.attach(dept, "Name", name)
        departments.append(dept)

    courses = []
    sections = []
    for index in range(n_courses):
        course = graph.add_instance("Course")
        builder.attach(course, "Course#", 1000 + index)
        builder.link(rng.choice(departments), course)
        courses.append(course)
        for sub in range(2):
            section = graph.add_instance("Section")
            builder.attach(section, "Section#", (1000 + index) * 10 + sub)
            if rng.random() < 0.9:
                builder.attach(section, "Room#", f"R{rng.randrange(40)}")
            builder.link(course, section)
            sections.append(section)

    faculty = []
    for index in range(max(2, n_students // 20)):
        created = builder.add_object(["Faculty", "Teacher", "Person"])
        builder.attach(created["Person"], "Name", f"Fac{index}")
        builder.attach(created["Person"], "SS#", 10_000 + index)
        builder.attach(created["Faculty"], "Specialty", f"Field{index % 7}")
        builder.link(created["Teacher"], rng.choice(departments))
        faculty.append(created)

    for index in range(n_students):
        is_ta = index % 10 == 0
        classes = (
            ["TA", "Grad", "Student", "Teacher", "Person"]
            if is_ta
            else ["Undergrad", "Student", "Person"]
        )
        created = builder.add_object(classes)
        builder.attach(created["Person"], "Name", f"Stu{index}")
        builder.attach(created["Person"], "SS#", 20_000 + index)
        builder.attach(created["Student"], "GPA", round(2.0 + rng.random() * 2, 2))
        builder.attach(created["Student"], "EarnedCredit", rng.randrange(0, 120))
        builder.link(created["Student"], rng.choice(departments))
        for section in rng.sample(sections, k=min(3, len(sections))):
            builder.link(created["Student"], section)
        for course in rng.sample(courses, k=min(3, len(courses))):
            enrollment = graph.add_instance("Enrollment")
            builder.link(created["Student"], enrollment)
            builder.link(enrollment, course)
        if is_ta:
            builder.link(created["Teacher"], rng.choice(departments))
            builder.link(created["Teacher"], rng.choice(sections))

    for created in faculty:
        for section in rng.sample(sections, k=min(2, len(sections))):
            builder.link(created["Teacher"], section)

    from repro.datasets.university import UniversityDB

    return UniversityDB(schema=schema, graph=graph)
