"""Parameterized synthetic object graphs.

The paper has no performance evaluation of its own, so the benchmark
harness sweeps synthetic databases whose shape is controlled by three
knobs: schema topology (chain / star / the Figure 10 shape), extent size
per class, and edge density per association.  Everything is seeded and
deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.objects.graph import ObjectGraph
from repro.schema.graph import SchemaGraph

__all__ = [
    "SyntheticDataset",
    "SkewedDataset",
    "random_graph",
    "chain_dataset",
    "skewed_dataset",
    "star_dataset",
    "figure10_dataset",
    "university_scaled",
    "valued_chain_dataset",
]


@dataclass(frozen=True)
class SyntheticDataset:
    """A generated schema + object graph with its generation parameters."""

    schema: SchemaGraph
    graph: ObjectGraph
    extent_size: int
    density: float
    seed: int


@dataclass(frozen=True)
class SkewedDataset(SyntheticDataset):
    """A synthetic dataset with deliberately skewed values and fan-outs."""

    hot_value: int = 0
    rare_value: int = 0


def skewed_dataset(
    extent_size: int = 1000,
    seed: int = 0,
    hot_fraction: float = 0.65,
    rare_count: int = 8,
    dense_fanout: int = 6,
    wide_fanout: int = 20,
) -> SkewedDataset:
    """A value- and degree-skewed database for adaptive-planner workloads.

    Two structurally identical three-hop families::

        L (primitive) ==dense== M (entity) ==wide== R (primitive)
        A (primitive) ==dense== Hub (entity) ==wide== S1 (primitive)

    The first association carries ``dense_fanout`` edges per entity
    instance, the second ``wide_fanout`` (wider still).  The values of
    ``L`` and ``A`` are heavily skewed: ``hot_fraction`` of the extent
    carries ``hot_value``, ``rare_count`` instances carry ``rare_value``,
    the rest a long tail of distinct values.  A uniformity cost model
    (fixed 0.33 selectivity, average fan-outs) cannot tell a rare-value
    Select from a hot-value one, so on ``σ(L)[L = rare] * M * R`` it
    prefers materializing the wide ``M * R`` pair before filtering; an
    equi-depth histogram knows the Select keeps a handful of patterns and
    starts there instead — the plan-choice flip these workloads measure.
    """
    rng = random.Random(seed)
    n = extent_size
    schema = SchemaGraph("skewed")
    for name in ("L", "R", "A", "S1"):
        schema.add_domain_class(name)
    for name in ("M", "Hub"):
        schema.add_entity_class(name)
    for left, right in (("L", "M"), ("M", "R"), ("A", "Hub"), ("Hub", "S1")):
        schema.add_association(left, right)

    hot_value = 0
    rare_value = 999_983
    graph = ObjectGraph(schema)
    oid = 0

    def skewed_values() -> list[int]:
        hot = int(n * hot_fraction)
        values = [hot_value] * hot + [rare_value] * rare_count
        values += [1 + i % (n // 10 or 1) for i in range(n - len(values))]
        return values[:n]  # tiny extents: hot + rare may overshoot n

    extents: dict[str, list] = {}
    for cls, values in (
        ("L", skewed_values()),
        ("R", list(range(n))),
        ("A", skewed_values()),
        ("S1", list(range(n))),
    ):
        instances = []
        for value in values:
            oid += 1
            instances.append(graph.add_instance(cls, oid, value))
        extents[cls] = instances
    for cls in ("M", "Hub"):
        instances = []
        for _ in range(n):
            oid += 1
            instances.append(graph.add_instance(cls, oid))
        extents[cls] = instances

    for entity, dense_cls, wide_cls in (("M", "L", "R"), ("Hub", "A", "S1")):
        dense_assoc = schema.resolve(dense_cls, entity, None)
        wide_assoc = schema.resolve(entity, wide_cls, None)
        for instance in extents[entity]:
            for partner in rng.sample(extents[dense_cls], dense_fanout):
                graph.add_edge(dense_assoc, partner, instance)
            for partner in rng.sample(extents[wide_cls], wide_fanout):
                graph.add_edge(wide_assoc, instance, partner)

    return SkewedDataset(
        schema,
        graph,
        extent_size,
        float(dense_fanout) / n if n else 0.0,
        seed,
        hot_value=hot_value,
        rare_value=rare_value,
    )


def random_graph(
    schema: SchemaGraph,
    sizes: Mapping[str, int] | int,
    density: float = 0.1,
    seed: int = 0,
) -> ObjectGraph:
    """Populate ``schema`` with random instances and edges.

    ``sizes`` is either one extent size for every class or a per-class
    mapping.  Each potential edge of each association is kept with
    probability ``density`` (a float in [0, 1]); every instance of the
    association's left class additionally receives at least one partner
    when the extent opposite is non-empty, so chains do not dead-end at
    low densities.
    """
    rng = random.Random(seed)
    graph = ObjectGraph(schema)
    oid = 0
    for cdef in schema.classes:
        count = sizes if isinstance(sizes, int) else sizes.get(cdef.name, 0)
        for index in range(count):
            oid += 1
            value = f"{cdef.name}-{index}" if cdef.is_primitive else None
            graph.add_instance(cdef.name, oid, value)
    for assoc in schema.associations:
        left = sorted(graph.extent(assoc.left))
        right = sorted(graph.extent(assoc.right))
        if not left or not right:
            continue
        for a in left:
            linked = False
            for b in right:
                if a != b and rng.random() < density:
                    graph.add_edge(assoc, a, b)
                    linked = True
            if not linked:
                b = rng.choice(right)
                if a != b:
                    graph.add_edge(assoc, a, b)
    return graph


def chain_dataset(
    n_classes: int = 4,
    extent_size: int = 50,
    density: float = 0.1,
    seed: int = 0,
) -> SyntheticDataset:
    """A linear schema ``K0—K1—…—K(n-1)`` — the Associate-chain workload."""
    schema = SchemaGraph(f"chain-{n_classes}")
    names = [f"K{i}" for i in range(n_classes)]
    for name in names:
        schema.add_entity_class(name)
    for left, right in zip(names, names[1:]):
        schema.add_association(left, right)
    graph = random_graph(schema, extent_size, density, seed)
    return SyntheticDataset(schema, graph, extent_size, density, seed)


def valued_chain_dataset(
    n_classes: int = 3,
    extent_size: int = 50,
    density: float = 0.1,
    seed: int = 0,
    hot_fraction: float = 0.5,
    rare_count: int = 8,
) -> SkewedDataset:
    """A linear schema ``V0—V1—…—V(n-1)`` of *primitive* classes.

    The σ-heavy counterpart of :func:`chain_dataset`: every class carries
    skewed integer values (``hot_fraction`` of each extent at the hot
    value, ``rare_count`` instances at the rare value, a modular long tail
    for the rest), so selection predicates over any chain class are
    meaningful — range bands, IN-lists and rare-equality all select
    non-trivial, distinct fractions.  Edges follow the same density model
    as :func:`random_graph`.
    """
    rng = random.Random(seed)
    n = extent_size
    schema = SchemaGraph(f"valued-chain-{n_classes}")
    names = [f"V{i}" for i in range(n_classes)]
    for name in names:
        schema.add_domain_class(name)
    for left, right in zip(names, names[1:]):
        schema.add_association(left, right)

    hot_value = 0
    rare_value = 999_983
    graph = ObjectGraph(schema)
    oid = 0
    hot = int(n * hot_fraction)
    tail_mod = n // 10 or 1
    for name in names:
        values = [hot_value] * hot + [rare_value] * rare_count
        values += [1 + i % tail_mod for i in range(n - len(values))]
        for value in values[:n]:
            oid += 1
            graph.add_instance(name, oid, value)
    for assoc in schema.associations:
        left = sorted(graph.extent(assoc.left))
        right = sorted(graph.extent(assoc.right))
        for a in left:
            linked = False
            for b in right:
                if rng.random() < density:
                    graph.add_edge(assoc, a, b)
                    linked = True
            if not linked:
                graph.add_edge(assoc, a, rng.choice(right))
    return SkewedDataset(
        schema,
        graph,
        extent_size,
        density,
        seed,
        hot_value=hot_value,
        rare_value=rare_value,
    )


def star_dataset(
    n_arms: int = 4,
    extent_size: int = 50,
    density: float = 0.1,
    seed: int = 0,
) -> SyntheticDataset:
    """A hub class ``Hub`` with ``n_arms`` spoke classes — the A-Intersect
    (branch-building) workload."""
    schema = SchemaGraph(f"star-{n_arms}")
    schema.add_entity_class("Hub")
    for index in range(n_arms):
        name = f"S{index}"
        schema.add_entity_class(name)
        schema.add_association("Hub", name)
    graph = random_graph(schema, extent_size, density, seed)
    return SyntheticDataset(schema, graph, extent_size, density, seed)


def figure10_dataset(
    extent_size: int = 20,
    density: float = 0.15,
    seed: int = 7,
) -> SyntheticDataset:
    """The schema behind Figure 10's optimization example.

    ``expr = A * (B*E*F + B * (C*D*H • C*G))`` navigates the associations
    A—B, B—E, E—F, B—C, C—D, D—H, C—G.
    """
    schema = SchemaGraph("figure10")
    for name in "ABCDEFGH":
        schema.add_entity_class(name)
    for left, right in (
        ("A", "B"),
        ("B", "E"),
        ("E", "F"),
        ("B", "C"),
        ("C", "D"),
        ("D", "H"),
        ("C", "G"),
    ):
        schema.add_association(left, right)
    graph = random_graph(schema, extent_size, density, seed)
    return SyntheticDataset(schema, graph, extent_size, density, seed)


def university_scaled(
    n_students: int = 100,
    n_courses: int = 20,
    seed: int = 0,
):
    """A scaled-up university population for the relational comparison.

    Reuses the Figure 1 schema but draws a parameterized population:
    ``n_students`` students (10% of them TAs), ``n_courses`` courses with
    two sections each, and random takes/teaches/enrollment edges.
    Returns a populated :class:`~repro.datasets.university.UniversityDB`-
    shaped object (schema + graph only).
    """
    from repro.datasets.university import university_schema
    from repro.objects.builder import GraphBuilder

    rng = random.Random(seed)
    schema = university_schema()
    builder = GraphBuilder(schema)
    graph = builder.graph

    departments = []
    for name in ("CIS", "EE", "Math"):
        dept = graph.add_instance("Department")
        builder.attach(dept, "Name", name)
        departments.append(dept)

    courses = []
    sections = []
    for index in range(n_courses):
        course = graph.add_instance("Course")
        builder.attach(course, "Course#", 1000 + index)
        builder.link(rng.choice(departments), course)
        courses.append(course)
        for sub in range(2):
            section = graph.add_instance("Section")
            builder.attach(section, "Section#", (1000 + index) * 10 + sub)
            if rng.random() < 0.9:
                builder.attach(section, "Room#", f"R{rng.randrange(40)}")
            builder.link(course, section)
            sections.append(section)

    faculty = []
    for index in range(max(2, n_students // 20)):
        created = builder.add_object(["Faculty", "Teacher", "Person"])
        builder.attach(created["Person"], "Name", f"Fac{index}")
        builder.attach(created["Person"], "SS#", 10_000 + index)
        builder.attach(created["Faculty"], "Specialty", f"Field{index % 7}")
        builder.link(created["Teacher"], rng.choice(departments))
        faculty.append(created)

    for index in range(n_students):
        is_ta = index % 10 == 0
        classes = (
            ["TA", "Grad", "Student", "Teacher", "Person"]
            if is_ta
            else ["Undergrad", "Student", "Person"]
        )
        created = builder.add_object(classes)
        builder.attach(created["Person"], "Name", f"Stu{index}")
        builder.attach(created["Person"], "SS#", 20_000 + index)
        builder.attach(created["Student"], "GPA", round(2.0 + rng.random() * 2, 2))
        builder.attach(created["Student"], "EarnedCredit", rng.randrange(0, 120))
        builder.link(created["Student"], rng.choice(departments))
        for section in rng.sample(sections, k=min(3, len(sections))):
            builder.link(created["Student"], section)
        for course in rng.sample(courses, k=min(3, len(courses))):
            enrollment = graph.add_instance("Enrollment")
            builder.link(created["Student"], enrollment)
            builder.link(enrollment, course)
        if is_ta:
            builder.link(created["Teacher"], rng.choice(departments))
            builder.link(created["Teacher"], rng.choice(sections))

    for created in faculty:
        for section in rng.sample(sections, k=min(2, len(sections))):
            builder.link(created["Teacher"], section)

    from repro.datasets.university import UniversityDB

    return UniversityDB(schema=schema, graph=graph)
