"""Synthetic workload generators for benchmarks and the optimizer tests."""

from repro.datagen.synthetic import (
    SkewedDataset,
    SyntheticDataset,
    chain_dataset,
    figure10_dataset,
    random_graph,
    skewed_dataset,
    star_dataset,
    university_scaled,
    valued_chain_dataset,
)
from repro.datagen.workloads import random_walk_query, workload

__all__ = [
    "random_walk_query",
    "workload",
    "SkewedDataset",
    "SyntheticDataset",
    "chain_dataset",
    "skewed_dataset",
    "star_dataset",
    "figure10_dataset",
    "random_graph",
    "university_scaled",
    "valued_chain_dataset",
]
