"""Persistence: storage engines, the write-ahead log, JSON snapshots.

The subsystem has three layers:

* :mod:`repro.storage.engine` — the pluggable :class:`StorageEngine`
  interface and its two backends (:class:`MemoryEngine`,
  :class:`FileEngine`), driven through the redesigned ``Database``
  lifecycle (:meth:`repro.engine.database.Database.open` /
  ``save`` / ``close``).
* :mod:`repro.storage.wal` — the write-ahead log: durable framing of
  the mutation-event stream, torn-tail-tolerant reading, batched fsync.
* :mod:`repro.storage.serialization` — JSON documents for schemas,
  graphs and whole-database snapshots (also the checkpoint format).

Exports resolve lazily (PEP 562): ``serialization`` imports the
``Database`` facade, which itself imports :mod:`repro.storage.engine` —
eager re-exports here would close that cycle during interpreter import.
"""

from typing import Any

__all__ = [
    # serialization
    "schema_to_dict",
    "schema_from_dict",
    "graph_to_dict",
    "graph_from_dict",
    "save_database",
    "load_database",
    "write_snapshot",
    "read_snapshot",
    # engines
    "StorageEngine",
    "MemoryEngine",
    "FileEngine",
    # WAL
    "WalRecord",
    "WalReader",
    "WalWriter",
    "WalInfo",
    "read_wal",
    "wal_info",
]

_HOMES = {
    "schema_to_dict": "serialization",
    "schema_from_dict": "serialization",
    "graph_to_dict": "serialization",
    "graph_from_dict": "serialization",
    "save_database": "serialization",
    "load_database": "serialization",
    "write_snapshot": "serialization",
    "read_snapshot": "serialization",
    "StorageEngine": "engine",
    "MemoryEngine": "engine",
    "FileEngine": "engine",
    "WalRecord": "wal",
    "WalReader": "wal",
    "WalWriter": "wal",
    "WalInfo": "wal",
    "read_wal": "wal",
    "wal_info": "wal",
}


def __getattr__(name: str) -> Any:
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f"{__name__}.{home}")
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(__all__))
