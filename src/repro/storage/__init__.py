"""Persistence: JSON snapshots of schema + object graphs."""

from repro.storage.serialization import (
    graph_from_dict,
    graph_to_dict,
    load_database,
    save_database,
    schema_from_dict,
    schema_to_dict,
)

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "graph_to_dict",
    "graph_from_dict",
    "save_database",
    "load_database",
]
