"""JSON serialization of schema graphs and object graphs.

The on-disk format is a single JSON document::

    {
      "format": "repro-aalgebra-v1",
      "schema": {"name": ..., "classes": [...], "associations": [...]},
      "graph":  {"instances": [...], "edges": {...}}
    }

Instances serialize as ``[class, oid, value]`` (value omitted when
``None``); edges as oriented ``[left-oid-instance, right-instance]`` pairs
grouped per association name.  Complement edges are never stored — they
are derived (§3.1), so persistence cost stays proportional to the data.

Values must be JSON-representable (the library's datasets use strings,
ints and floats, as the paper's primitive domains suggest).
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any

from repro.core.identity import IID
from repro.engine.database import Database
from repro.errors import StorageError
from repro.objects.graph import ObjectGraph
from repro.schema.graph import AssociationKind, ClassKind, SchemaGraph

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "graph_to_dict",
    "graph_from_dict",
    "write_snapshot",
    "read_snapshot",
    "save_database",
    "load_database",
]

FORMAT = "repro-aalgebra-v1"


def schema_to_dict(schema: SchemaGraph) -> dict[str, Any]:
    """Serialize a schema graph to plain data."""
    return {
        "name": schema.name,
        "classes": [
            {"name": c.name, "kind": c.kind.value, "doc": c.doc}
            for c in schema.classes
        ],
        "associations": [
            {
                "left": a.left,
                "right": a.right,
                "name": a.name,
                "kind": a.kind.value,
            }
            for a in schema.associations
        ],
    }


def schema_from_dict(data: dict[str, Any]) -> SchemaGraph:
    """Rebuild a schema graph from :func:`schema_to_dict` output."""
    try:
        schema = SchemaGraph(data["name"])
        for cls in data["classes"]:
            schema.add_class(cls["name"], ClassKind(cls["kind"]), cls.get("doc", ""))
        for assoc in data["associations"]:
            schema.add_association(
                assoc["left"],
                assoc["right"],
                assoc["name"],
                AssociationKind(assoc["kind"]),
            )
    except (KeyError, ValueError) as exc:
        raise StorageError(f"malformed schema document: {exc}") from exc
    schema.validate()
    return schema


def graph_to_dict(graph: ObjectGraph) -> dict[str, Any]:
    """Serialize an object graph (instances, values, regular edges)."""
    instances = []
    for instance in sorted(graph.instances()):
        value = graph.value(instance)
        row: list[Any] = [instance.cls, instance.oid]
        if value is not None:
            row.append(value)
        instances.append(row)
    edges: dict[str, list[list[Any]]] = {}
    for assoc in graph.schema.associations:
        pairs = [
            [[a.cls, a.oid], [b.cls, b.oid]] for a, b in sorted(graph.edges(assoc))
        ]
        if pairs:
            edges[assoc.name] = pairs
    return {"instances": instances, "edges": edges}


def graph_from_dict(data: dict[str, Any], schema: SchemaGraph) -> ObjectGraph:
    """Rebuild an object graph over ``schema``."""
    graph = ObjectGraph(schema)
    try:
        for row in data["instances"]:
            cls, oid = row[0], row[1]
            value = row[2] if len(row) > 2 else None
            graph.add_instance(cls, oid, value)
        by_name = {assoc.name: assoc for assoc in schema.associations}
        for name, pairs in data["edges"].items():
            assoc = by_name.get(name)
            if assoc is None:
                raise StorageError(f"edge group references unknown association {name!r}")
            for (a_cls, a_oid), (b_cls, b_oid) in pairs:
                graph.add_edge(assoc, IID(a_cls, a_oid), IID(b_cls, b_oid))
    except StorageError:
        raise
    except Exception as exc:
        raise StorageError(f"malformed graph document: {exc}") from exc
    graph.validate()
    return graph


def write_snapshot(db: Database, path: "str | Path") -> None:
    """Write a standalone single-file JSON snapshot of ``db``.

    The mechanism behind :meth:`Database.save` for ``.json`` targets;
    user code goes through the lifecycle API instead.
    """
    document = {
        "format": FORMAT,
        "schema": schema_to_dict(db.schema),
        "graph": graph_to_dict(db.graph),
    }
    try:
        Path(path).write_text(json.dumps(document, indent=1, default=_reject))
    except TypeError as exc:
        raise StorageError(f"unserializable value in database: {exc}") from exc


def read_snapshot(path: "str | Path") -> tuple[SchemaGraph, ObjectGraph]:
    """Read a snapshot file back into ``(schema, graph)``.

    The mechanism behind :meth:`Database.open` for ``.json`` paths.
    """
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read database snapshot: {exc}") from exc
    if document.get("format") != FORMAT:
        raise StorageError(
            f"unsupported snapshot format {document.get('format')!r}"
        )
    schema = schema_from_dict(document["schema"])
    graph = graph_from_dict(document["graph"], schema)
    return schema, graph


def save_database(db: Database, path: "str | Path") -> None:
    """Deprecated: use :meth:`Database.save` (lifecycle API)."""
    warnings.warn(
        "save_database() is deprecated; use Database.save(path)",
        DeprecationWarning,
        stacklevel=2,
    )
    db.save(path)


def load_database(path: "str | Path") -> Database:
    """Deprecated: use :meth:`Database.open` (lifecycle API)."""
    warnings.warn(
        "load_database() is deprecated; use Database.open(path)",
        DeprecationWarning,
        stacklevel=2,
    )
    return Database.open(path)


def _reject(value: Any) -> Any:
    raise TypeError(f"value {value!r} is not JSON-serializable")
