"""Write-ahead log: durable framing of the mutation-event stream.

The WAL is the storage engine's source of truth between checkpoints: one
append-only file of :class:`WalRecord`\\ s, each the durable form of one
:class:`~repro.engine.database.MutationEvent`.  Recovery replays the
records past the last checkpoint through the same mutation path the
original process used, so the arena, indexes and statistics catalog come
back identical — and the log doubles as a replication stream (ship the
tail, replay it on a replica).

Framing
-------
Each record is::

    +---------------+---------------+------------------------+
    | u32 length    | u32 crc32     | ``length`` bytes       |
    | little-endian | of payload    | UTF-8 JSON object      |
    +---------------+---------------+------------------------+

The CRC makes torn writes detectable: a crash mid-append leaves either a
short header, a short payload, or a checksum mismatch at the tail, and
:class:`WalReader` stops cleanly at the last complete record instead of
propagating garbage.  Everything before the torn tail is trusted — the
writer never updates in place.

Record payloads are small JSON objects::

    {"seq": 7, "kind": "link", "in": [["TA", 3], ["Grad", 3]],
     "assoc": "isa_TA_Grad"}
    {"seq": 8, "kind": "insert", "in": [["GPA", 41]], "value": 3.8}

``seq`` increases by one per record across the life of the store (it
survives compaction — a checkpoint remembers the sequence number it
covers, and recovery replays only the records past it).

:class:`WalWriter` owns the append side with batched fsync: ``append``
buffers into the OS, and durability is paid either per record
(``sync="always"``), on an explicit :meth:`WalWriter.sync` (group
commit; ``sync="batch"``, the default), or never (``sync="never"``, for
throwaway stores and benchmarks measuring the ceiling).
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.core.identity import IID
from repro.errors import StorageError

__all__ = [
    "WalRecord",
    "WalReader",
    "WalWriter",
    "WalInfo",
    "encode_record",
    "encode_payload",
    "decode_payload",
    "read_wal",
    "wal_info",
    "SYNC_MODES",
]

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)

#: Accepted ``sync`` policies for :class:`WalWriter`.
SYNC_MODES = ("always", "batch", "never")


@dataclass(frozen=True)
class WalRecord:
    """One durable mutation: the WAL form of a ``MutationEvent``.

    ``instances`` are ``(class, oid)`` identities; ``value`` carries the
    inserted/updated primitive value (``None`` otherwise) and must be
    JSON-representable, exactly like snapshot values.
    """

    seq: int
    kind: str
    instances: tuple[IID, ...]
    association: str | None = None
    value: Any = None

    def to_payload(self) -> dict[str, Any]:
        """The record as the JSON object that goes on disk."""
        payload: dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "in": [[i.cls, i.oid] for i in self.instances],
        }
        if self.association is not None:
            payload["assoc"] = self.association
        if self.value is not None:
            payload["value"] = self.value
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "WalRecord":
        """Rebuild a record from :meth:`to_payload` output."""
        try:
            return cls(
                seq=int(payload["seq"]),
                kind=str(payload["kind"]),
                instances=tuple(
                    IID(str(c), int(o)) for c, o in payload["in"]
                ),
                association=payload.get("assoc"),
                value=payload.get("value"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"malformed WAL payload: {exc}") from exc

    def __str__(self) -> str:
        suffix = f" via {self.association}" if self.association else ""
        return f"WalRecord(#{self.seq} {self.kind} {list(self.instances)}{suffix})"


#: Shared compact encoder — ``json.dumps`` with keyword arguments builds
#: a fresh ``JSONEncoder`` per call, which dominates the cost of encoding
#: a small record.
_ENCODER = json.JSONEncoder(separators=(",", ":"), sort_keys=True)

# The appending side runs once per mutation, so it reuses the C one-shot
# encoder instead of rebuilding it per record (what JSONEncoder.encode
# does internally).  No circular-reference tracking: payloads are trees
# built here from scratch.
try:
    from json import encoder as _json_encoder

    _c_encode = _json_encoder.c_make_encoder(
        None,  # markers
        None,  # default
        _json_encoder.encode_basestring_ascii,
        None,  # indent
        ":", ",",  # separators
        True,  # sort_keys
        False,  # skipkeys
        True,  # allow_nan
    )
except (ImportError, AttributeError):  # pragma: no cover — no _json
    _c_encode = None


def encode_payload(payload: dict[str, Any]) -> bytes:
    """Header + JSON bytes for one record's payload object."""
    try:
        if _c_encode is not None:
            body = "".join(_c_encode(payload, 0)).encode("utf-8")
        else:  # pragma: no cover — pure-Python fallback
            body = _ENCODER.encode(payload).encode("utf-8")
    except TypeError as exc:
        raise StorageError(
            f"WAL record #{payload.get('seq')} carries an unserializable"
            f" value: {exc}"
        ) from exc
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


def encode_record(record: WalRecord) -> bytes:
    """Header + JSON payload bytes for one record."""
    return encode_payload(record.to_payload())


def decode_payload(body: bytes) -> WalRecord:
    """Payload bytes back to a record (checksum already verified)."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageError(f"undecodable WAL payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise StorageError("WAL payload must be a JSON object")
    return WalRecord.from_payload(payload)


class WalReader:
    """Sequential reader tolerating a torn final record.

    Iterating yields every complete, checksum-valid record.  A torn tail
    — short header, short payload, or CRC mismatch on the *last* frame —
    ends iteration cleanly; :attr:`torn_bytes` then holds the number of
    trailing bytes that were dropped and :attr:`good_size` the offset of
    the last valid frame boundary (the truncation point recovery uses).
    Corruption *before* the tail (a bad CRC followed by more valid data)
    is not a crash artifact and raises :class:`StorageError`.
    """

    def __init__(self, stream: io.BufferedIOBase, size: int | None = None) -> None:
        self._stream = stream
        if size is None:
            pos = stream.tell()
            stream.seek(0, os.SEEK_END)
            size = stream.tell()
            stream.seek(pos)
        self._size = size
        self.good_size = stream.tell()
        self.torn_bytes = 0

    def __iter__(self) -> Iterator[WalRecord]:
        while True:
            start = self._stream.tell()
            header = self._stream.read(_FRAME.size)
            if not header:
                return  # clean EOF at a frame boundary
            if len(header) < _FRAME.size:
                self._tear(start)
                return
            length, crc = _FRAME.unpack(header)
            body = self._stream.read(length)
            if len(body) < length or zlib.crc32(body) != crc:
                self._tear(start)
                return
            record = decode_payload(body)
            self.good_size = self._stream.tell()
            yield record

    def _tear(self, offset: int) -> None:
        """Record a torn tail at ``offset`` (must actually be the tail)."""
        if self._size - offset > _FRAME.size + 64 * 1024:
            # Far more trailing bytes than one torn frame plausibly
            # explains: this is corruption, not a crash artifact.
            raise StorageError(
                f"WAL corrupt at offset {offset}: bad frame followed by "
                f"{self._size - offset} more bytes"
            )
        self.torn_bytes = self._size - offset
        self.good_size = offset


def read_wal(path: "str | Path") -> tuple[list[WalRecord], int, int]:
    """Read a WAL file: ``(records, good_size, torn_bytes)``.

    Tolerates a torn final record (see :class:`WalReader`); a missing
    file reads as empty.
    """
    path = Path(path)
    if not path.exists():
        return [], 0, 0
    with path.open("rb") as stream:
        reader = WalReader(stream)
        records = list(reader)
        return records, reader.good_size, reader.torn_bytes


@dataclass
class WalInfo:
    """Summary of one WAL file (the ``repro wal`` CLI's data)."""

    path: str
    records: int = 0
    first_seq: int | None = None
    last_seq: int | None = None
    bytes: int = 0
    torn_bytes: int = 0
    kinds: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the log verified clean (no torn tail)."""
        return self.torn_bytes == 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "records": self.records,
            "first_seq": self.first_seq,
            "last_seq": self.last_seq,
            "bytes": self.bytes,
            "torn_bytes": self.torn_bytes,
            "kinds": dict(sorted(self.kinds.items())),
            "ok": self.ok,
        }


def wal_info(path: "str | Path") -> WalInfo:
    """Scan and verify one WAL file (checksums every record)."""
    records, good_size, torn = read_wal(path)
    info = WalInfo(path=str(path), bytes=good_size + torn, torn_bytes=torn)
    info.records = len(records)
    if records:
        info.first_seq = records[0].seq
        info.last_seq = records[-1].seq
    for record in records:
        info.kinds[record.kind] = info.kinds.get(record.kind, 0) + 1
    return info


class WalWriter:
    """Append side of one WAL file, with batched fsync.

    Not thread-safe on its own — the owning engine serializes appends.
    ``on_sync(seconds)`` is invoked after every fsync with its duration
    (the engine feeds ``repro_wal_fsync_seconds``).
    """

    def __init__(
        self,
        path: "str | Path",
        *,
        sync: str = "batch",
        on_sync: Callable[[float], None] | None = None,
    ) -> None:
        if sync not in SYNC_MODES:
            raise StorageError(f"unknown WAL sync mode {sync!r}; use {SYNC_MODES}")
        self.path = Path(path)
        self.sync_mode = sync
        self._on_sync = on_sync
        self._file = self.path.open("ab")
        #: Records appended but not yet fsynced (group-commit backlog).
        self.pending = 0
        #: Sequence number of the last record made durable by a sync.
        self.durable_seq = 0
        self._last_seq = 0

    def append(self, record: WalRecord) -> None:
        """Buffer one record (durable after the next sync)."""
        self.append_payload(record.seq, record.to_payload())

    def append_payload(self, seq: int, payload: dict[str, Any]) -> None:
        """Buffer one record given as its payload object.

        The hot-path form — the engine builds the payload straight from
        the mutation event without materializing a :class:`WalRecord`.
        The bytes stay in the userspace buffer until :meth:`sync` — one
        flush syscall per group commit, not per record — so a crash can
        lose at most the records of the current batch window, which is
        exactly the ``sync="batch"`` contract.
        """
        self._file.write(encode_payload(payload))
        self._last_seq = seq
        self.pending += 1
        if self.sync_mode == "always":
            self.sync()

    def sync(self) -> int:
        """Flush + fsync the file; returns the now-durable sequence."""
        if self.pending or self.sync_mode != "never":
            import time

            self._file.flush()
            started = time.perf_counter()
            os.fsync(self._file.fileno())
            if self._on_sync is not None:
                self._on_sync(time.perf_counter() - started)
        self.pending = 0
        self.durable_seq = self._last_seq
        return self.durable_seq

    def truncate(self) -> None:
        """Drop every record (post-checkpoint compaction)."""
        self._file.truncate(0)
        self._file.seek(0)
        os.fsync(self._file.fileno())
        self.pending = 0

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            try:
                os.fsync(self._file.fileno())
            except OSError:  # pragma: no cover — fs without fsync
                pass
            self._file.close()
