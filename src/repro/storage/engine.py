"""Pluggable storage engines: durability behind the ``Database`` facade.

A :class:`StorageEngine` receives every mutation event the
:class:`~repro.engine.database.Database` emits (the same stream that
keeps the arena, indexes and statistics catalog fresh) and owns the
persistence of the extensional state.  Two backends ship:

* :class:`MemoryEngine` — no durability; checkpoints are kept as
  in-process documents.  This is the default and preserves the classic
  "Database lives in one process's memory" behavior, while giving
  named save-points (:meth:`~repro.engine.database.Database.checkpoint`
  / :meth:`~repro.engine.database.Database.rollback`) the same API as
  the durable backend.

* :class:`FileEngine` — a storage directory holding an append-only
  write-ahead log of mutation records (:mod:`repro.storage.wal`),
  periodically compacted JSON checkpoints, and a ``MANIFEST.json``
  naming the current recovery base.  Crash recovery loads the latest
  checkpoint and replays the WAL tail (tolerating a torn final record);
  a background thread batches fsyncs (group commit) and compacts the
  log once enough records accumulate.

The swappable-backend shape follows the ``IIndexStore`` abstraction of
ioncore-python's association/datastore services (SNIPPETS.md snippets
1–2): the service logic binds to the interface, the deployment picks the
backend.

Directory layout of a :class:`FileEngine` store::

    store/
      MANIFEST.json            # current checkpoint + WAL + named savepoints
      checkpoint-000000.json   # snapshot documents (schema + graph + wal_seq)
      wal.log                  # mutation records past the current checkpoint

Observability: engines register ``repro_wal_records_total{kind}``,
``repro_wal_fsync_seconds`` and ``repro_checkpoint_total{engine,reason}``
in the database's metrics registry and emit ``wal.checkpoint`` /
``recovery.replay`` events into its event log.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import StorageError
from repro.storage.wal import WalRecord, WalWriter, read_wal

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.engine.database import Database, MutationEvent

__all__ = [
    "StorageEngine",
    "MemoryEngine",
    "FileEngine",
    "RecoveredState",
    "STORE_FORMAT",
]

#: Format marker of a storage directory's MANIFEST.
STORE_FORMAT = "repro-store-v1"


class RecoveredState:
    """What :meth:`FileEngine.open_store` found on disk.

    ``document`` is the recovery-base checkpoint document (schema +
    graph), ``records`` the WAL tail past it (already filtered and
    sequence-ordered), ``torn_bytes`` how many trailing bytes a torn
    final record cost (0 for a clean log).
    """

    def __init__(
        self,
        document: dict[str, Any],
        records: list[WalRecord],
        torn_bytes: int = 0,
    ) -> None:
        self.document = document
        self.records = records
        self.torn_bytes = torn_bytes


class StorageEngine:
    """Interface every storage backend implements.

    The engine is attached to exactly one database
    (:meth:`attach`, called from ``Database.__init__``); from then on
    ``Database._emit`` tees every mutation event into :meth:`append`.
    """

    #: Short backend identifier (metrics label, ``describe()``).
    name = "abstract"
    #: Whether appended records survive process death once flushed.
    durable = False

    def __init__(self) -> None:
        self._db: "Database | None" = None
        self._seq = 0
        self._recovering = False
        self._m_checkpoints = None

    # -- lifecycle ------------------------------------------------------

    def attach(self, db: "Database") -> None:
        """Bind to ``db`` and register metrics in its registry."""
        self._db = db
        self._m_checkpoints = db.metrics.counter(
            "repro_checkpoint_total", "Checkpoints written, by engine and reason"
        )

    def close(self) -> None:
        """Flush and release resources; further appends are errors."""

    def begin_recovery(self) -> None:
        """Enter replay mode: :meth:`append` becomes a no-op.

        Recovery re-emits mutation events through the database's normal
        path so derived state rebuilds identically, but the records are
        already on disk — re-appending would duplicate them.
        """
        self._recovering = True

    def end_recovery(self) -> None:
        """Leave replay mode; appends persist again."""
        self._recovering = False

    # -- the WAL side ---------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest appended record."""
        return self._seq

    def append(self, event: "MutationEvent") -> int | None:
        """Persist one mutation event; returns its WAL sequence number.

        Returns ``None`` while recovery is replaying (the records are
        already on disk).
        """
        if self._recovering:
            return None
        self._seq += 1
        return self._seq

    def flush(self) -> int:
        """Make every appended record durable; returns the durable seq."""
        return self._seq

    # -- checkpoints ----------------------------------------------------

    def checkpoint(self, name: str | None = None, reason: str = "api") -> str:
        """Capture the attached database's state; returns the name."""
        raise NotImplementedError

    def load_checkpoint(self, name: str) -> dict[str, Any]:
        """The graph document a checkpoint captured."""
        raise NotImplementedError

    def checkpoints(self) -> list[str]:
        """Names of the retrievable checkpoints, oldest first."""
        raise NotImplementedError

    # -- plumbing -------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Operational summary (surfaced by ``Database.describe_storage``)."""
        return {"engine": self.name, "durable": self.durable, "last_seq": self._seq}

    def _require_db(self) -> "Database":
        if self._db is None:
            raise StorageError(f"{type(self).__name__} is not attached to a database")
        return self._db

    def _count_checkpoint(self, reason: str) -> None:
        if self._m_checkpoints is not None:
            self._m_checkpoints.inc(engine=self.name, reason=reason)

    def __str__(self) -> str:
        return f"{type(self).__name__}(seq={self._seq})"


class MemoryEngine(StorageEngine):
    """The non-durable backend: checkpoints held as in-process documents.

    Mutation events are counted but not persisted; named checkpoints
    give :meth:`Database.checkpoint`/:meth:`Database.rollback` the same
    semantics as the durable backend, minus crash survival.
    """

    name = "memory"
    durable = False

    def __init__(self) -> None:
        super().__init__()
        self._checkpoints: dict[str, dict[str, Any]] = {}

    def checkpoint(self, name: str | None = None, reason: str = "api") -> str:
        from repro.storage.serialization import graph_to_dict

        db = self._require_db()
        if name is None:
            name = f"ckpt-{self._seq:06d}"
        self._checkpoints[name] = {
            "graph": graph_to_dict(db.graph),
            "views": db.views.definitions(),
            "wal_seq": self._seq,
        }
        self._count_checkpoint(reason)
        return name

    def load_checkpoint(self, name: str) -> dict[str, Any]:
        try:
            return self._checkpoints[name]["graph"]
        except KeyError:
            raise StorageError(f"unknown checkpoint {name!r}") from None

    def checkpoints(self) -> list[str]:
        return list(self._checkpoints)


class FileEngine(StorageEngine):
    """Durable backend: WAL + compacted checkpoints in one directory.

    ``sync`` picks the fsync policy of the WAL (see
    :data:`repro.storage.wal.SYNC_MODES`): ``"always"`` pays one fsync
    per mutation, ``"batch"`` (default) groups commits — the background
    thread syncs at least every ``batch_seconds`` and callers needing a
    durability guarantee call :meth:`flush` (the server does, before
    acknowledging a mutation batch) — and ``"never"`` leaves it to the
    OS.  ``checkpoint_interval`` bounds the WAL: once that many records
    accumulate past the newest checkpoint, the background thread writes
    a fresh checkpoint and truncates the log.
    """

    name = "file"
    durable = True

    MANIFEST = "MANIFEST.json"
    WAL = "wal.log"

    def __init__(
        self,
        path: "str | Path",
        *,
        create: bool = True,
        sync: str = "batch",
        batch_seconds: float = 0.05,
        checkpoint_interval: int = 1024,
        checkpoint_on_close: bool = True,
        background: bool = True,
    ) -> None:
        super().__init__()
        self.dir = Path(path)
        self.create = create
        self.sync_mode = sync
        self.batch_seconds = max(float(batch_seconds), 0.001)
        self.checkpoint_interval = max(int(checkpoint_interval), 1)
        self.checkpoint_on_close = checkpoint_on_close
        self.background = background
        self._lock = threading.RLock()
        self._writer: WalWriter | None = None
        self._manifest: dict[str, Any] = {}
        self._records_since_checkpoint = 0
        self._closed = False
        self._thread: threading.Thread | None = None
        self._wake = threading.Condition(self._lock)
        self._m_records = None
        self._m_record_kinds: dict[str, Any] = {}
        self._m_fsync = None

    # -- attach / metrics ----------------------------------------------

    def attach(self, db: "Database") -> None:
        super().attach(db)
        self._m_records = db.metrics.counter(
            "repro_wal_records_total", "WAL records appended, by mutation kind"
        )
        self._m_record_kinds = {}
        self._m_fsync = db.metrics.histogram(
            "repro_wal_fsync_seconds", "Wall-clock seconds per WAL fsync"
        )

    # -- store opening --------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.dir / self.MANIFEST

    @property
    def wal_path(self) -> Path:
        return self.dir / self.WAL

    def open_store(self) -> RecoveredState | None:
        """Read the on-disk state; ``None`` means a fresh (empty) store.

        For an existing store: loads the manifest and its recovery-base
        checkpoint, reads the WAL tail past it (truncating a torn final
        record in place), and positions the sequence counter after the
        newest surviving record.  Call exactly once, before
        :meth:`attach`-time appends can happen.
        """
        if self.manifest_path.exists():
            return self._recover()
        if self.dir.exists() and any(self.dir.iterdir()):
            raise StorageError(
                f"{self.dir} is not empty and holds no {self.MANIFEST}; "
                "refusing to treat it as a storage directory"
            )
        if not self.create:
            raise StorageError(f"no store at {self.dir} (create=False)")
        return None

    def _recover(self) -> RecoveredState:
        try:
            self._manifest = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"cannot read {self.manifest_path}: {exc}") from exc
        if self._manifest.get("format") != STORE_FORMAT:
            raise StorageError(
                f"unsupported store format {self._manifest.get('format')!r}"
            )
        checkpoint_file = self.dir / self._manifest["checkpoint"]
        try:
            document = json.loads(checkpoint_file.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"cannot read checkpoint {checkpoint_file}: {exc}") from exc
        base_seq = int(document.get("wal_seq", 0))
        records, good_size, torn_bytes = read_wal(self.wal_path)
        if torn_bytes:
            # Drop the torn tail in place so the next append starts at a
            # clean frame boundary.
            with self.wal_path.open("r+b") as fh:
                fh.truncate(good_size)
        records = [r for r in records if r.seq > base_seq]
        self._seq = max([base_seq] + [r.seq for r in records])
        self._records_since_checkpoint = len(records)
        self._open_writer()
        return RecoveredState(document, records, torn_bytes)

    def initialize(self, db: "Database") -> None:
        """Create a fresh store for ``db``'s current state."""
        self.dir.mkdir(parents=True, exist_ok=True)
        self._manifest = {
            "format": STORE_FORMAT,
            "checkpoint": "",
            "wal": self.WAL,
            "named": {},
            "created": time.time(),
        }
        self.wal_path.touch()
        self._open_writer()
        self.checkpoint(reason="create")

    def _open_writer(self) -> None:
        self._writer = WalWriter(
            self.wal_path, sync=self.sync_mode, on_sync=self._observe_fsync
        )
        if self.background and self._thread is None:
            self._thread = threading.Thread(
                target=self._background_loop,
                name=f"repro-storage-{self.dir.name}",
                daemon=True,
            )
            self._thread.start()

    def _observe_fsync(self, seconds: float) -> None:
        if self._m_fsync is not None:
            self._m_fsync.observe(seconds)

    # -- append / flush -------------------------------------------------

    def append(self, event: "MutationEvent") -> int | None:
        if self._recovering:
            return None
        with self._lock:
            if self._closed:
                raise StorageError(f"store {self.dir} is closed")
            if self._writer is None:
                raise StorageError(f"store {self.dir} was never opened")
            self._seq += 1
            # Built inline (the WalRecord.to_payload shape) — this runs
            # once per mutation and skipping the dataclass matters.
            payload: dict[str, Any] = {
                "seq": self._seq,
                "kind": event.kind,
                "in": [[i.cls, i.oid] for i in event.instances],
            }
            if event.association is not None:
                payload["assoc"] = event.association
            if event.value is not None:
                payload["value"] = event.value
            self._writer.append_payload(self._seq, payload)
            self._records_since_checkpoint += 1
            if self._m_records is not None:
                child = self._m_record_kinds.get(event.kind)
                if child is None:
                    child = self._m_records.child(kind=event.kind)
                    self._m_record_kinds[event.kind] = child
                child.inc()
            # Only a due checkpoint warrants waking the background thread
            # early; batch fsyncs ride its timed wait — notifying on mere
            # pending bytes would degrade "batch" to fsync-per-append.
            if self._records_since_checkpoint >= self.checkpoint_interval:
                self._wake.notify()
            return self._seq

    def flush(self) -> int:
        """Group commit: fsync the WAL; returns the durable sequence."""
        with self._lock:
            if self._writer is None or self._closed:
                return self._seq
            return self._writer.sync()

    # -- checkpoints ----------------------------------------------------

    def checkpoint(self, name: str | None = None, reason: str = "api") -> str:
        """Write a checkpoint document and compact the WAL.

        The checkpoint becomes the recovery base (the WAL restarts
        empty); with ``name`` it is additionally recorded as a named
        savepoint retained across future compactions.
        """
        from repro.storage.serialization import graph_to_dict, schema_to_dict

        db = self._require_db()
        # The database's write lock makes (graph state, WAL seq) a
        # consistent pair even while other threads mutate.
        with db.write_lock:
            with self._lock:
                if self._writer is None:
                    raise StorageError(f"store {self.dir} was never opened")
                self._writer.sync()
                seq = self._seq
                document = {
                    "format": STORE_FORMAT + "+checkpoint",
                    "schema": schema_to_dict(db.schema),
                    "graph": graph_to_dict(db.graph),
                    # Materialized-view definitions (pure JSON): recovery
                    # re-registers them before WAL replay so replayed
                    # mutations maintain the views incrementally.
                    "views": db.views.definitions(),
                    "wal_seq": seq,
                    "name": name,
                    "written": time.time(),
                }
                suffix = f"-{name}" if name else ""
                filename = f"checkpoint-{seq:06d}{suffix}.json"
                self._write_atomic(self.dir / filename, document)
                previous = self._manifest.get("checkpoint")
                named = dict(self._manifest.get("named", {}))
                if name:
                    named[name] = filename
                self._manifest.update(checkpoint=filename, named=named)
                self._write_atomic(self.manifest_path, self._manifest)
                self._writer.truncate()
                records = self._records_since_checkpoint
                self._records_since_checkpoint = 0
                if previous and previous != filename and previous not in named.values():
                    # The superseded unnamed checkpoint is garbage now.
                    try:
                        (self.dir / previous).unlink()
                    except OSError:  # pragma: no cover — already gone
                        pass
        self._count_checkpoint(reason)
        db.events.emit(
            "wal.checkpoint",
            seq=seq,
            records=records,
            reason=reason,
            name=name,
            file=filename,
        )
        return name if name else filename

    def load_checkpoint(self, name: str) -> dict[str, Any]:
        with self._lock:
            named = self._manifest.get("named", {})
            filename = named.get(name, name)
            path = self.dir / filename
            if not path.exists():
                raise StorageError(f"unknown checkpoint {name!r} in {self.dir}")
            try:
                document = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise StorageError(f"cannot read checkpoint {path}: {exc}") from exc
        return document["graph"]

    def checkpoints(self) -> list[str]:
        with self._lock:
            return list(self._manifest.get("named", {}))

    def _write_atomic(self, path: Path, document: dict[str, Any]) -> None:
        """tmp + fsync + rename, then fsync the directory entry."""
        tmp = path.with_suffix(path.suffix + ".tmp")
        try:
            body = json.dumps(document, indent=1, default=_reject_value)
        except TypeError as exc:
            raise StorageError(f"unserializable value in checkpoint: {exc}") from exc
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(body)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        try:
            dir_fd = os.open(self.dir, os.O_RDONLY)
        except OSError:  # pragma: no cover — e.g. non-POSIX fs
            return
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    # -- background group commit + compaction ---------------------------

    def _background_loop(self) -> None:
        while True:
            with self._lock:
                self._wake.wait(timeout=self.batch_seconds)
                if self._closed:
                    return
                writer = self._writer
                pending = writer.pending if writer is not None else 0
                due = self._records_since_checkpoint >= self.checkpoint_interval
            try:
                if pending and self.sync_mode == "batch":
                    self.flush()
                if due:
                    self.checkpoint(reason="auto")
            except StorageError:  # pragma: no cover — e.g. closed mid-flight
                return

    # -- close ----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            dirty = self._records_since_checkpoint > 0
        if dirty and self.checkpoint_on_close:
            self.checkpoint(reason="close")
        with self._lock:
            self._closed = True
            self._wake.notify_all()
            writer, self._writer = self._writer, None
        if writer is not None:
            writer.close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def describe(self) -> dict[str, Any]:
        out = super().describe()
        with self._lock:
            out.update(
                path=str(self.dir),
                sync=self.sync_mode,
                checkpoint_interval=self.checkpoint_interval,
                wal_records_since_checkpoint=self._records_since_checkpoint,
                checkpoint=self._manifest.get("checkpoint"),
                named_checkpoints=sorted(self._manifest.get("named", {})),
            )
        return out


def _reject_value(value: Any) -> Any:
    raise TypeError(f"value {value!r} is not JSON-serializable")
