"""Tabular rendering of query results.

The paper's queries end in value retrieval ("get the social security
numbers...").  :func:`render_table` turns an association-set into the
report a user would read: one row per pattern, one column per requested
class, cells holding the primitive values (or instance labels for
nonprimitive classes).  Heterogeneous results simply leave the cells of
absent classes blank — no union-compatibility needed, matching the
algebra's own stance.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.assoc_set import AssociationSet
from repro.objects.graph import ObjectGraph

__all__ = ["render_table", "result_rows"]


def result_rows(
    result: AssociationSet,
    graph: ObjectGraph,
    columns: Iterable[str],
) -> list[tuple]:
    """The result as value tuples, one per pattern, sorted for stability.

    A cell holds the value (or label) of the pattern's instance of that
    class; several instances join with ``", "``; a missing class yields
    ``None``.
    """
    wanted = tuple(columns)
    rows: list[tuple] = []
    for pattern in result:
        cells = []
        for cls in wanted:
            instances = sorted(pattern.instances_of(cls))
            if not instances:
                cells.append(None)
                continue
            rendered = []
            for instance in instances:
                value = graph.value(instance)
                rendered.append(
                    str(value) if value is not None else instance.label
                )
            cells.append(", ".join(rendered))
        rows.append(tuple(cells))
    return sorted(rows, key=lambda row: tuple(str(cell) for cell in row))


def render_table(
    result: AssociationSet,
    graph: ObjectGraph,
    columns: Iterable[str],
) -> str:
    """A fixed-width text table of the result (header + one row/pattern)."""
    wanted = tuple(columns)
    rows = result_rows(result, graph, wanted)
    display = [[cell if cell is not None else "—" for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in display), 1)
        if display
        else len(header)
        for i, header in enumerate(wanted)
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(wanted)),
        "  ".join("-" * width for width in widths),
    ]
    for row in display:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(wanted))))
    if not display:
        lines.append("(no patterns)")
    return "\n".join(lines)
