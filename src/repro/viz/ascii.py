"""ASCII rendering in the style of the paper's figures.

The figures draw Inter-patterns as solid links (``a1•——•b1``) and
Complement-patterns as dashed links (``a1•- -•b1``); derived patterns get
a tilde.  These renderers produce that notation for patterns and
association-sets so that examples and failing tests read like the paper.
"""

from __future__ import annotations

from repro.core.assoc_set import AssociationSet
from repro.core.edges import Edge
from repro.core.pattern import Pattern

__all__ = ["render_pattern", "render_set", "render_side_by_side"]


def _edge_glyph(edge: Edge) -> str:
    if edge.is_regular:
        return "~~" if edge.derived else "——"
    return "~/~" if edge.derived else "- -"


def render_pattern(pattern: Pattern) -> str:
    """One-line figure-style rendering of a pattern.

    Edges are listed in canonical order; isolated vertices follow.  A
    chain like the paper's ``a1•——•b1•- -•c3`` is reconstructed when the
    pattern is a path; otherwise edges are listed ``u•glyph•v`` separated
    by commas.
    """
    chain = _as_chain(pattern)
    if chain is not None:
        vertices, edges = chain
        if not edges:
            return f"{vertices[0].label}•"
        parts = [vertices[0].label]
        for vertex, edge in zip(vertices[1:], edges):
            parts.append(f"•{_edge_glyph(edge)}•{vertex.label}")
        return "".join(parts)
    pieces = []
    covered = set()
    for edge in sorted(pattern.edges, key=lambda e: (e.u, e.v, e.polarity.value)):
        pieces.append(f"{edge.u.label}•{_edge_glyph(edge)}•{edge.v.label}")
        covered.update((edge.u, edge.v))
    for vertex in sorted(pattern.vertices - covered):
        pieces.append(f"{vertex.label}•")
    return ", ".join(pieces)


def _as_chain(pattern: Pattern):
    """Return (vertex-sequence, edge-sequence) when the pattern is a path."""
    if len(pattern) == 1:
        return (list(pattern.vertices), [])
    degrees = {v: pattern.degree(v) for v in pattern.vertices}
    ends = [v for v, d in degrees.items() if d == 1]
    if len(ends) != 2 or any(d > 2 for d in degrees.values()):
        return None
    if len(pattern.edges) != len(pattern) - 1:
        return None
    start = min(ends)
    vertices = [start]
    edges = []
    seen = {start}
    here = start
    while len(vertices) < len(pattern):
        next_edges = [e for e in pattern.edges_at(here) if e.other(here) not in seen]
        if not next_edges:
            return None
        edge = next_edges[0]
        here = edge.other(here)
        seen.add(here)
        vertices.append(here)
        edges.append(edge)
    return (vertices, edges)


def render_set(aset: AssociationSet, title: str = "") -> str:
    """Multi-line rendering of an association-set, one pattern per row."""
    header = [title] if title else []
    if not aset:
        return "\n".join(header + ["  φ"])
    rows = sorted(render_pattern(p) for p in aset)
    return "\n".join(header + [f"  {row}" for row in rows])


def render_side_by_side(
    left: AssociationSet,
    right: AssociationSet,
    left_title: str = "input",
    right_title: str = "output",
    width: int = 40,
) -> str:
    """Two association-sets in adjacent columns (operator-example style)."""
    left_rows = sorted(render_pattern(p) for p in left) or ["φ"]
    right_rows = sorted(render_pattern(p) for p in right) or ["φ"]
    height = max(len(left_rows), len(right_rows))
    left_rows += [""] * (height - len(left_rows))
    right_rows += [""] * (height - len(right_rows))
    lines = [f"{left_title:<{width}}{right_title}"]
    for l_row, r_row in zip(left_rows, right_rows):
        lines.append(f"{l_row:<{width}}{r_row}")
    return "\n".join(lines)
