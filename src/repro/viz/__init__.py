"""Renderers for the paper's figure notation (ASCII and Graphviz DOT)."""

from repro.viz.ascii import render_pattern, render_set, render_side_by_side
from repro.viz.dot import object_graph_to_dot, pattern_to_dot, schema_to_dot
from repro.viz.table import render_table, result_rows

__all__ = [
    "render_pattern",
    "render_set",
    "render_side_by_side",
    "schema_to_dot",
    "object_graph_to_dot",
    "pattern_to_dot",
    "render_table",
    "result_rows",
]
