"""Graphviz DOT emitters.

``schema_to_dot`` follows Figure 1's conventions: nonprimitive classes as
boxes, primitive classes as circles, generalization edges marked ``G``.
``object_graph_to_dot`` and ``pattern_to_dot`` follow Figures 2/4/5:
complement edges dashed, derived edges dotted.

The emitters produce plain DOT text (no graphviz dependency); render with
any external ``dot`` tool.
"""

from __future__ import annotations

from repro.core.pattern import Pattern
from repro.objects.graph import ObjectGraph
from repro.schema.graph import AssociationKind, SchemaGraph

__all__ = ["schema_to_dot", "object_graph_to_dot", "pattern_to_dot"]


def _quote(text: str) -> str:
    escaped = text.replace('"', '\\"')
    return f'"{escaped}"'


def schema_to_dot(schema: SchemaGraph) -> str:
    """DOT for a schema graph (Figure 1 style)."""
    lines = [f"graph {_quote(schema.name)} {{", "  node [fontsize=10];"]
    for cdef in schema.classes:
        shape = "ellipse" if cdef.is_primitive else "box"
        lines.append(f"  {_quote(cdef.name)} [shape={shape}];")
    for assoc in schema.associations:
        label = ""
        if assoc.kind is AssociationKind.GENERALIZATION:
            label = ' [label="G"]'
        elif assoc.kind is AssociationKind.INTERACTION:
            label = ' [label="I"]'
        lines.append(f"  {_quote(assoc.left)} -- {_quote(assoc.right)}{label};")
    lines.append("}")
    return "\n".join(lines)


def object_graph_to_dot(graph: ObjectGraph, include_values: bool = True) -> str:
    """DOT for an object graph (Figure 2 style, regular edges only)."""
    lines = ["graph objects {", "  node [fontsize=9, shape=plaintext];"]
    for instance in sorted(graph.instances()):
        label = instance.label
        if include_values:
            value = graph.value(instance)
            if value is not None:
                label = f"{label}={value}"
        lines.append(f"  {_quote(instance.label)} [label={_quote(label)}];")
    for assoc in graph.schema.associations:
        for a, b in sorted(graph.edges(assoc)):
            lines.append(f"  {_quote(a.label)} -- {_quote(b.label)};")
    lines.append("}")
    return "\n".join(lines)


def pattern_to_dot(pattern: Pattern, name: str = "pattern") -> str:
    """DOT for one association pattern (Figure 5 style)."""
    lines = [f"graph {_quote(name)} {{", "  node [fontsize=9, shape=plaintext];"]
    for vertex in sorted(pattern.vertices):
        lines.append(f"  {_quote(vertex.label)};")
    for edge in sorted(pattern.edges, key=lambda e: (e.u, e.v, e.polarity.value)):
        styles = []
        if edge.is_complement:
            styles.append("style=dashed")
        if edge.derived:
            styles.append('label="D"')
        suffix = f" [{', '.join(styles)}]" if styles else ""
        lines.append(f"  {_quote(edge.u.label)} -- {_quote(edge.v.label)}{suffix};")
    lines.append("}")
    return "\n".join(lines)
