"""Engine: the Database facade over schema, objects, queries and rules."""

from repro.engine.database import Database, MutationEvent, QueryResult

__all__ = ["Database", "MutationEvent", "QueryResult"]
