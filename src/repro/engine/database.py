"""The Database facade.

Glues the subsystems together the way a user of the reproduced system would
see them: one object owning a schema graph, an object graph, a computed-
value function registry, a mutation-event stream (consumed by the knowledge
rule engine and the physical executor), and one query entry point:

* :meth:`Database.query` — evaluate an algebra :class:`Expr` (or OQL text)
  through the physical execution engine (:mod:`repro.exec`) and get a
  :class:`QueryResult` bundling the association-set with the accessors the
  paper's queries end with (instances of a class, primitive values of a
  class) and, on request, an EXPLAIN ANALYZE report.

The older entry points — :meth:`evaluate`, :meth:`select_instances`,
:meth:`values` — remain as thin delegates with ``DeprecationWarning``\\ s.

The DML methods (:meth:`insert`, :meth:`link`, ...) delegate to the object
graph and emit :class:`MutationEvent`\\ s so rules can react — the paper's
OSAM* context pairs the algebra with a rule-specification language.  The
same events keep the executor's indexes and sub-plan cache fresh.

Every database owns a :class:`~repro.obs.metrics.MetricsRegistry` (shared
with its object graph, executor and any attached rule engine): queries run,
query latency, mutation events by kind and plan-cache traffic are recorded
automatically; export with :func:`repro.obs.export.metrics_to_prometheus`.

Persistence is a lifecycle, not a pair of free functions: every database
owns a :class:`~repro.storage.engine.StorageEngine` (an in-process
:class:`~repro.storage.engine.MemoryEngine` unless told otherwise) and
the same :class:`MutationEvent` stream that keeps the arena, indexes and
statistics fresh doubles as the engine's write-ahead-log record format.
:meth:`Database.open` is the one entry point — a storage directory gets
the durable :class:`~repro.storage.engine.FileEngine` with WAL + crash
recovery, a ``.json`` path gets classic single-file snapshots, no path
gets pure memory — and :meth:`save`, :meth:`close` and ``with`` blocks
round out the lifecycle.  See :doc:`docs/storage.md <storage>`.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.core.assoc_set import AssociationSet
from repro.core.expression import EvalTrace, Expr
from repro.core.identity import IID
from repro.core.predicates import FunctionRegistry
from repro.errors import EvaluationError, StorageError
from repro.exec.executor import Executor
from repro.objects.builder import GraphBuilder
from repro.objects.graph import ObjectGraph
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, Q_ERROR_BUCKETS
from repro.obs.span import Tracer
from repro.optimizer.stats import StatisticsCatalog
from repro.schema.graph import SchemaGraph
from repro.storage.engine import FileEngine, MemoryEngine, StorageEngine
from repro.views.registry import MaterializedView, ViewRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.wal import WalRecord

__all__ = ["Database", "MutationEvent", "QueryResult"]


@dataclass(frozen=True)
class MutationEvent:
    """A change to the extensional database, delivered to listeners.

    ``kind`` is one of ``"insert"``, ``"delete"``, ``"link"``, ``"unlink"``,
    ``"update"``.  ``value`` carries the inserted/updated primitive value
    so the event is self-contained — a storage engine can write it as a
    WAL record and recovery can replay it without consulting the (gone)
    graph state.
    """

    kind: str
    instances: tuple[IID, ...]
    association: str | None = None
    value: Any = None


class QueryResult:
    """The result of one :meth:`Database.query` call.

    Wraps the :class:`~repro.core.assoc_set.AssociationSet` (``.set``,
    also reachable by iterating or ``len()``) together with the accessors
    the paper's usage model ends queries with — the instances of one
    class across the result patterns, or their primitive values — and
    the :class:`~repro.obs.explain.ExplainReport` when the query ran
    with ``explain=True``.
    """

    def __init__(
        self,
        result: AssociationSet,
        database: "Database",
        expr: Expr,
        report: Any = None,
        strategy: str | None = None,
        plan_expr: Expr | None = None,
    ) -> None:
        #: The association-set the query produced.
        self.set = result
        #: The (compiled) expression that was evaluated.
        self.expr = expr
        #: The EXPLAIN ANALYZE report (``explain=True`` only), else None.
        self.report = report
        #: Root physical strategy the plan ran under (``"explain"`` when
        #: the query ran under EXPLAIN ANALYZE).
        self.strategy = strategy
        #: The (possibly rewritten) expression that actually executed —
        #: differs from ``expr`` when ``query(..., optimize=True)`` chose
        #: a cheaper equivalent.
        self.plan_expr = plan_expr if plan_expr is not None else expr
        self._database = database

    def instances(self, cls: str) -> frozenset[IID]:
        """The instances of ``cls`` occurring in the result patterns."""
        out: set[IID] = set()
        for pattern in self.set:
            out |= pattern.instances_of(cls)
        return frozenset(out)

    def values(self, cls: str) -> set[Any]:
        """The primitive values carried by the result's ``cls`` instances.

        The "retrieval" step the paper's queries end with: Query 1 asks
        for social security *numbers*, so after ``Π(...)[SS#]`` one reads
        the values off the SS# instances.
        """
        graph = self._database.graph
        return {graph.value(i) for i in self.instances(cls)}

    def __iter__(self):
        return iter(self.set)

    def __len__(self) -> int:
        return len(self.set)

    def __contains__(self, pattern: object) -> bool:
        return pattern in self.set

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QueryResult):
            return other.set == self.set
        if isinstance(other, AssociationSet):
            return other == self.set
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.set)

    def __str__(self) -> str:
        return f"QueryResult({len(self.set)} pattern(s) for {self.expr})"


class Database:
    """One A-algebra database: schema + objects + query + events."""

    def __init__(
        self,
        schema: SchemaGraph,
        graph: ObjectGraph | None = None,
        functions: FunctionRegistry | None = None,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
        engine: StorageEngine | None = None,
    ) -> None:
        self.schema = schema
        self.graph = graph if graph is not None else ObjectGraph(schema)
        self.functions = functions if functions is not None else FunctionRegistry()
        self.builder = GraphBuilder(schema, self.graph)
        self._listeners: list[Callable[[Database, MutationEvent], None]] = []
        #: Serializes mutations (and checkpoint capture) across threads;
        #: the storage engine's background checkpointer takes it so the
        #: (graph state, WAL position) pair it writes is consistent.
        self.write_lock = threading.RLock()
        self._closed = False
        #: Where :meth:`save` rewrites the legacy single-file snapshot
        #: (set by :meth:`open` on a ``.json`` path, or by ``save(path)``).
        self._snapshot_path: Path | None = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Structured operational journal (mutation batches, plan-cache
        #: invalidations, stats refreshes, replans); the query service
        #: passes its own shared ring so engine events interleave with
        #: request events in one stream.
        self.events = (
            events if events is not None else EventLog(metrics=self.metrics)
        )
        self._m_queries = self.metrics.counter(
            "repro_queries_total", "Queries evaluated through Database.query"
        )
        self._m_query_seconds = self.metrics.histogram(
            "repro_query_seconds",
            "Wall-clock seconds per evaluated query, by root plan strategy",
        )
        self._m_events = self.metrics.counter(
            "repro_mutation_events_total", "Mutation events emitted, by kind"
        )
        self.graph.attach_metrics(self.metrics)
        # Measured statistics + execution feedback for the adaptive
        # planner; dormant (uniform assumptions apply) until analyze().
        self.stats = StatisticsCatalog(self.graph, self.metrics)
        #: Q-error above which an adaptive plan choice is dropped and the
        #: next execution re-plans (override per query via
        #: ``query(..., replan_threshold=...)``).
        self.replan_threshold = 10.0
        self._m_replans = self.metrics.counter(
            "repro_replan_total",
            "Adaptive plan choices dropped after a q-error over threshold",
        )
        self._m_plan_q_error = self.metrics.histogram(
            "repro_plan_q_error",
            "Root q-error of adaptively planned queries (estimate vs actual)",
            buckets=Q_ERROR_BUCKETS,
        )
        # The physical execution engine; creating it here also registers
        # its cache hit/miss/invalidation counters so they are present in
        # metrics exports from the first scrape.
        self.executor = Executor(self.graph, self.metrics, stats=self.stats)
        # A stats refresh makes remembered plan choices stale: drop the
        # ones that depend on the refreshed classes (results survive).
        self.stats.subscribe(self._on_stats_refresh)
        #: Materialized views, maintained incrementally off the mutation
        #: event stream; created before the engine attaches so checkpoint
        #: documents written during initialization can include view
        #: definitions.
        self.views = ViewRegistry(self)
        #: Worker pool for sharded scatter-gather execution (created on
        #: demand by ``query(shards=N)`` or explicitly by
        #: :meth:`start_shards`); ``default_shards`` makes every query
        #: consider sharding without per-call opt-in.
        self._shard_pool = None
        self._sharded_exec = None
        self.default_shards: int | None = None
        #: The storage backend consuming this database's mutation events.
        self.engine = engine if engine is not None else MemoryEngine()
        self.engine.attach(self)

    @classmethod
    def from_dataset(cls, dataset: Any, *, analyze: bool = True) -> "Database":
        """Wrap any dataset object exposing ``.schema`` and ``.graph``.

        The statistics catalog is analyzed up front (``analyze=False``
        opts out), matching :meth:`open` — every construction path leaves
        stats warm so plan choice is measured, not assumed, from the
        first query.
        """
        db = cls(dataset.schema, dataset.graph)
        if analyze:
            db.analyze()
        return db

    # ------------------------------------------------------------------
    # lifecycle: open / save / close
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: "str | Path | None" = None,
        *,
        engine: StorageEngine | None = None,
        schema: SchemaGraph | None = None,
        graph: ObjectGraph | None = None,
        create: bool = True,
        analyze: bool = True,
        functions: FunctionRegistry | None = None,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
        sync: str = "batch",
        checkpoint_interval: int = 1024,
    ) -> "Database":
        """Open a database over a storage backend.  The one entry point:

        * ``path`` is a directory (or absent and about to be created as
          one) — the durable :class:`~repro.storage.engine.FileEngine`:
          an existing store is recovered (checkpoint + WAL-tail replay),
          a fresh one is created (requires ``schema``; ``create=False``
          forbids creation).  ``sync`` and ``checkpoint_interval`` tune
          its durability/compaction knobs.
        * ``path`` is a ``.json`` file — the classic single-file
          snapshot: loaded into a :class:`MemoryEngine` database that
          remembers the path, so :meth:`save` rewrites it.
        * ``path`` is ``None`` — pure in-memory database over ``schema``
          (which is then required).

        Pass ``engine=`` to supply a configured backend explicitly (also
        accepted positionally); the path heuristics are skipped.
        ``graph`` seeds a *freshly created* store with existing data
        (``repro init`` uses this to load a dataset into a new
        directory).  ``analyze=False`` leaves the stats catalog lazy
        instead of warming it on open.  Works as a context manager:
        ``with Database.open(...) as db: ...`` closes on exit.
        """
        if isinstance(path, StorageEngine):
            # Convenience: a configured engine may be passed positionally.
            engine, path = path, None
        if engine is None:
            if path is None:
                engine = MemoryEngine()
            else:
                p = Path(path)
                if p.is_file() or (not p.exists() and p.suffix == ".json"):
                    return cls._open_snapshot(
                        p,
                        schema=schema,
                        graph=graph,
                        create=create,
                        analyze=analyze,
                        functions=functions,
                        metrics=metrics,
                        events=events,
                    )
                else:
                    engine = FileEngine(
                        p,
                        create=create,
                        sync=sync,
                        checkpoint_interval=checkpoint_interval,
                    )
        if isinstance(engine, FileEngine):
            return cls._open_store(
                engine,
                schema=schema,
                graph=graph,
                analyze=analyze,
                functions=functions,
                metrics=metrics,
                events=events,
            )
        if schema is None:
            raise StorageError("opening an in-memory database requires a schema")
        db = cls(
            schema,
            graph,
            functions=functions,
            metrics=metrics,
            events=events,
            engine=engine,
        )
        if analyze:
            db.analyze()
        return db

    @classmethod
    def _open_store(
        cls,
        engine: FileEngine,
        *,
        schema: SchemaGraph | None,
        graph: ObjectGraph | None,
        analyze: bool,
        functions: FunctionRegistry | None,
        metrics: MetricsRegistry | None,
        events: EventLog | None,
    ) -> "Database":
        """Open (recover or create) a durable ``FileEngine`` store."""
        from repro.storage.serialization import graph_from_dict, schema_from_dict

        state = engine.open_store()
        if state is None:
            if schema is None:
                raise StorageError(
                    f"creating a new store at {engine.dir} requires a schema"
                )
            db = cls(
                schema,
                graph,
                functions=functions,
                metrics=metrics,
                events=events,
                engine=engine,
            )
            engine.initialize(db)
        else:
            stored_schema = schema_from_dict(state.document["schema"])
            graph = graph_from_dict(state.document["graph"], stored_schema)
            engine.begin_recovery()
            try:
                db = cls(
                    stored_schema,
                    graph,
                    functions=functions,
                    metrics=metrics,
                    events=events,
                    engine=engine,
                )
                # Analyze *before* replaying, mirroring the live timeline
                # (the checkpoint captured an analyzed database): replayed
                # events then drive the same incremental stats maintenance
                # the original mutations did.
                if analyze:
                    db.analyze()
                # Rebuild view definitions before replaying so replayed
                # mutations maintain the materializations incrementally,
                # exactly as the original mutations did.
                db.views.load_definitions(state.document.get("views", ()))
                for record in state.records:
                    db._apply_record(record)
            finally:
                engine.end_recovery()
            db.events.emit(
                "recovery.replay",
                records=len(state.records),
                torn_bytes=state.torn_bytes,
                last_seq=engine.last_seq,
                path=str(engine.dir),
            )
            return db
        if analyze:
            db.analyze()
        return db

    @classmethod
    def _open_snapshot(
        cls,
        path: Path,
        *,
        schema: SchemaGraph | None,
        graph: ObjectGraph | None,
        create: bool,
        analyze: bool,
        functions: FunctionRegistry | None,
        metrics: MetricsRegistry | None,
        events: EventLog | None,
    ) -> "Database":
        """Open a legacy single-file JSON snapshot (memory engine)."""
        from repro.storage.serialization import read_snapshot

        if path.is_file():
            loaded_schema, loaded_graph = read_snapshot(path)
            db = cls(
                loaded_schema,
                loaded_graph,
                functions=functions,
                metrics=metrics,
                events=events,
            )
        else:
            if not create:
                raise StorageError(f"no snapshot at {path} (create=False)")
            if schema is None:
                raise StorageError(
                    f"creating a new snapshot at {path} requires a schema"
                )
            db = cls(
                schema,
                graph,
                functions=functions,
                metrics=metrics,
                events=events,
            )
        db._snapshot_path = path
        if analyze:
            db.analyze()
        return db

    def save(self, path: "str | Path | None" = None) -> None:
        """Persist the current state.

        With a durable engine and no ``path``: a checkpoint (WAL
        compaction included).  With ``path``: a standalone single-file
        JSON snapshot is exported there (any engine), and a memory-engine
        database remembers the path for future bare ``save()`` calls.
        """
        if path is None and self.engine.durable:
            self.engine.checkpoint(reason="save")
            return
        target = Path(path) if path is not None else self._snapshot_path
        if target is None:
            raise StorageError(
                "save() needs a path: in-memory database with no snapshot file"
            )
        from repro.storage.serialization import write_snapshot

        with self.write_lock:
            write_snapshot(self, target)
        if not self.engine.durable:
            self._snapshot_path = target

    def close(self) -> None:
        """Flush and close the storage engine; further mutations error.

        A durable engine checkpoints its dirty tail (unless configured
        not to) and releases the WAL.  Queries over the in-memory state
        keep working — ``close`` ends the *persistence* lifecycle.
        Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        self.stop_shards()
        self.engine.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    def describe_storage(self) -> dict[str, Any]:
        """Operational summary of the storage engine (admin surface)."""
        out = self.engine.describe()
        out["closed"] = self._closed
        if self._snapshot_path is not None:
            out["snapshot_path"] = str(self._snapshot_path)
        return out

    # ------------------------------------------------------------------
    # sharded execution
    # ------------------------------------------------------------------

    def start_shards(self, shards: int) -> None:
        """Start (or resize) the scatter-gather worker pool.

        ``query(shards=N)`` does this lazily on first use; starting the
        pool up front moves the dataset-shipping cost out of the first
        sharded query.  Also sets :attr:`default_shards` so subsequent
        queries consider sharding without a per-call argument.
        """
        self._ensure_shard_pool(shards)
        self.default_shards = shards

    @property
    def shard_workers(self) -> int:
        """Active shard-pool size (0 when sharded execution is off)."""
        if self._shard_pool is not None and not self._shard_pool.closed:
            return self._shard_pool.shards
        return 0

    def stop_shards(self) -> None:
        """Stop the worker pool, if one is running (idempotent).

        Also clears :attr:`default_shards` — a later ``query()`` without
        an explicit ``shards=`` must not silently restart the pool.
        """
        pool, self._shard_pool = self._shard_pool, None
        self._sharded_exec = None
        self.default_shards = None
        if pool is not None:
            pool.stop()

    def _ensure_shard_pool(self, shards: int):
        pool = self._shard_pool
        if pool is not None and not pool.closed and pool.shards == shards:
            return pool
        from repro.shard import ShardPool

        # Under the write lock: the pool snapshots the graph, and every
        # mutation from here on reaches it through event forwarding — a
        # concurrent writer must land in exactly one of the two.
        with self.write_lock:
            self.stop_shards()
            pool = ShardPool(
                self.schema,
                self.graph,
                shards,
                metrics=self.metrics,
                events=self.events,
            )
            self._shard_pool = pool
        return pool

    def _sharded_executor(self, pool):
        if self._sharded_exec is None or self._sharded_exec.pool is not pool:
            from repro.shard import ShardedExecutor

            self._sharded_exec = ShardedExecutor(
                self.graph, pool, self.executor, self.metrics
            )
        return self._sharded_exec

    def _dist_plan(self, expr: Expr, shards: int, force_strategy: str | None):
        from repro.shard import DistPlanner

        stats = self.stats if self.stats.analyzed else None
        return DistPlanner(self.graph, stats).plan(
            expr, shards, force_strategy=force_strategy
        )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def analyze(
        self,
        sample: int | None = None,
        classes: Iterable[str] | None = None,
        seed: int = 0,
    ) -> StatisticsCatalog:
        """ANALYZE: scan the graph and refresh the statistics catalog.

        ``sample=N`` caps the number of values/fan-outs scanned per class
        or association (deterministic under ``seed``); ``classes``
        restricts the pass.  After the first call the cost model switches
        from uniformity assumptions to measured histograms and fan-out
        distributions, and the catalog keeps itself fresh from mutation
        events.  Returns the catalog (see
        :meth:`~repro.optimizer.stats.StatisticsCatalog.summary`).
        """
        self.stats.analyze(sample=sample, seed=seed, classes=classes)
        return self.stats

    def _on_stats_refresh(self, classes: frozenset) -> None:
        dropped = self.executor.cache.invalidate_stats(classes)
        self.events.emit(
            "stats.refresh",
            version=self.stats.version,
            classes=sorted(classes),
            plans_dropped=dropped,
        )

    def _cost_model(self):
        """The cost model current statistics justify.

        Uniform assumptions until the catalog has been analyzed; recorded
        execution feedback is consulted either way.
        """
        from repro.optimizer.cost import CostModel

        if self.stats.analyzed:
            return CostModel(self.graph, stats=self.stats)
        return CostModel(self.graph, feedback=self.stats.feedback)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def query(
        self,
        q: "Expr | str",
        *,
        trace: Tracer | None = None,
        explain: bool = False,
        parallel: bool = False,
        use_cache: bool = True,
        compact: bool | None = None,
        compiled_select: bool | None = None,
        optimize: bool = False,
        replan_threshold: float | None = None,
        shards: int | None = None,
        shard_strategy: str | None = None,
    ) -> QueryResult:
        """Evaluate a query through the physical execution engine.

        ``q`` is an algebra :class:`Expr` or OQL text (compiled on the
        fly).  ``trace`` accepts any :class:`~repro.obs.span.Tracer` (the
        legacy :class:`EvalTrace` included) to record the evaluation's
        span tree.  ``parallel`` lets the scheduler evaluate independent
        plan branches on a thread pool; ``use_cache=False`` bypasses the
        sub-plan cache (reads *and* writes); ``compact`` overrides the
        planner's compact-kernel setting for this call (``False`` forces
        the reference strategies); ``compiled_select`` overrides the
        column-mask σ lowering the same way (``False`` forces the
        per-pattern object path).  With ``explain=True`` the evaluation
        runs under EXPLAIN ANALYZE — the report lands on
        ``QueryResult.report``, the cache is bypassed so every plan node
        truly executes, and ``trace`` is ignored (the report owns the
        span tree).

        With ``optimize=True`` the query first goes through the adaptive
        planner: the rewrite optimizer (costed with current statistics
        and execution feedback) picks the cheapest equivalent, the choice
        is remembered per canonical query and stamped with the stats
        version, and after execution the root q-error is checked against
        ``replan_threshold`` (default :attr:`replan_threshold`) — a miss
        drops the remembered choice so the *next* execution re-plans with
        the feedback this one recorded (``repro_replan_total``).

        With ``shards=N`` (N ≥ 2; defaults to :attr:`default_shards`) the
        distributed planner looks for a hash partitioning that moves work
        onto the scatter-gather worker pool — queries it cannot
        distribute (or cannot ship) silently run single-process, so the
        argument is always safe to pass.  ``shard_strategy`` pins a
        distributed strategy (``"co-partitioned"``/``"broadcast"``/
        ``"shuffle"``): plans not employing it are rejected, which the
        equivalence tests use to cover each code path.

        Latency is observed in the ``repro_query_seconds`` histogram
        labelled with the plan's root strategy (``strategy="explain"``
        for EXPLAIN ANALYZE runs, whose latency is not comparable).
        """
        expr = self._coerce_expr(q, "evaluate")
        started = time.perf_counter()
        report = None
        plan_expr = expr
        plan_key = plan_entry = None
        n_shards = shards if shards is not None else self.default_shards
        if explain:
            strategy = "explain"
            report = self._explain_report(expr, n_shards, shard_strategy)
            result = report.result
        else:
            if optimize:
                plan_key, plan_entry = self._adaptive_plan(expr)
                plan_expr = plan_entry.expr
            dist_plan = None
            if n_shards is not None and n_shards > 1:
                dist_plan = self._dist_plan(plan_expr, n_shards, shard_strategy)
            if dist_plan is not None:
                strategy = "sharded"
                pool = self._ensure_shard_pool(n_shards)
                result = self._sharded_executor(pool).run(
                    dist_plan, trace=trace, use_cache=use_cache
                )
            else:
                plan = self.executor.plan(
                    plan_expr, compact=compact, compiled_select=compiled_select
                )
                strategy = plan.strategy
                result = self.executor.run(
                    plan_expr,
                    trace=trace,
                    parallel=parallel,
                    use_cache=use_cache,
                    plan=plan,
                )
            if plan_entry is not None:
                self._adaptive_feedback(
                    plan_key, plan_entry, len(result), replan_threshold
                )
        self._m_queries.inc()
        self._m_query_seconds.observe(
            time.perf_counter() - started, strategy=strategy
        )
        return QueryResult(
            result, self, expr, report, strategy=strategy, plan_expr=plan_expr
        )

    def _explain_report(
        self, expr: Expr, n_shards: int | None, shard_strategy: str | None
    ):
        """EXPLAIN ANALYZE through whichever engine would run the query."""
        if n_shards is not None and n_shards > 1:
            dist_plan = self._dist_plan(expr, n_shards, shard_strategy)
            if dist_plan is not None:
                pool = self._ensure_shard_pool(n_shards)
                return self._sharded_executor(pool).explain(
                    dist_plan, self._cost_model(), self.metrics
                )
        from repro.obs.explain import explain_analyze

        return explain_analyze(
            expr,
            self.graph,
            cost_model=self._cost_model(),
            metrics=self.metrics,
            executor=self.executor,
        )

    def _adaptive_plan(self, expr: Expr):
        """The remembered (or freshly optimized) plan choice for ``expr``."""
        from repro.exec.cache import PlanEntry, canonicalize, expr_dependencies
        from repro.optimizer.planner import Optimizer

        key = canonicalize(expr)
        entry = self.executor.cache.get_plan(key)
        if entry is None or entry.stats_version != self.stats.version:
            optimizer = Optimizer(
                self.graph, metrics=self.metrics, cost_model=self._cost_model()
            )
            best = optimizer.optimize(expr)
            entry = PlanEntry(
                best.expr,
                best.estimate,
                self.stats.version,
                expr_dependencies(expr),
            )
            self.executor.cache.put_plan(key, entry)
        return key, entry

    def _adaptive_feedback(
        self,
        key: Expr,
        entry: Any,
        actual: int,
        replan_threshold: float | None,
    ) -> None:
        """Check a finished adaptive query's estimate against reality."""
        threshold = (
            replan_threshold
            if replan_threshold is not None
            else self.replan_threshold
        )
        est = max(float(entry.estimate.cardinality), 1.0)
        act = max(float(actual), 1.0)
        q_error = max(est, act) / min(est, act)
        self._m_plan_q_error.observe(q_error)
        if q_error > threshold:
            # The choice was made on numbers that were wrong by more than
            # the threshold: forget it.  This run recorded true sub-plan
            # cardinalities into the feedback store, so the re-plan sees
            # through the mis-estimate.
            self.executor.cache.drop_plan(key)
            self._m_replans.inc()
            self.events.emit(
                "replan",
                query=str(key),
                q_error=round(q_error, 3),
                threshold=threshold,
            )

    def evaluate(
        self, query: "Expr | str", trace: Tracer | None = None
    ) -> AssociationSet:
        """Deprecated: use :meth:`query` (returns a :class:`QueryResult`)."""
        warnings.warn(
            "Database.evaluate() is deprecated; use Database.query(q).set",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(query, trace=trace).set

    def explain_analyze(self, query: "Expr | str") -> "Any":
        """EXPLAIN ANALYZE: evaluate with tracing and annotate the plan.

        Returns an :class:`~repro.obs.explain.ExplainReport` whose
        ``str()`` renders the plan tree with estimated vs actual
        cardinalities, per-node timing, q-errors and the physical
        strategy chosen per node; node q-errors are also observed in this
        database's ``repro_estimate_q_error`` histogram so cost-model
        accuracy accumulates across queries.
        """
        return self.query(self._coerce_expr(query, "explain"), explain=True).report

    def compile(self, text: str) -> Expr:
        """Compile OQL text to an algebra expression (lazy import)."""
        from repro.oql import compile_oql

        return compile_oql(text, self.schema, self.functions)

    def _coerce_expr(self, query: "Expr | str", verb: str) -> Expr:
        """OQL text → compiled Expr; an Expr passes through; else error."""
        expr = self.compile(query) if isinstance(query, str) else query
        if not isinstance(expr, Expr):
            raise EvaluationError(f"cannot {verb} {query!r}")
        return expr

    def values(self, result: AssociationSet, cls: str) -> set[Any]:
        """Deprecated: use :meth:`QueryResult.values` on a query result."""
        warnings.warn(
            "Database.values() is deprecated; use Database.query(q).values(cls)",
            DeprecationWarning,
            stacklevel=2,
        )
        out: set[Any] = set()
        for pattern in result:
            for instance in pattern.instances_of(cls):
                out.add(self.graph.value(instance))
        return out

    def extent(self, cls: str) -> AssociationSet:
        """The extent of a class as an association-set of Inner-patterns."""
        return AssociationSet.of_inners(self.graph.extent(cls))

    # ------------------------------------------------------------------
    # DML with event emission
    # ------------------------------------------------------------------

    def subscribe(self, listener: Callable[["Database", MutationEvent], None]) -> None:
        """Register a mutation listener (the rule engine uses this)."""
        self._listeners.append(listener)

    def _emit(self, event: MutationEvent, pre_version: int | None = None) -> None:
        self._m_events.inc(kind=event.kind)
        # The storage engine first: the WAL must hold the record before
        # derived state reflects it (during recovery the engine skips the
        # append — the records are already on disk).
        self.engine.append(event)
        # Executor next: its indexes and cache must be consistent before
        # any listener (e.g. a rule) runs a query in reaction to the event.
        invalidated = self.executor.on_mutation(event, pre_version)
        # Views next: materializations must be fresh before any listener
        # (or a subscription push) observes the post-mutation state.
        # ``pre_version`` is the graph version the DML method saw before
        # mutating — the registry's out-of-band write guard.
        self.views.on_mutation(event, pre_version)
        # Shard replicas next: buffered here, shipped (FIFO, before any
        # query) on the next scatter — workers replay through the same
        # WAL-record path recovery uses.
        if self._shard_pool is not None and not self._shard_pool.closed:
            self._shard_pool.buffer_event(event)
        self.events.emit(
            "mutation",
            kind=event.kind,
            instances=len(event.instances),
            association=event.association,
        )
        if invalidated:
            self.events.emit(
                "plan_cache.invalidate",
                entries=invalidated,
                classes=sorted({i.cls for i in event.instances}),
            )
        for listener in self._listeners:
            listener(self, event)

    def _writable(self) -> None:
        if self._closed:
            raise StorageError("database is closed; no further mutations")

    def insert(
        self, classes: "Iterable[str] | str", value: Any = None
    ) -> dict[str, IID]:
        """Insert a new object participating in ``classes``."""
        with self.write_lock:
            self._writable()
            pre_version = self.graph.version
            created = self.builder.add_object(classes, value=value)
            self._emit(
                MutationEvent("insert", tuple(created.values()), value=value),
                pre_version,
            )
        return created

    def insert_value(self, cls: str, value: Any) -> IID:
        """Insert a primitive-class instance carrying ``value``."""
        with self.write_lock:
            self._writable()
            pre_version = self.graph.version
            instance = self.builder.add_value(cls, value)
            self._emit(MutationEvent("insert", (instance,), value=value), pre_version)
        return instance

    def link(self, a: IID, b: IID, assoc_name: str | None = None) -> None:
        """Associate two instances (emits a ``link`` event)."""
        with self.write_lock:
            self._writable()
            assoc = self.schema.resolve(a.cls, b.cls, assoc_name)
            pre_version = self.graph.version
            self.graph.add_edge(assoc, a, b)
            self._emit(MutationEvent("link", (a, b), assoc.name), pre_version)

    def unlink(self, a: IID, b: IID, assoc_name: str | None = None) -> None:
        """Remove the association between two instances."""
        with self.write_lock:
            self._writable()
            assoc = self.schema.resolve(a.cls, b.cls, assoc_name)
            pre_version = self.graph.version
            self.graph.remove_edge(assoc, a, b)
            self._emit(MutationEvent("unlink", (a, b), assoc.name), pre_version)

    def delete(self, instance: IID) -> None:
        """Delete one instance (and its incident edges)."""
        with self.write_lock:
            self._writable()
            pre_version = self.graph.version
            self.graph.remove_instance(instance)
            self._emit(MutationEvent("delete", (instance,)), pre_version)

    def update_value(self, instance: IID, value: Any) -> None:
        """Change the value carried by a primitive instance."""
        with self.write_lock:
            self._writable()
            pre_version = self.graph.version
            self.graph.set_value(instance, value)
            self._emit(MutationEvent("update", (instance,), value=value), pre_version)

    def _apply_record(self, record: "WalRecord") -> None:
        """Re-apply one WAL record during recovery.

        The mutation goes through the same graph operations and the same
        :meth:`_emit` path the original process used (the engine skips
        re-appending), so the arena, indexes and statistics catalog come
        back exactly as incremental maintenance would have left them.
        """
        kind = record.kind
        pre_version = self.graph.version
        if kind == "insert":
            # All instances of one insert share one object OID; pinning
            # it through the builder also recreates the is-a edges.
            self.builder.add_object(
                [i.cls for i in record.instances],
                oid=record.instances[0].oid,
                value=record.value,
            )
            self._emit(
                MutationEvent("insert", record.instances, value=record.value),
                pre_version,
            )
        elif kind == "delete":
            (instance,) = record.instances
            self.graph.remove_instance(instance)
            self._emit(MutationEvent("delete", (instance,)), pre_version)
        elif kind in ("link", "unlink"):
            a, b = record.instances
            assoc = self.schema.resolve(a.cls, b.cls, record.association)
            if kind == "link":
                self.graph.add_edge(assoc, a, b)
            else:
                self.graph.remove_edge(assoc, a, b)
            self._emit(MutationEvent(kind, (a, b), assoc.name), pre_version)
        elif kind == "update":
            (instance,) = record.instances
            self.graph.set_value(instance, record.value)
            self._emit(
                MutationEvent("update", (instance,), value=record.value), pre_version
            )
        else:
            raise StorageError(f"unknown WAL record kind {record.kind!r}")

    # ------------------------------------------------------------------
    # query-driven bulk operations (§2's "system-defined operations")
    # ------------------------------------------------------------------

    def select_instances(self, query: "Expr | str", cls: str) -> frozenset[IID]:
        """Deprecated: use :meth:`QueryResult.instances` on a query result."""
        warnings.warn(
            "Database.select_instances() is deprecated; use "
            "Database.query(q).instances(cls)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(query).instances(cls)

    def delete_where(self, query: "Expr | str", cls: str) -> int:
        """Delete every ``cls`` instance selected by the pattern query.

        Returns the number of instances deleted.  Incident edges go with
        them; each deletion emits its event (rules see every one).
        """
        instances = self.query(self._coerce_expr(query, "delete by")).instances(cls)
        for instance in sorted(instances):
            self.delete(instance)
        return len(instances)

    def update_where(
        self,
        query: "Expr | str",
        cls: str,
        transform: Callable[[Any], Any],
    ) -> int:
        """Rewrite the value of every selected ``cls`` instance.

        ``transform`` maps old value → new value.  Returns the number of
        instances updated.
        """
        instances = self.query(self._coerce_expr(query, "update by")).instances(cls)
        for instance in sorted(instances):
            self.update_value(instance, transform(self.graph.value(instance)))
        return len(instances)

    # ------------------------------------------------------------------
    # materialized views
    # ------------------------------------------------------------------

    def create_view(self, name: str, query: "Expr | str") -> MaterializedView:
        """Register a named materialized view over an algebra expression.

        ``query`` may be OQL text (compiled against this schema) or an
        :class:`Expr`.  The view materializes immediately and is then
        maintained incrementally off the mutation-event stream; its
        definition rides in durable checkpoints and is rebuilt on
        recovery.  Definitions must serialize — views over literal
        association-sets or opaque callback predicates are rejected.
        """
        with self.write_lock:
            self._writable()
            view = self.views.create(name, self._coerce_expr(query, "materialize"))
            if self.engine.durable:
                # View DDL rides only in checkpoint documents (the WAL
                # holds DML); anchor one now so the definition survives.
                self.engine.checkpoint(reason="view-ddl")
        return view

    def drop_view(self, name: str) -> None:
        """Remove a materialized view by name."""
        with self.write_lock:
            self._writable()
            self.views.drop(name)
            if self.engine.durable:
                self.engine.checkpoint(reason="view-ddl")

    def refresh_view(self, name: str) -> frozenset:
        """Fully recompute one view; returns its new materialization."""
        with self.write_lock:
            return self.views.refresh(name)

    def view(self, name: str) -> MaterializedView:
        """The registered view named ``name``."""
        return self.views.get(name)

    # ------------------------------------------------------------------
    # savepoints: checkpoints + rollback (poor-man's transactions)
    # ------------------------------------------------------------------
    #
    # One code path, two flavors.  `checkpoint(name)` / `rollback(name)`
    # are the named savepoints the storage engine keeps (durable files
    # under a FileEngine, in-process documents under a MemoryEngine);
    # `snapshot()` / `restore(dict)` are the anonymous flavor, where the
    # caller holds the captured document.  `rollback` accepts either a
    # checkpoint name or a snapshot dict and both funnel into `restore`.

    def checkpoint(self, name: str | None = None) -> str:
        """Capture the current state as a named savepoint; returns the name.

        Under a durable engine this writes a checkpoint document and
        compacts the WAL (the same operation the background compactor
        runs); under the memory engine it keeps the document in process.
        Either way :meth:`rollback` by the returned name restores it.
        An omitted ``name`` still checkpoints (auto-named) — useful as
        "flush + compact now" on a durable store.
        """
        with self.write_lock:
            return self.engine.checkpoint(name=name, reason="api")

    def rollback(self, to: "str | dict") -> None:
        """Roll the extensional state back to a savepoint.

        ``to`` is a checkpoint name (see :meth:`checkpoint`) or an
        anonymous snapshot dict (see :meth:`snapshot`).  Emits no
        mutation events — a rollback is not new information for rules to
        react to.
        """
        document = to if isinstance(to, dict) else self.engine.load_checkpoint(to)
        self.restore(document)

    def snapshot(self) -> dict:
        """Capture the current extensional state (instances + edges).

        The anonymous flavor of :meth:`checkpoint`: the returned dict is
        the same graph document a checkpoint stores, held by the caller
        instead of the engine.  The schema is not part of the snapshot —
        DDL is assumed settled.
        """
        from repro.storage.serialization import graph_to_dict

        with self.write_lock:
            return graph_to_dict(self.graph)

    def restore(self, snapshot: dict) -> None:
        """Replace the object graph with a previously captured snapshot.

        The underlying operation of :meth:`rollback`.  Emits no mutation
        events (a rollback is not new information for rules to react
        to); under a durable engine the restored state is immediately
        re-anchored with a fresh checkpoint so crash recovery agrees
        with what this process now sees.
        """
        from repro.storage.serialization import graph_from_dict

        with self.write_lock:
            self._writable()
            # Worker replicas track the graph through mutation events; a
            # wholesale replacement emits none, so the pool is stale —
            # stop it (the next sharded query restarts from the restored
            # state).
            self.stop_shards()
            self.graph = graph_from_dict(snapshot, self.schema)
            self.builder = GraphBuilder(self.schema, self.graph)
            self.graph.attach_metrics(self.metrics)
            # The executor's indexes, cache and statistics described the
            # replaced graph; rebuild against the restored one (re-analyzing
            # if the old catalog was live, so plan quality survives rollback).
            was_analyzed = self.stats.analyzed
            self.stats = StatisticsCatalog(self.graph, self.metrics)
            self.executor = Executor(self.graph, self.metrics, stats=self.stats)
            self.stats.subscribe(self._on_stats_refresh)
            if was_analyzed:
                self.stats.analyze(reason="restore")
            # View materializations described the replaced graph (rollback
            # emits no mutation events, so delta maintenance never saw the
            # state change): re-attach and rebuild them.
            self.views.rebind()
            if self.engine.durable:
                # The WAL tail describes the pre-rollback history; anchor
                # recovery at the restored state instead.
                self.engine.checkpoint(reason="rollback")

    def __str__(self) -> str:
        return f"Database({self.schema.name!r}, {self.graph})"
