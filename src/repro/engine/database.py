"""The Database facade.

Glues the subsystems together the way a user of the reproduced system would
see them: one object owning a schema graph, an object graph, a computed-
value function registry, a mutation-event stream (consumed by the knowledge
rule engine), and the query entry points:

* :meth:`Database.evaluate` — evaluate an algebra :class:`Expr` (or OQL
  text, compiled on the fly);
* :meth:`Database.explain_analyze` — the plan tree annotated with
  estimated vs actual cardinalities and per-node timing;
* :meth:`Database.values` — the common final step of the paper's queries:
  collect the primitive values of one class from a result association-set.

The DML methods (:meth:`insert`, :meth:`link`, ...) delegate to the object
graph and emit :class:`MutationEvent`\\ s so rules can react — the paper's
OSAM* context pairs the algebra with a rule-specification language.

Every database owns a :class:`~repro.obs.metrics.MetricsRegistry` (shared
with its object graph and any attached rule engine): queries run, query
latency, and mutation events by kind are recorded automatically; export
it with :func:`repro.obs.export.metrics_to_prometheus`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.core.assoc_set import AssociationSet
from repro.core.expression import EvalTrace, Expr
from repro.core.identity import IID
from repro.core.predicates import FunctionRegistry
from repro.errors import EvaluationError
from repro.objects.builder import GraphBuilder
from repro.objects.graph import ObjectGraph
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer
from repro.schema.graph import SchemaGraph

__all__ = ["Database", "MutationEvent"]


@dataclass(frozen=True)
class MutationEvent:
    """A change to the extensional database, delivered to listeners.

    ``kind`` is one of ``"insert"``, ``"delete"``, ``"link"``, ``"unlink"``,
    ``"update"``.
    """

    kind: str
    instances: tuple[IID, ...]
    association: str | None = None


class Database:
    """One A-algebra database: schema + objects + query + events."""

    def __init__(
        self,
        schema: SchemaGraph,
        graph: ObjectGraph | None = None,
        functions: FunctionRegistry | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.schema = schema
        self.graph = graph if graph is not None else ObjectGraph(schema)
        self.functions = functions if functions is not None else FunctionRegistry()
        self.builder = GraphBuilder(schema, self.graph)
        self._listeners: list[Callable[[Database, MutationEvent], None]] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_queries = self.metrics.counter(
            "repro_queries_total", "Queries evaluated through Database.evaluate"
        )
        self._m_query_seconds = self.metrics.histogram(
            "repro_query_seconds", "Wall-clock seconds per evaluated query"
        )
        self._m_events = self.metrics.counter(
            "repro_mutation_events_total", "Mutation events emitted, by kind"
        )
        self.graph.attach_metrics(self.metrics)

    @classmethod
    def from_dataset(cls, dataset: Any) -> "Database":
        """Wrap any dataset object exposing ``.schema`` and ``.graph``."""
        return cls(dataset.schema, dataset.graph)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def evaluate(
        self, query: "Expr | str", trace: Tracer | None = None
    ) -> AssociationSet:
        """Evaluate an algebra expression or an OQL query string.

        ``trace`` accepts any :class:`~repro.obs.span.Tracer` (the legacy
        :class:`EvalTrace` included) to record the evaluation's span tree.
        """
        expr = self.compile(query) if isinstance(query, str) else query
        if not isinstance(expr, Expr):
            raise EvaluationError(f"cannot evaluate {query!r}")
        started = time.perf_counter()
        result = expr.evaluate(self.graph, trace)
        self._m_queries.inc()
        self._m_query_seconds.observe(time.perf_counter() - started)
        return result

    def explain_analyze(self, query: "Expr | str") -> "Any":
        """EXPLAIN ANALYZE: evaluate with tracing and annotate the plan.

        Returns an :class:`~repro.obs.explain.ExplainReport` whose
        ``str()`` renders the plan tree with estimated vs actual
        cardinalities, per-node timing and q-errors; node q-errors are
        also observed in this database's ``repro_estimate_q_error``
        histogram so cost-model accuracy accumulates across queries.
        """
        from repro.obs.explain import explain_analyze

        expr = self.compile(query) if isinstance(query, str) else query
        if not isinstance(expr, Expr):
            raise EvaluationError(f"cannot explain {query!r}")
        started = time.perf_counter()
        report = explain_analyze(expr, self.graph, metrics=self.metrics)
        self._m_queries.inc()
        self._m_query_seconds.observe(time.perf_counter() - started)
        return report

    def compile(self, text: str) -> Expr:
        """Compile OQL text to an algebra expression (lazy import)."""
        from repro.oql import compile_oql

        return compile_oql(text, self.schema, self.functions)

    def values(self, result: AssociationSet, cls: str) -> set[Any]:
        """Collect the primitive values of ``cls`` across a result set.

        This is the "retrieval" step the paper's queries end with: Query 1
        asks for social security *numbers*, so after
        ``Π(...)[SS#]`` one reads the values off the SS# instances.
        """
        out: set[Any] = set()
        for pattern in result:
            for instance in pattern.instances_of(cls):
                out.add(self.graph.value(instance))
        return out

    def extent(self, cls: str) -> AssociationSet:
        """The extent of a class as an association-set of Inner-patterns."""
        return AssociationSet.of_inners(self.graph.extent(cls))

    # ------------------------------------------------------------------
    # DML with event emission
    # ------------------------------------------------------------------

    def subscribe(self, listener: Callable[["Database", MutationEvent], None]) -> None:
        """Register a mutation listener (the rule engine uses this)."""
        self._listeners.append(listener)

    def _emit(self, event: MutationEvent) -> None:
        self._m_events.inc(kind=event.kind)
        for listener in self._listeners:
            listener(self, event)

    def insert(
        self, classes: "Iterable[str] | str", value: Any = None
    ) -> dict[str, IID]:
        """Insert a new object participating in ``classes``."""
        created = self.builder.add_object(classes, value=value)
        self._emit(MutationEvent("insert", tuple(created.values())))
        return created

    def insert_value(self, cls: str, value: Any) -> IID:
        """Insert a primitive-class instance carrying ``value``."""
        instance = self.builder.add_value(cls, value)
        self._emit(MutationEvent("insert", (instance,)))
        return instance

    def link(self, a: IID, b: IID, assoc_name: str | None = None) -> None:
        """Associate two instances (emits a ``link`` event)."""
        assoc = self.schema.resolve(a.cls, b.cls, assoc_name)
        self.graph.add_edge(assoc, a, b)
        self._emit(MutationEvent("link", (a, b), assoc.name))

    def unlink(self, a: IID, b: IID, assoc_name: str | None = None) -> None:
        """Remove the association between two instances."""
        assoc = self.schema.resolve(a.cls, b.cls, assoc_name)
        self.graph.remove_edge(assoc, a, b)
        self._emit(MutationEvent("unlink", (a, b), assoc.name))

    def delete(self, instance: IID) -> None:
        """Delete one instance (and its incident edges)."""
        self.graph.remove_instance(instance)
        self._emit(MutationEvent("delete", (instance,)))

    def update_value(self, instance: IID, value: Any) -> None:
        """Change the value carried by a primitive instance."""
        self.graph.set_value(instance, value)
        self._emit(MutationEvent("update", (instance,)))

    # ------------------------------------------------------------------
    # query-driven bulk operations (§2's "system-defined operations")
    # ------------------------------------------------------------------

    def select_instances(self, query: "Expr | str", cls: str) -> frozenset[IID]:
        """The instances of ``cls`` occurring in the query's result.

        The paper's usage model: "the user can query the database by
        specifying patterns of object associations as the search condition
        to select some objects for further processing".
        """
        result = self.evaluate(query)
        out: set[IID] = set()
        for pattern in result:
            out |= pattern.instances_of(cls)
        return frozenset(out)

    def delete_where(self, query: "Expr | str", cls: str) -> int:
        """Delete every ``cls`` instance selected by the pattern query.

        Returns the number of instances deleted.  Incident edges go with
        them; each deletion emits its event (rules see every one).
        """
        instances = self.select_instances(query, cls)
        for instance in sorted(instances):
            self.delete(instance)
        return len(instances)

    def update_where(
        self,
        query: "Expr | str",
        cls: str,
        transform: Callable[[Any], Any],
    ) -> int:
        """Rewrite the value of every selected ``cls`` instance.

        ``transform`` maps old value → new value.  Returns the number of
        instances updated.
        """
        instances = self.select_instances(query, cls)
        for instance in sorted(instances):
            self.update_value(instance, transform(self.graph.value(instance)))
        return len(instances)

    # ------------------------------------------------------------------
    # snapshots (poor-man's transactions)
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Capture the current extensional state (instances + edges).

        Together with :meth:`restore` this gives save-point semantics:
        take a snapshot, mutate freely (e.g. let corrective rules run),
        and roll back if the outcome is unwanted.  The schema is not part
        of the snapshot — DDL is assumed settled.
        """
        from repro.storage.serialization import graph_to_dict

        return graph_to_dict(self.graph)

    def restore(self, snapshot: dict) -> None:
        """Replace the object graph with a previously captured snapshot.

        Emits no mutation events (a rollback is not new information for
        rules to react to).
        """
        from repro.storage.serialization import graph_from_dict

        self.graph = graph_from_dict(snapshot, self.schema)
        self.builder = GraphBuilder(self.schema, self.graph)
        self.graph.attach_metrics(self.metrics)

    def __str__(self) -> str:
        return f"Database({self.schema.name!r}, {self.graph})"
