"""Query profiler: aggregate operator statistics across evaluations.

Runs every query under a :class:`~repro.obs.span.Tracer` and aggregates
the recorded spans by their structured
:class:`~repro.obs.span.OperatorKind` — the summary a DBA (or the cost
model's maintainer) wants: how many times each operator ran, how many
patterns it produced, and where the time went.  Classification reads the
``kind`` recorded on each span; nothing is re-parsed from rendered
operator text.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.assoc_set import AssociationSet
from repro.core.expression import Expr
from repro.objects.graph import ObjectGraph
from repro.obs.span import Tracer

__all__ = ["OperatorStats", "Profiler"]


@dataclass
class OperatorStats:
    """Aggregate statistics for one operator kind."""

    calls: int = 0
    patterns: int = 0
    seconds: float = 0.0

    def add(self, patterns: int, seconds: float) -> None:
        self.calls += 1
        self.patterns += patterns
        self.seconds += seconds


@dataclass
class Profiler:
    """Collects traces for every query run through it."""

    graph: ObjectGraph
    stats: dict[str, OperatorStats] = field(
        default_factory=lambda: defaultdict(OperatorStats)
    )
    queries: int = 0

    def run(self, expr: Expr) -> AssociationSet:
        """Evaluate ``expr``, folding its span tree into the aggregates."""
        tracer = Tracer()
        result = expr.evaluate(self.graph, tracer)
        self.queries += 1
        for span in tracer.completed:
            self.stats[span.kind.label].add(
                span.output_cardinality or 0, span.seconds
            )
        return result

    def report(self) -> str:
        """A fixed-width summary table, busiest operator first."""
        lines = [
            f"{self.queries} query(ies) profiled",
            f"{'operator':<14}{'calls':>7}{'patterns':>10}{'ms':>10}",
        ]
        ordered = sorted(
            self.stats.items(), key=lambda item: item[1].seconds, reverse=True
        )
        for kind, stats in ordered:
            lines.append(
                f"{kind:<14}{stats.calls:>7}{stats.patterns:>10}"
                f"{stats.seconds * 1e3:>10.2f}"
            )
        return "\n".join(lines)
