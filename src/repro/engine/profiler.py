"""Query profiler: aggregate operator statistics across evaluations.

Wraps :class:`~repro.core.expression.EvalTrace` collection over many
queries and aggregates by operator kind — the summary a DBA (or the cost
model's maintainer) wants: how many times each operator ran, how many
patterns it produced, and where the time went.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.assoc_set import AssociationSet
from repro.core.expression import EvalTrace, Expr
from repro.objects.graph import ObjectGraph

__all__ = ["OperatorStats", "Profiler"]


@dataclass
class OperatorStats:
    """Aggregate statistics for one operator kind."""

    calls: int = 0
    patterns: int = 0
    seconds: float = 0.0

    def add(self, patterns: int, seconds: float) -> None:
        self.calls += 1
        self.patterns += patterns
        self.seconds += seconds


def _operator_kind(text: str) -> str:
    """Classify a traced expression rendering by its root operator."""
    if text.startswith("σ("):
        return "A-Select"
    if text.startswith("Π("):
        return "A-Project"
    if not text.startswith("("):
        return "extent"
    # Binary nodes render as "(left SYMBOL right)"; find the top-level
    # symbol by scanning at parenthesis depth 1.
    depth = 0
    for index, char in enumerate(text):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif depth == 1 and char in "*|!•+-÷" and text[index - 1] == " ":
            return {
                "*": "Associate",
                "|": "A-Complement",
                "!": "NonAssociate",
                "•": "A-Intersect",
                "+": "A-Union",
                "-": "A-Difference",
                "÷": "A-Divide",
            }[char]
    return "other"


@dataclass
class Profiler:
    """Collects traces for every query run through it."""

    graph: ObjectGraph
    stats: dict[str, OperatorStats] = field(
        default_factory=lambda: defaultdict(OperatorStats)
    )
    queries: int = 0

    def run(self, expr: Expr) -> AssociationSet:
        """Evaluate ``expr``, folding its trace into the aggregates."""
        trace = EvalTrace()
        result = expr.evaluate(self.graph, trace)
        self.queries += 1
        for text, patterns, seconds in trace.steps:
            self.stats[_operator_kind(text)].add(patterns, seconds)
        return result

    def report(self) -> str:
        """A fixed-width summary table, busiest operator first."""
        lines = [
            f"{self.queries} query(ies) profiled",
            f"{'operator':<14}{'calls':>7}{'patterns':>10}{'ms':>10}",
        ]
        ordered = sorted(
            self.stats.items(), key=lambda item: item[1].seconds, reverse=True
        )
        for kind, stats in ordered:
            lines.append(
                f"{kind:<14}{stats.calls:>7}{stats.patterns:>10}"
                f"{stats.seconds * 1e3:>10.2f}"
            )
        return "\n".join(lines)
