"""Executable statements of the paper's algebraic laws (§3.3, §4).

Each law is a function that evaluates both sides on concrete operands and
returns a :class:`LawCheck` carrying the two association-sets and whether
they coincide.  The property-based test-suite drives these over random
object graphs, and the optimizer's rewrite rules cite them as their
soundness witnesses.

Side conditions are first-class: :func:`associativity_condition` and
:func:`distributivity_condition` decide whether the paper's preconditions
hold for given operands, so tests can assert the law *under* its condition
and exhibit the paper's counterexamples outside it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assoc_set import AssociationSet
from repro.core.homogeneity import is_homogeneous
from repro.core.operators import (
    a_complement,
    a_intersect,
    a_union,
    associate,
    non_associate,
)
from repro.objects.graph import ObjectGraph
from repro.schema.graph import Association

__all__ = [
    "LawCheck",
    "commutativity_associate",
    "commutativity_complement",
    "commutativity_nonassociate",
    "commutativity_intersect",
    "commutativity_union",
    "idempotency_union",
    "idempotency_intersect",
    "associativity_condition",
    "associativity_associate",
    "associativity_complement",
    "associativity_intersect",
    "intersect_associativity_condition",
    "distributivity_condition",
    "dist_associate_over_union",
    "dist_complement_over_union",
    "dist_intersect_over_union",
    "dist_associate_over_intersect",
    "dist_complement_over_intersect",
    "dist_nonassociate_over_intersect",
]


@dataclass(frozen=True)
class LawCheck:
    """Result of evaluating both sides of a law."""

    name: str
    lhs: AssociationSet
    rhs: AssociationSet

    @property
    def holds(self) -> bool:
        return self.lhs == self.rhs

    def __bool__(self) -> bool:
        return self.holds

    def explain(self) -> str:
        if self.holds:
            return f"{self.name}: holds ({len(self.lhs)} patterns)"
        only_l = self.lhs.patterns - self.rhs.patterns
        only_r = self.rhs.patterns - self.lhs.patterns
        return (
            f"{self.name}: VIOLATED\n"
            f"  lhs-only: {sorted(map(str, only_l))}\n"
            f"  rhs-only: {sorted(map(str, only_r))}"
        )


# ----------------------------------------------------------------------
# commutativity (§3.3.2)
# ----------------------------------------------------------------------


def commutativity_associate(
    graph: ObjectGraph,
    assoc: Association,
    alpha: AssociationSet,
    beta: AssociationSet,
    a_cls: str | None = None,
    b_cls: str | None = None,
) -> LawCheck:
    """``α *[R(A,B)] β = β *[R(B,A)] α``."""
    lhs = associate(alpha, beta, graph, assoc, a_cls, b_cls)
    rhs = associate(beta, alpha, graph, assoc, b_cls, a_cls)
    return LawCheck("associate-commutativity", lhs, rhs)


def commutativity_complement(
    graph: ObjectGraph,
    assoc: Association,
    alpha: AssociationSet,
    beta: AssociationSet,
    a_cls: str | None = None,
    b_cls: str | None = None,
) -> LawCheck:
    """``α |[R(A,B)] β = β |[R(B,A)] α``."""
    lhs = a_complement(alpha, beta, graph, assoc, a_cls, b_cls)
    rhs = a_complement(beta, alpha, graph, assoc, b_cls, a_cls)
    return LawCheck("complement-commutativity", lhs, rhs)


def commutativity_nonassociate(
    graph: ObjectGraph,
    assoc: Association,
    alpha: AssociationSet,
    beta: AssociationSet,
    a_cls: str | None = None,
    b_cls: str | None = None,
) -> LawCheck:
    """``α ![R(A,B)] β = β ![R(B,A)] α``."""
    lhs = non_associate(alpha, beta, graph, assoc, a_cls, b_cls)
    rhs = non_associate(beta, alpha, graph, assoc, b_cls, a_cls)
    return LawCheck("nonassociate-commutativity", lhs, rhs)


def commutativity_intersect(
    alpha: AssociationSet,
    beta: AssociationSet,
    classes: frozenset[str] | None = None,
) -> LawCheck:
    """``α •{W} β = β •{W} α``."""
    lhs = a_intersect(alpha, beta, classes)
    rhs = a_intersect(beta, alpha, classes)
    return LawCheck("intersect-commutativity", lhs, rhs)


def commutativity_union(alpha: AssociationSet, beta: AssociationSet) -> LawCheck:
    """``α + β = β + α``."""
    return LawCheck("union-commutativity", a_union(alpha, beta), a_union(beta, alpha))


# ----------------------------------------------------------------------
# idempotency (§3.3.2)
# ----------------------------------------------------------------------


def idempotency_union(alpha: AssociationSet) -> LawCheck:
    """``α + α = α``."""
    return LawCheck("union-idempotency", a_union(alpha, alpha), alpha)


def idempotency_intersect(alpha: AssociationSet) -> LawCheck:
    """``α • α = α`` — valid when ``α`` is homogeneous.

    The caller is responsible for the homogeneity side condition; use
    :func:`repro.core.homogeneity.is_homogeneous`.
    """
    return LawCheck("intersect-idempotency", a_intersect(alpha, alpha, None), alpha)


# ----------------------------------------------------------------------
# conditional associativity (§3.3.2(1), (2), (6))
# ----------------------------------------------------------------------


def associativity_condition(
    alpha: AssociationSet,
    gamma: AssociationSet,
    inner_beta_class: str,
    inner_gamma_class: str,
) -> bool:
    """The ``C ∉ {X} ∧ B ∉ {Z}`` condition of `*`/`|` associativity.

    ``inner_gamma_class`` is ``C`` (the class through which ``β`` joins
    ``γ``); it must not occur in ``α``'s classes ``{X}``.
    ``inner_beta_class`` is ``B`` (the class through which ``α`` joins
    ``β``); it must not occur in ``γ``'s classes ``{Z}``.
    """
    return (
        inner_gamma_class not in alpha.classes()
        and inner_beta_class not in gamma.classes()
    )


def associativity_associate(
    graph: ObjectGraph,
    assoc_ab: Association,
    assoc_cd: Association,
    alpha: AssociationSet,
    beta: AssociationSet,
    gamma: AssociationSet,
    ab: tuple[str, str],
    cd: tuple[str, str],
) -> LawCheck:
    """``(α *[R(A,B)] β) *[R(C,D)] γ = α *[R(A,B)] (β *[R(C,D)] γ)``.

    ``ab`` = (A, B) orientation for the α/β join; ``cd`` = (C, D) for the
    join with γ.  Holds under :func:`associativity_condition`.
    """
    lhs = associate(
        associate(alpha, beta, graph, assoc_ab, *ab), gamma, graph, assoc_cd, *cd
    )
    rhs = associate(
        alpha, associate(beta, gamma, graph, assoc_cd, *cd), graph, assoc_ab, *ab
    )
    return LawCheck("associate-associativity", lhs, rhs)


def associativity_complement(
    graph: ObjectGraph,
    assoc_ab: Association,
    assoc_cd: Association,
    alpha: AssociationSet,
    beta: AssociationSet,
    gamma: AssociationSet,
    ab: tuple[str, str],
    cd: tuple[str, str],
) -> LawCheck:
    """``(α |[R(A,B)] β) |[R(C,D)] γ = α |[R(A,B)] (β |[R(C,D)] γ)``."""
    lhs = a_complement(
        a_complement(alpha, beta, graph, assoc_ab, *ab), gamma, graph, assoc_cd, *cd
    )
    rhs = a_complement(
        alpha, a_complement(beta, gamma, graph, assoc_cd, *cd), graph, assoc_ab, *ab
    )
    return LawCheck("complement-associativity", lhs, rhs)


def intersect_associativity_condition(
    alpha: AssociationSet,
    gamma: AssociationSet,
    w1: frozenset[str],
    w2: frozenset[str],
) -> bool:
    """``({W₁}-{W₂}) ∩ {Z} = φ ∧ ({W₂}-{W₁}) ∩ {X} = φ``."""
    return not ((w1 - w2) & gamma.classes()) and not ((w2 - w1) & alpha.classes())


def associativity_intersect(
    alpha: AssociationSet,
    beta: AssociationSet,
    gamma: AssociationSet,
    w1: frozenset[str],
    w2: frozenset[str],
) -> LawCheck:
    """``(α •{W₁} β) •{W₂} γ = α •{W₁} (β •{W₂} γ)``."""
    lhs = a_intersect(a_intersect(alpha, beta, w1), gamma, w2)
    rhs = a_intersect(alpha, a_intersect(beta, gamma, w2), w1)
    return LawCheck("intersect-associativity", lhs, rhs)


# ----------------------------------------------------------------------
# distributivity (§4 a–f)
# ----------------------------------------------------------------------


def dist_associate_over_union(
    graph: ObjectGraph,
    assoc: Association,
    alpha: AssociationSet,
    beta: AssociationSet,
    gamma: AssociationSet,
    ab: tuple[str | None, str | None] = (None, None),
) -> LawCheck:
    """a) ``α *[R] (β + γ) = α *[R] β + α *[R] γ`` (unconditional)."""
    lhs = associate(alpha, a_union(beta, gamma), graph, assoc, *ab)
    rhs = a_union(
        associate(alpha, beta, graph, assoc, *ab),
        associate(alpha, gamma, graph, assoc, *ab),
    )
    return LawCheck("associate-over-union", lhs, rhs)


def dist_complement_over_union(
    graph: ObjectGraph,
    assoc: Association,
    alpha: AssociationSet,
    beta: AssociationSet,
    gamma: AssociationSet,
    ab: tuple[str | None, str | None] = (None, None),
) -> LawCheck:
    """b) ``α |[R] (β + γ) = α |[R] β + α |[R] γ`` (unconditional)."""
    lhs = a_complement(alpha, a_union(beta, gamma), graph, assoc, *ab)
    rhs = a_union(
        a_complement(alpha, beta, graph, assoc, *ab),
        a_complement(alpha, gamma, graph, assoc, *ab),
    )
    return LawCheck("complement-over-union", lhs, rhs)


def dist_intersect_over_union(
    alpha: AssociationSet,
    beta: AssociationSet,
    gamma: AssociationSet,
    classes: frozenset[str] | None = None,
) -> LawCheck:
    """c) ``α •{X} (β + γ) = α •{X} β + α •{X} γ`` (unconditional)."""
    lhs = a_intersect(alpha, a_union(beta, gamma), classes)
    rhs = a_union(
        a_intersect(alpha, beta, classes), a_intersect(alpha, gamma, classes)
    )
    return LawCheck("intersect-over-union", lhs, rhs)


def distributivity_condition(
    alpha: AssociationSet,
    beta: AssociationSet,
    gamma: AssociationSet,
    cl2: str,
    w: frozenset[str],
) -> bool:
    """The three §4 conditions for laws d), e), f).

    i)   ``CL₂ ∈ W`` — the operand end class is intersected over;
    ii)  ``X ∩ Y = X ∩ Z = φ`` — α's classes are disjoint from β's and γ's;
    iii) ``α`` is a homogeneous association-set.
    """
    x = alpha.classes()
    return (
        cl2 in w
        and not (x & beta.classes())
        and not (x & gamma.classes())
        and is_homogeneous(alpha)
    )


def _dist_over_intersect(
    name: str,
    op,
    graph: ObjectGraph,
    assoc: Association,
    alpha: AssociationSet,
    beta: AssociationSet,
    gamma: AssociationSet,
    w: frozenset[str],
    ab: tuple[str | None, str | None],
) -> LawCheck:
    lhs = op(alpha, a_intersect(beta, gamma, w), graph, assoc, *ab)
    w_union_x = w | alpha.classes()
    rhs = a_intersect(
        op(alpha, beta, graph, assoc, *ab),
        op(alpha, gamma, graph, assoc, *ab),
        w_union_x,
    )
    return LawCheck(name, lhs, rhs)


def dist_associate_over_intersect(
    graph: ObjectGraph,
    assoc: Association,
    alpha: AssociationSet,
    beta: AssociationSet,
    gamma: AssociationSet,
    w: frozenset[str],
    ab: tuple[str | None, str | None] = (None, None),
) -> LawCheck:
    """d) ``α *[R] (β •{W} γ) = (α *[R] β) •{W∪X} (α *[R] γ)``.

    Holds under :func:`distributivity_condition`.
    """
    return _dist_over_intersect(
        "associate-over-intersect", associate, graph, assoc, alpha, beta, gamma, w, ab
    )


def dist_complement_over_intersect(
    graph: ObjectGraph,
    assoc: Association,
    alpha: AssociationSet,
    beta: AssociationSet,
    gamma: AssociationSet,
    w: frozenset[str],
    ab: tuple[str | None, str | None] = (None, None),
) -> LawCheck:
    """e) ``α |[R] (β •{W} γ) = (α |[R] β) •{W∪X} (α |[R] γ)``."""
    return _dist_over_intersect(
        "complement-over-intersect",
        a_complement,
        graph,
        assoc,
        alpha,
        beta,
        gamma,
        w,
        ab,
    )


def dist_nonassociate_over_intersect(
    graph: ObjectGraph,
    assoc: Association,
    alpha: AssociationSet,
    beta: AssociationSet,
    gamma: AssociationSet,
    w: frozenset[str],
    ab: tuple[str | None, str | None] = (None, None),
) -> LawCheck:
    """f) ``α ![R] (β •{W} γ) = (α ![R] β) •{W∪X} (α ![R] γ)``."""
    return _dist_over_intersect(
        "nonassociate-over-intersect",
        non_associate,
        graph,
        assoc,
        alpha,
        beta,
        gamma,
        w,
        ab,
    )
