"""Association patterns (§3.1).

An association pattern is a connected subgraph of the object graph extended
with complement edges.  Algebraically a pattern is "uniquely defined by its
algebraic representation as a set of primitive patterns" — a set of vertices
(Inner-patterns) plus a set of polarized edges (Inter-/Complement-patterns,
derived or not).

:class:`Pattern` is immutable and hashable, so association-sets can be plain
(frozen) sets of patterns, which gives the paper's duplicate-free semantics
for free.

Design notes
------------
* Vertex set and edge set are stored explicitly.  For any connected pattern
  with more than one vertex the vertex set is derivable from the edges, but
  a pattern may be a single Inner-pattern ``(a)`` with no edge at all, and
  intermediate results of A-Project may momentarily hold several components.
* Equality is extensional: equal vertex sets and equal edge sets (recall
  that a derived edge equals its non-derived counterpart — see
  :mod:`repro.core.edges`).
* The containment/overlap relationships of §3.2 are methods here.
* ``_hash`` is computed eagerly at construction (every pattern produced by
  an operator is immediately inserted into a set, so the hash is always
  needed); ``_adj`` stays lazy on purpose — most patterns are only hashed
  and compared, never walked, and building adjacency for them would cost
  more than it saves.  Operator-internal callers that union or subset
  already-validated patterns go through :meth:`_from_parts`, which skips
  the O(E) endpoint re-validation of ``__init__``.
"""

from __future__ import annotations

import enum
from collections import Counter, defaultdict, deque
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.edges import Edge, Polarity
from repro.core.identity import IID
from repro.errors import PatternError

__all__ = ["Relationship", "Pattern"]


class Relationship(enum.Enum):
    """The four possible relationships between two patterns (§3.2)."""

    NON_OVERLAP = "non-overlap"
    OVERLAP = "overlap"
    CONTAINS = "contains"  # self ⊇ other
    CONTAINED = "contained"  # self ⊆ other
    EQUAL = "equal"


class Pattern:
    """An immutable association pattern.

    Construct via the classmethods :meth:`inner`, :meth:`from_edges`, or
    :meth:`build`; the raw constructor validates that every edge endpoint is
    a declared vertex.
    """

    __slots__ = ("_vertices", "_edges", "_hash", "_adj")

    def __init__(self, vertices: Iterable[IID], edges: Iterable[Edge] = ()) -> None:
        vset = frozenset(vertices)
        eset = frozenset(edges)
        for edge in eset:
            if edge.u not in vset or edge.v not in vset:
                raise PatternError(
                    f"edge {edge} has an endpoint outside the vertex set"
                )
        if not vset:
            raise PatternError("a pattern must contain at least one Inner-pattern")
        self._vertices = vset
        self._edges = eset
        self._hash = hash((vset, eset))
        self._adj: Mapping[IID, frozenset[Edge]] | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    _EMPTY_EDGES: frozenset[Edge] = frozenset()

    @classmethod
    def _from_parts(
        cls, vertices: frozenset[IID], edges: frozenset[Edge] = _EMPTY_EDGES
    ) -> "Pattern":
        """Trusted constructor: every edge endpoint is known to be in
        ``vertices`` and ``vertices`` is known non-empty.  Skips the O(E)
        endpoint validation of ``__init__`` — only for callers whose inputs
        are unions/subsets of already-validated patterns.
        """
        self = object.__new__(cls)
        self._vertices = vertices
        self._edges = edges
        self._hash = hash((vertices, edges))
        self._adj = None
        return self

    @classmethod
    def inner(cls, vertex: IID) -> "Pattern":
        """The Inner-pattern ``(a)``: a single vertex, no edges."""
        return cls._from_parts(frozenset((vertex,)))

    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], extra_vertices: Iterable[IID] = ()
    ) -> "Pattern":
        """A pattern whose vertex set is induced by ``edges``.

        ``extra_vertices`` adds isolated Inner-patterns (used by A-Project
        when only a single-vertex subexpression matched).
        """
        edge_set = frozenset(edges)
        vertices = set(extra_vertices)
        for edge in edge_set:
            vertices.add(edge.u)
            vertices.add(edge.v)
        if not vertices:
            raise PatternError("a pattern must contain at least one Inner-pattern")
        return cls._from_parts(frozenset(vertices), edge_set)

    @classmethod
    def build(cls, *parts: "Pattern | Edge | IID") -> "Pattern":
        """Union arbitrary patterns, edges, and vertices into one pattern."""
        vertices: set[IID] = set()
        edges: set[Edge] = set()
        for part in parts:
            if isinstance(part, Pattern):
                vertices |= part._vertices
                edges |= part._edges
            elif isinstance(part, Edge):
                edges.add(part)
                vertices.add(part.u)
                vertices.add(part.v)
            elif isinstance(part, IID):
                vertices.add(part)
            else:  # pragma: no cover - defensive
                raise PatternError(f"cannot build a pattern from {part!r}")
        if not vertices:
            raise PatternError("a pattern must contain at least one Inner-pattern")
        return cls._from_parts(frozenset(vertices), frozenset(edges))

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def vertices(self) -> frozenset[IID]:
        """The Inner-patterns of this pattern."""
        return self._vertices

    @property
    def edges(self) -> frozenset[Edge]:
        """The binary primitive patterns of this pattern."""
        return self._edges

    @property
    def is_inner(self) -> bool:
        """Whether this is a single Inner-pattern."""
        return len(self._vertices) == 1 and not self._edges

    def __len__(self) -> int:
        """Number of Inner-patterns (vertices)."""
        return len(self._vertices)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, IID):
            return item in self._vertices
        if isinstance(item, Edge):
            return item in self._edges
        return False

    def __iter__(self) -> Iterator[IID]:
        return iter(self._vertices)

    def classes(self) -> frozenset[str]:
        """The set of classes whose instances appear in the pattern."""
        return frozenset(v.cls for v in self._vertices)

    def class_counts(self) -> Counter:
        """Multiset of classes: how many Inner-patterns per class."""
        return Counter(v.cls for v in self._vertices)

    def instances_of(self, cls: str) -> frozenset[IID]:
        """The Inner-patterns belonging to class ``cls``."""
        return frozenset(v for v in self._vertices if v.cls == cls)

    def has_class(self, cls: str) -> bool:
        """Whether the pattern has at least one Inner-pattern of ``cls``."""
        return any(v.cls == cls for v in self._vertices)

    def oids(self) -> frozenset[int]:
        """All object identifiers present in the pattern."""
        return frozenset(v.oid for v in self._vertices)

    # ------------------------------------------------------------------
    # adjacency and connectivity
    # ------------------------------------------------------------------

    def _adjacency(self) -> Mapping[IID, frozenset[Edge]]:
        if self._adj is None:
            adj: dict[IID, set[Edge]] = {v: set() for v in self._vertices}
            for edge in self._edges:
                adj[edge.u].add(edge)
                adj[edge.v].add(edge)
            self._adj = {v: frozenset(s) for v, s in adj.items()}
        return self._adj

    def edges_at(self, vertex: IID) -> frozenset[Edge]:
        """All edges incident to ``vertex``."""
        try:
            return self._adjacency()[vertex]
        except KeyError:
            raise PatternError(f"{vertex} is not a vertex of this pattern") from None

    def neighbors(self, vertex: IID) -> frozenset[IID]:
        """Vertices adjacent to ``vertex`` (over either edge polarity)."""
        return frozenset(e.other(vertex) for e in self.edges_at(vertex))

    def degree(self, vertex: IID) -> int:
        """Number of edges (any polarity) incident to ``vertex``."""
        return len(self.edges_at(vertex))

    def is_connected(self) -> bool:
        """Connectivity in the extended sense of §3.1.

        Complement edges count as edges: "a connected graph is a graph in
        which there exists at least one path between any two vertices and
        each path may contain regular-edges, complement-edges, or a
        combination of the two."
        """
        start = next(iter(self._vertices))
        seen = {start}
        frontier = deque((start,))
        while frontier:
            here = frontier.popleft()
            for nxt in self.neighbors(here):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == len(self._vertices)

    def components(self) -> list["Pattern"]:
        """Connected components, each as its own pattern."""
        remaining = set(self._vertices)
        out: list[Pattern] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            frontier = deque((start,))
            comp_edges: set[Edge] = set()
            while frontier:
                here = frontier.popleft()
                for edge in self.edges_at(here):
                    comp_edges.add(edge)
                    nxt = edge.other(here)
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            remaining -= seen
            out.append(Pattern._from_parts(frozenset(seen), frozenset(comp_edges)))
        return out

    # ------------------------------------------------------------------
    # §3.2 relationships
    # ------------------------------------------------------------------

    def contains(self, other: "Pattern") -> bool:
        """Whether ``other`` is a subpattern of ``self`` (``other ⊆ self``).

        All primitive patterns (Inner-patterns and edges) of ``other`` must
        appear in ``self``.
        """
        return other._vertices <= self._vertices and other._edges <= self._edges

    def overlaps(self, other: "Pattern") -> bool:
        """Whether the two patterns share at least one Inner-pattern."""
        return not self._vertices.isdisjoint(other._vertices)

    def relationship(self, other: "Pattern") -> Relationship:
        """Classify the §3.2 relationship between ``self`` and ``other``."""
        fwd = self.contains(other)
        bwd = other.contains(self)
        if fwd and bwd:
            return Relationship.EQUAL
        if fwd:
            return Relationship.CONTAINS
        if bwd:
            return Relationship.CONTAINED
        if self.overlaps(other):
            return Relationship.OVERLAP
        return Relationship.NON_OVERLAP

    # ------------------------------------------------------------------
    # combination
    # ------------------------------------------------------------------

    def union(self, other: "Pattern", *extra_edges: Edge) -> "Pattern":
        """Concatenate two patterns, optionally via connecting edges.

        This is the raw merge used by Associate / A-Complement /
        NonAssociate / A-Intersect: the vertex and edge sets are unioned and
        ``extra_edges`` (the connecting primitive pattern) added.
        """
        vertices = self._vertices | other._vertices
        edges = self._edges | other._edges
        if extra_edges:
            for edge in extra_edges:
                if edge.u not in vertices or edge.v not in vertices:
                    raise PatternError(
                        f"connecting edge {edge} has an endpoint outside both operands"
                    )
            edges |= frozenset(extra_edges)
        return Pattern._from_parts(vertices, edges)

    def restricted_to(self, vertices: Iterable[IID]) -> "Pattern | None":
        """Induced subpattern on ``vertices`` (``None`` if empty)."""
        keep = self._vertices & frozenset(vertices)
        if not keep:
            return None
        edges = frozenset(e for e in self._edges if e.u in keep and e.v in keep)
        return Pattern._from_parts(keep, edges)

    # ------------------------------------------------------------------
    # paths (used by A-Project)
    # ------------------------------------------------------------------

    def simple_paths(self, src: IID, dst: IID) -> Iterator[list[Edge]]:
        """Yield every simple path (as an edge list) from ``src`` to ``dst``."""
        if src not in self._vertices or dst not in self._vertices:
            return
        stack: list[tuple[IID, list[Edge], set[IID]]] = [(src, [], {src})]
        while stack:
            here, path, seen = stack.pop()
            for edge in self.edges_at(here):
                nxt = edge.other(here)
                if nxt == dst:
                    yield path + [edge]
                elif nxt not in seen:
                    stack.append((nxt, path + [edge], seen | {nxt}))

    def path_polarity(
        self, src: IID, dst: IID, via_classes: Sequence[str] = ()
    ) -> Polarity | None:
        """Polarity of the derived pattern linking ``src`` to ``dst``.

        Considers every simple path from ``src`` to ``dst`` whose vertex
        class sequence contains ``via_classes`` as a subsequence (the
        "minimal number of classes along the path which can uniquely
        identify that path", §3.3.2(4)).  Returns ``Polarity.REGULAR`` if
        some qualifying path consists only of regular edges, otherwise
        ``Polarity.COMPLEMENT`` if any qualifying path exists at all, and
        ``None`` if none does.
        """
        found = False
        for path in self.simple_paths(src, dst):
            if via_classes and not _class_subsequence(src, path, via_classes):
                continue
            found = True
            if all(edge.is_regular for edge in path):
                return Polarity.REGULAR
        return Polarity.COMPLEMENT if found else None

    # ------------------------------------------------------------------
    # topology (used by the homogeneity test, §3.2)
    # ------------------------------------------------------------------

    def topology_signature(self) -> tuple:
        """An isomorphism-invariant certificate of the pattern's shape.

        Two patterns with different signatures are guaranteed
        non-isomorphic under class-preserving, polarity-preserving
        isomorphism.  Equal signatures are confirmed by the exact
        :meth:`isomorphic_to` check.  The signature is a
        Weisfeiler-Lehman-style colour refinement over (class, degree,
        incident polarities).
        """
        colors: dict[IID, tuple] = {
            v: (v.cls, len(self.edges_at(v))) for v in self._vertices
        }
        for _ in range(max(1, len(self._vertices))):
            new_colors: dict[IID, tuple] = {}
            for v in self._vertices:
                neigh = sorted(
                    (e.polarity.value, colors[e.other(v)]) for e in self.edges_at(v)
                )
                new_colors[v] = (colors[v], tuple(neigh))
            if len(set(new_colors.values())) == len(set(colors.values())):
                colors = new_colors
                break
            colors = new_colors
        return tuple(sorted(Counter(colors.values()).items()))

    def isomorphic_to(self, other: "Pattern") -> bool:
        """Exact class- and polarity-preserving graph isomorphism.

        Patterns are small (they live inside queries), so a straightforward
        backtracking matcher is adequate and keeps the core dependency-free.
        """
        if len(self._vertices) != len(other._vertices):
            return False
        if len(self._edges) != len(other._edges):
            return False
        if self.class_counts() != other.class_counts():
            return False
        if self.topology_signature() != other.topology_signature():
            return False
        return _find_isomorphism(self, other)

    # ------------------------------------------------------------------
    # dunder / rendering
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self._vertices == other._vertices and self._edges == other._edges

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        parts: list[str] = []
        covered: set[IID] = set()
        for edge in sorted(
            self._edges, key=lambda e: (e.u, e.v, e.polarity.value)
        ):
            mark = "~" if edge.is_complement else ""
            parts.append(f"{mark}{edge.u.label} {edge.v.label}")
            covered.add(edge.u)
            covered.add(edge.v)
        for vertex in sorted(self._vertices - covered):
            parts.append(vertex.label)
        return "(" + ", ".join(parts) + ")"

    def __repr__(self) -> str:
        return f"Pattern{self}"


def _class_subsequence(src: IID, path: list[Edge], via_classes: Sequence[str]) -> bool:
    """Whether the path's vertex class sequence contains ``via_classes``.

    The vertex sequence starts at ``src`` and follows the edges in order.
    """
    sequence = [src.cls]
    here = src
    for edge in path:
        here = edge.other(here)
        sequence.append(here.cls)
    it = iter(sequence)
    return all(cls in it for cls in via_classes)


def _find_isomorphism(a: Pattern, b: Pattern) -> bool:
    """Backtracking search for a class/polarity-preserving isomorphism."""
    b_by_class: dict[str, list[IID]] = defaultdict(list)
    for v in b.vertices:
        b_by_class[v.cls].append(v)
    # Order a's vertices to keep the search tree connected where possible.
    a_vertices = sorted(a.vertices, key=lambda v: (-a.degree(v), v))

    def extend(mapping: dict[IID, IID], used: set[IID], index: int) -> bool:
        if index == len(a_vertices):
            return True
        av = a_vertices[index]
        for bv in b_by_class[av.cls]:
            if bv in used:
                continue
            if a.degree(av) != b.degree(bv):
                continue
            ok = True
            for edge in a.edges_at(av):
                other_a = edge.other(av)
                if other_a in mapping:
                    image = Edge(bv, mapping[other_a], edge.polarity)
                    if image not in b.edges:
                        ok = False
                        break
            if not ok:
                continue
            mapping[av] = bv
            used.add(bv)
            if extend(mapping, used, index + 1):
                return True
            del mapping[av]
            used.discard(bv)
        return False

    return extend({}, set(), 0)
