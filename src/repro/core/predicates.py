"""Predicate language for A-Select (§3.3.2(3)).

The paper defines a predicate as ``P = T₁ θ₁ T₂ θ₂ ... θₙ₋₁ Tₙ`` where each
term ``Tᵢ`` compares two expressions and each ``θᵢ`` is a Boolean operator.
Expressions may apply *computed-value functions* to class instances (the
paper's ``top(S)``, ``front(Q)`` example) as long as they are side-effect
free.

Value expressions evaluate to a **list of values** because a pattern may
hold several instances of a class; a comparison is satisfied
*existentially* — some pair of operand values must satisfy the comparison —
which matches how the paper's example queries read (``Name = "CIS"`` holds
if the pattern's Name instance carries the value ``CIS``).  A universal
reading is available via :class:`Comparison`'s ``quantifier`` argument.

Functions are looked up in a :class:`FunctionRegistry`; they receive the
object graph and one instance, and must be pure.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.core.identity import IID
from repro.core.pattern import Pattern
from repro.errors import PredicateError
from repro.objects.graph import ObjectGraph

__all__ = [
    "FunctionRegistry",
    "ValueExpr",
    "Const",
    "ClassValues",
    "ClassInstances",
    "Apply",
    "ValueUnion",
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "Callback",
    "TruePredicate",
    "value_equals",
    "DEFAULT_REGISTRY",
]


class FunctionRegistry:
    """Named, side-effect-free computed-value functions.

    The algebra "allows an attribute [to] have a computed value ... the
    implementations of the function and the procedure are invisible to the
    algebra" (§3.3.2(1)).  Registered callables receive
    ``(graph, instance)`` and return a value.
    """

    def __init__(self) -> None:
        self._functions: dict[str, Callable[[ObjectGraph, IID], Any]] = {}

    def register(
        self, name: str, fn: Callable[[ObjectGraph, IID], Any]
    ) -> None:
        if name in self._functions:
            raise PredicateError(f"function {name!r} already registered")
        self._functions[name] = fn

    def lookup(self, name: str) -> Callable[[ObjectGraph, IID], Any]:
        try:
            return self._functions[name]
        except KeyError:
            raise PredicateError(f"unknown function {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._functions


#: A process-wide default registry; the engine owns its own copy normally.
DEFAULT_REGISTRY = FunctionRegistry()


class ValueExpr(ABC):
    """An expression yielding a list of values for a pattern."""

    @abstractmethod
    def values(self, pattern: Pattern, graph: ObjectGraph) -> list[Any]:
        """Evaluate against one pattern."""

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        return self.__class__.__name__


class Const(ValueExpr):
    """A literal constant."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Const", repr(self.value)))

    def values(self, pattern: Pattern, graph: ObjectGraph) -> list[Any]:
        return [self.value]

    def __str__(self) -> str:
        return repr(self.value)


class ClassValues(ValueExpr):
    """The self-describing values of the pattern's instances of a class.

    This is what a bare primitive-class name means inside a predicate:
    ``Name = 'CIS'`` compares the values of the pattern's ``Name``
    instances with the constant.
    """

    def __init__(self, cls: str) -> None:
        self.cls = cls

    def values(self, pattern: Pattern, graph: ObjectGraph) -> list[Any]:
        return [graph.value(i) for i in sorted(pattern.instances_of(self.cls))]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClassValues) and other.cls == self.cls

    def __hash__(self) -> int:
        return hash(("ClassValues", self.cls))

    def __str__(self) -> str:
        return self.cls


class ClassInstances(ValueExpr):
    """The pattern's instances (IIDs) of a class — inputs for functions."""

    def __init__(self, cls: str) -> None:
        self.cls = cls

    def values(self, pattern: Pattern, graph: ObjectGraph) -> list[Any]:
        return sorted(pattern.instances_of(self.cls))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClassInstances) and other.cls == self.cls

    def __hash__(self) -> int:
        return hash(("ClassInstances", self.cls))

    def __str__(self) -> str:
        return f"instances({self.cls})"


class Apply(ValueExpr):
    """Apply a registered function to every value of the operand."""

    def __init__(
        self,
        fn_name: str,
        operand: ValueExpr,
        registry: FunctionRegistry | None = None,
    ) -> None:
        self.fn_name = fn_name
        self.operand = operand
        self.registry = registry if registry is not None else DEFAULT_REGISTRY

    def values(self, pattern: Pattern, graph: ObjectGraph) -> list[Any]:
        fn = self.registry.lookup(self.fn_name)
        return [fn(graph, value) for value in self.operand.values(pattern, graph)]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Apply)
            and other.fn_name == self.fn_name
            and other.operand == self.operand
        )

    def __hash__(self) -> int:
        return hash(("Apply", self.fn_name, self.operand))

    def __str__(self) -> str:
        return f"{self.fn_name}({self.operand})"


class ValueUnion(ValueExpr):
    """Set-union of values (the ``front(Q) ∪ tail(Q)`` of the paper)."""

    def __init__(self, *operands: ValueExpr) -> None:
        self.operands = operands

    def values(self, pattern: Pattern, graph: ObjectGraph) -> list[Any]:
        out: list[Any] = []
        for operand in self.operands:
            out.extend(operand.values(pattern, graph))
        return out

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ValueUnion) and other.operands == self.operands

    def __hash__(self) -> int:
        return hash(("ValueUnion", self.operands))

    def __str__(self) -> str:
        return " ∪ ".join(str(o) for o in self.operands)


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "in": lambda l, r: l in r if isinstance(r, (set, frozenset, list, tuple)) else l == r,
}


class Predicate(ABC):
    """A Boolean condition on a single association pattern."""

    @abstractmethod
    def evaluate(self, pattern: Pattern, graph: ObjectGraph) -> bool:
        """Whether the pattern satisfies the predicate."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class Comparison(Predicate):
    """``T = lhs op rhs`` with existential (default) or universal matching."""

    def __init__(
        self,
        left: ValueExpr,
        op: str,
        right: ValueExpr,
        quantifier: str = "exists",
    ) -> None:
        if op not in _COMPARATORS:
            raise PredicateError(f"unknown comparison operator {op!r}")
        if quantifier not in ("exists", "forall"):
            raise PredicateError(f"unknown quantifier {quantifier!r}")
        self.left = left
        self.op = op
        self.right = right
        self.quantifier = quantifier

    def evaluate(self, pattern: Pattern, graph: ObjectGraph) -> bool:
        compare = _COMPARATORS[self.op]
        lefts = self.left.values(pattern, graph)
        rights = self.right.values(pattern, graph)
        if self.op == "in":
            pool = list(rights)
            results = [l in pool for l in lefts]
        else:
            results = []
            for l in lefts:
                for r in rights:
                    try:
                        results.append(bool(compare(l, r)))
                    except TypeError:
                        results.append(False)
        if not results:
            return False
        if self.quantifier == "exists":
            return any(results)
        return all(results)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and other.left == self.left
            and other.op == self.op
            and other.right == self.right
            and other.quantifier == self.quantifier
        )

    def __hash__(self) -> int:
        return hash(("Comparison", self.left, self.op, self.right, self.quantifier))

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


class And(Predicate):
    """Conjunction: every operand predicate must hold."""

    def __init__(self, *operands: Predicate) -> None:
        self.operands = operands

    def evaluate(self, pattern: Pattern, graph: ObjectGraph) -> bool:
        return all(p.evaluate(pattern, graph) for p in self.operands)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and other.operands == self.operands

    def __hash__(self) -> int:
        return hash(("And", self.operands))

    def __str__(self) -> str:
        return "(" + " and ".join(str(p) for p in self.operands) + ")"


class Or(Predicate):
    """Disjunction: at least one operand predicate must hold."""

    def __init__(self, *operands: Predicate) -> None:
        self.operands = operands

    def evaluate(self, pattern: Pattern, graph: ObjectGraph) -> bool:
        return any(p.evaluate(pattern, graph) for p in self.operands)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and other.operands == self.operands

    def __hash__(self) -> int:
        return hash(("Or", self.operands))

    def __str__(self) -> str:
        return "(" + " or ".join(str(p) for p in self.operands) + ")"


class Not(Predicate):
    """Negation of one predicate."""

    def __init__(self, operand: Predicate) -> None:
        self.operand = operand

    def evaluate(self, pattern: Pattern, graph: ObjectGraph) -> bool:
        return not self.operand.evaluate(pattern, graph)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and other.operand == self.operand

    def __hash__(self) -> int:
        return hash(("Not", self.operand))

    def __str__(self) -> str:
        return f"not {self.operand}"


class Callback(Predicate):
    """Escape hatch: an arbitrary pure Python condition."""

    def __init__(
        self, fn: Callable[[Pattern, ObjectGraph], bool], label: str = "<callback>"
    ) -> None:
        self.fn = fn
        self.label = label

    def evaluate(self, pattern: Pattern, graph: ObjectGraph) -> bool:
        return bool(self.fn(pattern, graph))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Callback) and other.fn is self.fn

    def __hash__(self) -> int:
        return hash(("Callback", id(self.fn)))

    def __str__(self) -> str:
        return self.label


class TruePredicate(Predicate):
    """The always-true predicate (identity of conjunction)."""

    def evaluate(self, pattern: Pattern, graph: ObjectGraph) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TruePredicate)

    def __hash__(self) -> int:
        return hash("TruePredicate")

    def __str__(self) -> str:
        return "true"


def value_equals(cls: str, value: Any) -> Comparison:
    """Shorthand for the ubiquitous ``Class = constant`` predicate."""
    return Comparison(ClassValues(cls), "=", Const(value))

