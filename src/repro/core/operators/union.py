"""A-Union (``+``) — §3.3.2(7).

``α + β = { γ | γⁱ ∈ α ∨ γⁱ ∈ β }``.

Unlike relational UNION, the operands need **not** be union-compatible: the
result may be a heterogeneous association-set, which subsequent operators
accept.  This is the paper's headline expressiveness claim — Query 2's OR
branch merges ``Section—Specialty`` patterns with
``GPA—Student—Section—EarnedCredit`` patterns in one expression.
"""

from __future__ import annotations

from repro.core.assoc_set import AssociationSet

__all__ = ["a_union"]


def a_union(alpha: AssociationSet, beta: AssociationSet) -> AssociationSet:
    """Evaluate ``α + β`` (duplicate-free set union)."""
    return AssociationSet(alpha.patterns | beta.patterns)
