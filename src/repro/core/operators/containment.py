"""Containment index: fast "does any subtrahend embed here?" checks.

A-Difference and A-Divide repeatedly test whether candidate patterns
contain divisor/subtrahend patterns.  The naive loop is O(|α|·|β|)
containment checks; since ``p ⊆ q`` requires every vertex of ``p`` to be a
vertex of ``q``, indexing each divisor under one *anchor vertex* (its
minimum — any deterministic choice works) lets a candidate consult only
the divisors whose anchor it actually holds.

For the common workloads (divisors are small patterns over a handful of
instances, candidates hold a few vertices each) this reduces the check to
a few dictionary probes per candidate.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.core.identity import IID
from repro.core.pattern import Pattern

__all__ = ["ContainmentIndex"]


class ContainmentIndex:
    """Index a set of patterns for containment probes against candidates."""

    __slots__ = ("_by_anchor", "_count")

    def __init__(self, patterns: Iterable[Pattern]) -> None:
        by_anchor: dict[IID, list[Pattern]] = defaultdict(list)
        count = 0
        for pattern in patterns:
            by_anchor[min(pattern.vertices)].append(pattern)
            count += 1
        self._by_anchor = dict(by_anchor)
        self._count = count

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def contained_in(self, candidate: Pattern) -> Iterable[Pattern]:
        """Yield every indexed pattern contained in ``candidate``."""
        for vertex in candidate.vertices:
            for pattern in self._by_anchor.get(vertex, ()):
                if candidate.contains(pattern):
                    yield pattern

    def any_contained_in(self, candidate: Pattern) -> bool:
        """Whether some indexed pattern is contained in ``candidate``."""
        for _ in self.contained_in(candidate):
            return True
        return False
