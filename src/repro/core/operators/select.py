"""A-Select (``σ``) — §3.3.2(3).

``σ(α)[P] = { γ | γʲ = αⁱ : P(αⁱ) = true }``

A pattern of the operand is retained iff the predicate evaluates true for
that pattern.  Predicates are built with :mod:`repro.core.predicates`.
"""

from __future__ import annotations

from repro.core.assoc_set import AssociationSet
from repro.core.predicates import Predicate
from repro.objects.graph import ObjectGraph

__all__ = ["a_select"]


def a_select(
    alpha: AssociationSet, predicate: Predicate, graph: ObjectGraph
) -> AssociationSet:
    """Evaluate ``σ(α)[P]`` against ``graph``."""
    return alpha.filter(lambda pattern: predicate.evaluate(pattern, graph))
