"""A-Project (``Π``) — §3.3.2(4).

``Π(α)[E; T]`` keeps, inside each pattern, only the subpatterns matching
the expressions of ``E``, and re-links the kept subpatterns with *derived*
edges according to the paths of ``T``:

* Each ``e ∈ E`` here is a :class:`ChainTemplate` — a linear class sequence
  such as ``A*B`` or the single class ``D``.  A chain matches every
  instance sequence of those classes connected consecutively by *regular*
  edges within the pattern.  (The paper's projected subexpressions are
  algebra expressions over the pattern; linear chains are the only shape
  its examples and queries use, and arbitrary shapes can be assembled from
  chains plus links.)
* Each ``t ∈ T`` is a :class:`PathLink` — an ordered class sequence
  ``C₁:…:Cₖ`` naming "a minimal number of classes along the path which can
  uniquely identify that path".  For every pair of projected instances of
  ``C₁`` and ``Cₖ``, the original pattern is searched for a simple path
  whose class sequence contains the link's classes as a subsequence; the
  pair is then connected by a **D-Inter-pattern** if some such path uses
  only regular edges, else by a **D-Complement-pattern** (Figure 8c).

A pattern that matches none of the ``E`` expressions contributes nothing;
a pattern matching only some of them keeps the matched parts (Figure 8c
keeps the lone ``(d₃)`` of ``α²``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.assoc_set import AssociationSet
from repro.core.edges import Edge, inter
from repro.core.identity import IID
from repro.core.pattern import Pattern
from repro.errors import ProjectionError

__all__ = ["ChainTemplate", "PathLink", "a_project"]


@dataclass(frozen=True)
class ChainTemplate:
    """A linear projection template ``C₁*C₂*…*Cₖ`` (``k ≥ 1``)."""

    classes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ProjectionError("a projection template needs at least one class")

    @classmethod
    def parse(cls, text: str) -> "ChainTemplate":
        """Parse ``"A*B"`` / ``"D"`` into a template."""
        parts = tuple(part.strip() for part in text.split("*"))
        if any(not part for part in parts):
            raise ProjectionError(f"malformed projection template {text!r}")
        return cls(parts)

    def matches(self, pattern: Pattern) -> list[tuple[Pattern, tuple[IID, ...]]]:
        """Every match of the chain inside ``pattern``.

        Returns ``(subpattern, instance-sequence)`` pairs; the subpattern
        holds the matched vertices and the regular edges joining them.
        """
        out: list[tuple[Pattern, tuple[IID, ...]]] = []
        first = sorted(pattern.instances_of(self.classes[0]))
        stack: list[tuple[tuple[IID, ...], list[Edge]]] = [
            ((start,), []) for start in first
        ]
        while stack:
            sequence, edges = stack.pop()
            position = len(sequence)
            if position == len(self.classes):
                out.append((Pattern.from_edges(edges, extra_vertices=sequence), sequence))
                continue
            wanted = self.classes[position]
            here = sequence[-1]
            for edge in pattern.edges_at(here):
                if not edge.is_regular:
                    continue
                nxt = edge.other(here)
                if nxt.cls != wanted or nxt in sequence:
                    continue
                stack.append((sequence + (nxt,), edges + [edge]))
        return out

    def __str__(self) -> str:
        return "*".join(self.classes)


@dataclass(frozen=True)
class PathLink:
    """An ordered class path ``C₁:…:Cₖ`` re-linking projected subpatterns."""

    classes: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.classes) < 2:
            raise ProjectionError("a path link needs at least two classes")

    @classmethod
    def parse(cls, text: str) -> "PathLink":
        parts = tuple(part.strip() for part in text.split(":"))
        if any(not part for part in parts):
            raise ProjectionError(f"malformed path link {text!r}")
        return cls(parts)

    def __str__(self) -> str:
        return ":".join(self.classes)


def _coerce_template(item: "ChainTemplate | str | Sequence[str]") -> ChainTemplate:
    if isinstance(item, ChainTemplate):
        return item
    if isinstance(item, str):
        return ChainTemplate.parse(item)
    return ChainTemplate(tuple(item))


def _coerce_link(item: "PathLink | str | Sequence[str]") -> PathLink:
    if isinstance(item, PathLink):
        return item
    if isinstance(item, str):
        return PathLink.parse(item)
    return PathLink(tuple(item))


def a_project(
    alpha: AssociationSet,
    templates: Iterable["ChainTemplate | str | Sequence[str]"],
    links: Iterable["PathLink | str | Sequence[str]"] = (),
) -> AssociationSet:
    """Evaluate ``Π(α)[E; T]``.

    ``templates`` is ``E`` (chains, parseable from ``"A*B"`` strings);
    ``links`` is ``T`` (paths, parseable from ``"B:D"`` strings).
    """
    chain_list = [_coerce_template(t) for t in templates]
    link_list = [_coerce_link(t) for t in links]
    if not chain_list:
        raise ProjectionError("A-Project requires at least one E expression")

    out: set[Pattern] = set()
    for pattern in alpha:
        projected = _project_one(pattern, chain_list, link_list)
        if projected is not None:
            out.add(projected)
    return AssociationSet(out)


def _project_one(
    pattern: Pattern,
    chains: list[ChainTemplate],
    links: list[PathLink],
) -> Pattern | None:
    vertices: set[IID] = set()
    edges: set[Edge] = set()
    for chain in chains:
        for subpattern, _ in chain.matches(pattern):
            vertices |= subpattern.vertices
            edges |= subpattern.edges
    if not vertices:
        return None

    for link in links:
        sources = sorted(v for v in vertices if v.cls == link.classes[0])
        targets = sorted(v for v in vertices if v.cls == link.classes[-1])
        for src in sources:
            for dst in targets:
                if src == dst:
                    continue
                direct = inter(src, dst)
                if direct in edges:
                    continue  # already linked by a kept regular edge
                polarity = pattern.path_polarity(src, dst, link.classes)
                if polarity is None:
                    continue
                edges.add(Edge(src, dst, polarity, derived=True))
    return Pattern(vertices, edges)
