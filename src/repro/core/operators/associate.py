"""Associate (``*``) — §3.3.2(1).

``α *[R(A,B)] β`` concatenates every pattern of ``α`` holding an A-instance
``a_m`` with every pattern of ``β`` holding a B-instance ``b_n`` such that
the Inter-pattern ``(a_m b_n)`` exists in the domain 𝒜, the connection being
that Inter-pattern::

    α *[R(A,B)] β = { γ | γᵏ = (αⁱ, βʲ, a_m b_n) :
                       (a_m b_n) ∈ [R(A,B)] ∧ a_m ∈ αⁱ ∧ b_n ∈ βʲ }

Patterns of either operand that cannot be concatenated are dropped (the
example of Figure 8a drops ``α²`` for lacking a B-instance, ``α³``/``β³``/
``β⁴`` for lacking a qualifying edge).
"""

from __future__ import annotations

from repro.core.assoc_set import AssociationSet
from repro.core.edges import inter
from repro.core.operators.base import index_by_instance, orient
from repro.objects.graph import ObjectGraph
from repro.core.pattern import Pattern
from repro.schema.graph import Association

__all__ = ["associate"]


def associate(
    alpha: AssociationSet,
    beta: AssociationSet,
    graph: ObjectGraph,
    assoc: Association,
    alpha_class: str | None = None,
    beta_class: str | None = None,
) -> AssociationSet:
    """Evaluate ``α *[R(A,B)] β`` against ``graph``.

    ``alpha_class``/``beta_class`` pin which end of ``assoc`` each operand
    joins through (needed for recursive associations or explicit
    orientation); by default ``α`` joins through ``assoc.left``.
    """
    a_cls, b_cls = orient(assoc, alpha_class, beta_class)
    beta_index = index_by_instance(beta, b_cls)
    if not beta_index:
        return AssociationSet.empty()

    out: set[Pattern] = set()
    for pattern_a, a_instances in alpha.patterns_with_class(a_cls):
        for a_m in a_instances:
            for b_n in graph.partners(assoc, a_m):
                if b_n.cls != b_cls:
                    continue
                for pattern_b in beta_index.get(b_n, ()):
                    out.add(pattern_a.union(pattern_b, inter(a_m, b_n)))
    return AssociationSet(out)
