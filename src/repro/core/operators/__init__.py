"""The nine association operators (§3.3).

Two unary operators — A-Select ``σ`` and A-Project ``Π`` — and seven binary
operators — Associate ``*``, A-Complement ``|``, A-Union ``+``,
A-Difference ``-``, A-Divide ``÷``, NonAssociate ``!`` and A-Intersect
``•``.  Each operator is a pure function from association-sets to an
association-set; the three graph-dependent ones (Associate, A-Complement,
NonAssociate) additionally take the object graph and the association
``[R(A,B)]`` they operate over.

All operators are closed over association-sets and never mutate their
operands, which is the paper's closure property in code.
"""

from repro.core.operators.associate import associate
from repro.core.operators.complement import a_complement
from repro.core.operators.difference import a_difference
from repro.core.operators.divide import a_divide
from repro.core.operators.intersect import a_intersect
from repro.core.operators.nonassociate import non_associate
from repro.core.operators.project import ChainTemplate, PathLink, a_project
from repro.core.operators.select import a_select
from repro.core.operators.union import a_union

__all__ = [
    "associate",
    "a_complement",
    "non_associate",
    "a_intersect",
    "a_union",
    "a_difference",
    "a_divide",
    "a_select",
    "a_project",
    "ChainTemplate",
    "PathLink",
]
