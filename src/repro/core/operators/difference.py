"""A-Difference (``-``) — §3.3.2(8).

``α - β = { γ | γᵏ = αⁱ : ∄ βʲ (βʲ ⊆ αⁱ) }``

A minuend pattern is retained iff it does not *contain* any subtrahend
pattern (containment in the §3.2 subpattern sense), which differs from the
relational DIFFERENCE in two ways the paper calls out: the operands need
not be union-compatible, and the test is containment rather than equality.
Figure 8f drops ``α¹`` and ``α³`` because both contain ``β¹``.
"""

from __future__ import annotations

from repro.core.assoc_set import AssociationSet
from repro.core.operators.containment import ContainmentIndex

__all__ = ["a_difference"]


def a_difference(alpha: AssociationSet, beta: AssociationSet) -> AssociationSet:
    """Evaluate ``α - β``."""
    index = ContainmentIndex(beta)
    if not index:
        return alpha
    return alpha.filter(lambda pattern: not index.any_contained_in(pattern))
