"""A-Divide (``÷``) — §3.3.2(9).

``α ÷{W} β`` implements "a group of patterns with certain common features
contains another set of patterns"::

    α ÷_{W} β = { γ | γᵏ = α_sⁱ : ∀ j (βʲ ⊆ α_s) }

where ``α_s`` ranges over the groups of α-patterns sharing the same
Inner-patterns for every class of ``{W}``.  A group is emitted *whole* iff
every divisor pattern is contained in some member of the group (collective
containment — Figure 8g: α¹, α², α³ all share ``(b₁)`` and *together*
contain all four patterns of β).

When ``{W}`` is not specified, the operation retains all α-patterns that
each contain at least one β-pattern, provided that collectively they
contain every β-pattern; otherwise the result is empty.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.core.assoc_set import AssociationSet
from repro.core.operators.containment import ContainmentIndex
from repro.core.pattern import Pattern

__all__ = ["a_divide"]


def a_divide(
    alpha: AssociationSet,
    beta: AssociationSet,
    classes: Iterable[str] | None = None,
) -> AssociationSet:
    """Evaluate ``α ÷{W} β``."""
    divisors = tuple(beta)
    if classes is None:
        return _divide_ungrouped(alpha, divisors)
    ordered = tuple(sorted(set(classes)))
    index = ContainmentIndex(divisors)

    groups: dict[tuple[frozenset, ...], list[Pattern]] = defaultdict(list)
    for pattern in alpha:
        signature = []
        for cls in ordered:
            instances = pattern.instances_of(cls)
            if not instances:
                signature = None
                break
            signature.append(instances)
        if signature is not None:
            groups[tuple(signature)].append(pattern)

    out: set[Pattern] = set()
    for members in groups.values():
        if _covers(members, divisors, index):
            out.update(members)
    return AssociationSet(out)


def _divide_ungrouped(
    alpha: AssociationSet, divisors: tuple[Pattern, ...]
) -> AssociationSet:
    index = ContainmentIndex(divisors)
    candidates = [
        pattern for pattern in alpha if index.any_contained_in(pattern)
    ]
    if divisors and not _covers(candidates, divisors, index):
        return AssociationSet.empty()
    return AssociationSet(candidates)


def _covers(
    members: list[Pattern],
    divisors: tuple[Pattern, ...],
    index: ContainmentIndex,
) -> bool:
    """Whether every divisor is contained in some member (collectively)."""
    found: set[Pattern] = set()
    for member in members:
        found.update(index.contained_in(member))
        if len(found) == len(divisors):
            return True
    return len(found) == len(divisors)
