"""A-Intersect (``•``) — §3.3.2(6).

``α •{W} β`` merges a pattern of ``α`` with a pattern of ``β`` whenever the
two hold exactly the same instances for every class of ``{W}``::

    α_{X} •{W} β_{Y} = { γ | γᵏ = (αⁱ, βʲ) :
        ∀ CLₙ ∈ {W} ∀ @ ∈ CLₙ,αⁱ (@ ∈ βʲ)  ∧
        ∀ CLₙ ∈ {W} ∀ @ ∈ CLₙ,βʲ (@ ∈ αⁱ) }

Conceptually the JOIN of the relational algebra; it is the natural way to
build branch, lattice and network patterns.  When ``{W}`` is omitted the
intersection is over all common classes of the two operands
(``{W} = {X} ∩ {Y}``).

Pinned reading (DESIGN.md §2.3): both patterns must hold at least one
instance of *every* class of ``{W}`` — Figure 8e rejects patterns that
"have no Inner-pattern in both classes B and C", which rules out the
vacuous interpretation of the two ∀ clauses.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.core.assoc_set import AssociationSet
from repro.core.pattern import Pattern

__all__ = ["a_intersect"]


def _signature(
    pattern: Pattern, classes: tuple[str, ...]
) -> tuple[frozenset, ...] | None:
    """Per-class instance sets over ``classes``; None if any class is absent."""
    out = []
    for cls in classes:
        instances = pattern.instances_of(cls)
        if not instances:
            return None
        out.append(instances)
    return tuple(out)


def a_intersect(
    alpha: AssociationSet,
    beta: AssociationSet,
    classes: Iterable[str] | None = None,
) -> AssociationSet:
    """Evaluate ``α •{W} β``.

    ``classes`` is ``{W}``; ``None`` means the common classes of the two
    operands.  An explicitly empty ``{W}`` (or no common classes) yields the
    empty association-set — intersecting over nothing is meaningless.
    """
    if classes is None:
        shared = alpha.classes() & beta.classes()
    else:
        shared = frozenset(classes)
    if not shared:
        return AssociationSet.empty()
    ordered = tuple(sorted(shared))

    beta_index: dict[tuple[frozenset, ...], list[Pattern]] = defaultdict(list)
    for pattern in beta:
        signature = _signature(pattern, ordered)
        if signature is not None:
            beta_index[signature].append(pattern)

    out: set[Pattern] = set()
    for pattern_a in alpha:
        signature = _signature(pattern_a, ordered)
        if signature is None:
            continue
        for pattern_b in beta_index.get(signature, ()):
            out.add(pattern_a.union(pattern_b))
    return AssociationSet(out)
