"""Shared plumbing for the binary graph operators.

Associate, A-Complement and NonAssociate all operate "over ``[R(A,B)]``":
the left operand connects through its instances of one end class, the right
operand through the other.  :func:`orient` resolves which end is which, and
:func:`index_by_instance` builds the instance → patterns index the inner
loops consume.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

from repro.core.assoc_set import AssociationSet
from repro.core.identity import IID
from repro.core.pattern import Pattern
from repro.errors import EvaluationError
from repro.schema.graph import Association

__all__ = ["orient", "index_by_instance"]


def orient(
    assoc: Association,
    alpha_class: str | None,
    beta_class: str | None,
) -> tuple[str, str]:
    """Resolve the (alpha-end, beta-end) classes of ``assoc``.

    With no hint, the declared orientation is used (``alpha`` joins through
    ``assoc.left``).  A single hint fixes one side; both hints are validated.
    Commutativity — ``α *[R(A,B)] β = β *[R(B,A)] α`` — is obtained by
    swapping the hints along with the operands.
    """
    if alpha_class is None and beta_class is None:
        return assoc.left, assoc.right
    if alpha_class is None and beta_class is not None:
        return assoc.other(beta_class), beta_class
    if beta_class is None and alpha_class is not None:
        return alpha_class, assoc.other(alpha_class)
    assert alpha_class is not None and beta_class is not None
    if not assoc.joins(alpha_class, beta_class):
        raise EvaluationError(
            f"association {assoc} does not join {alpha_class!r} and {beta_class!r}"
        )
    if assoc.left == assoc.right and alpha_class == beta_class:
        return alpha_class, beta_class
    return alpha_class, beta_class


def index_by_instance(
    aset: AssociationSet, cls: str
) -> Mapping[IID, tuple[Pattern, ...]]:
    """Map each instance of ``cls`` to the patterns containing it."""
    index: dict[IID, list[Pattern]] = defaultdict(list)
    for pattern, instances in aset.patterns_with_class(cls):
        for instance in instances:
            index[instance].append(pattern)
    return {iid: tuple(pats) for iid, pats in index.items()}
