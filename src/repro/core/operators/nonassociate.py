"""NonAssociate (``!``) — §3.3.2(5).

``α ![R(A,B)] β`` identifies patterns in one operand that are not associated
(over ``R``) with **any** pattern in the other operand, and vice versa.  It
produces a subset of what A-Complement produces.

Main clause: ``γᵏ = (αⁱ, βʲ, ~a_m b_n)`` where ``(~a_m b_n) ∈ [R(A,B)]`` and
additionally ``a_m`` is associated with *no* B-instance occurring anywhere
in ``β`` and ``b_n`` with *no* A-instance occurring anywhere in ``α`` (the
Figure 8d prose: "γ¹ is in the resultant association-set because (b₂) is not
associated with (c₄) in 𝒜 ... and none other pattern in α is associated
with (c₄)").

Retention clauses: a pattern ``αⁱ`` holding A-instances, none of which is
associated with any B-instance of ``β``, and which joined nothing under the
main clause, is retained verbatim when either

1. ``β`` is empty, or
2. no pattern of ``β`` holds a B-instance, or
3. every B-instance occurring in ``β`` is associated with some A-instance
   of ``α`` **outside** ``αⁱ`` — the ``∃(p, p≠m)`` of the formal
   definition.

Symmetrically for ``βʲ``.  Clause 3's ``p ≠ m`` is what makes Query 4's
``Section ! Room#`` retain exactly the unroomed sections when every room
is assigned: an unroomed section sees every room taken by *some other*
section, while a roomed section fails the clause on its own room.
"""

from __future__ import annotations

from repro.core.assoc_set import AssociationSet
from repro.core.edges import complement
from repro.core.identity import IID
from repro.core.operators.base import orient
from repro.core.pattern import Pattern
from repro.objects.graph import ObjectGraph
from repro.schema.graph import Association

__all__ = ["non_associate"]


def non_associate(
    alpha: AssociationSet,
    beta: AssociationSet,
    graph: ObjectGraph,
    assoc: Association,
    alpha_class: str | None = None,
    beta_class: str | None = None,
) -> AssociationSet:
    """Evaluate ``α ![R(A,B)] β`` against ``graph``."""
    a_cls, b_cls = orient(assoc, alpha_class, beta_class)
    alpha_rows = tuple(alpha.patterns_with_class(a_cls))
    beta_rows = tuple(beta.patterns_with_class(b_cls))

    all_a = frozenset(i for _, insts in alpha_rows for i in insts)
    all_b = frozenset(i for _, insts in beta_rows for i in insts)

    # "Free" instances: associated with no instance of the other operand.
    free_a = frozenset(a for a in all_a if graph.partners(assoc, a).isdisjoint(all_b))
    free_b = frozenset(b for b in all_b if graph.partners(assoc, b).isdisjoint(all_a))

    out: set[Pattern] = set()
    paired_alpha: set[Pattern] = set()
    paired_beta: set[Pattern] = set()

    for pattern_a, a_instances in alpha_rows:
        usable_a = a_instances & free_a
        if not usable_a:
            continue
        for pattern_b, b_instances in beta_rows:
            usable_b = b_instances & free_b
            if not usable_b:
                continue
            for a_m in usable_a:
                for b_n in usable_b:
                    # a_m free w.r.t. all of β implies (a_m, b_n) ∉ R.
                    out.add(pattern_a.union(pattern_b, complement(a_m, b_n)))
            paired_alpha.add(pattern_a)
            paired_beta.add(pattern_b)

    _retain(out, graph, assoc, alpha_rows, paired_alpha, free_a, all_a, all_b)
    _retain(out, graph, assoc, beta_rows, paired_beta, free_b, all_b, all_a)
    return AssociationSet(out)


def _retain(
    out: set[Pattern],
    graph: ObjectGraph,
    assoc: Association,
    rows: tuple[tuple[Pattern, frozenset[IID]], ...],
    paired: set[Pattern],
    free_own: frozenset[IID],
    all_own: frozenset[IID],
    all_other: frozenset[IID],
) -> None:
    """Apply the retention clauses to one operand side (symmetric helper).

    ``rows`` are the operand's patterns holding end-class instances;
    ``all_other`` are the opposite operand's end-class instances.
    """
    for pattern, instances in rows:
        if pattern in paired:
            continue
        if not instances <= free_own:
            # The pattern IS associated with some pattern of the other
            # operand — it is not "non-associated" and is dropped.
            continue
        if not all_other:
            out.add(pattern)  # clauses (1)/(2): nothing to pair against
            continue
        outside = all_own - instances
        if all(
            not graph.partners(assoc, other).isdisjoint(outside)
            for other in all_other
        ):
            out.add(pattern)  # clause (3), with the ∃(p, p≠m) reading
