"""A-Complement (``|``) — §3.3.2(2).

``α |[R(A,B)] β`` concatenates pattern pairs over *Complement-patterns*:
``a_m ∈ αⁱ`` and ``b_n ∈ βʲ`` are joined iff ``(~a_m b_n) ∈ [R(A,B)]`` —
i.e. the instances are **not** associated in the domain although their
classes are.

Special retention cases (from the formal definition)::

    γᵏ = αⁱ  if ∃ a_m ∈ αⁱ  and  (β = φ  ∨  no b_n occurs in β)
    γᵏ = βʲ  if ∃ b_n ∈ βʲ  and  (α = φ  ∨  no a_m occurs in α)

i.e. when one operand cannot participate at all (it is empty or holds no
instance of its end class), the other operand's participating patterns are
retained verbatim.
"""

from __future__ import annotations

from repro.core.assoc_set import AssociationSet
from repro.core.edges import complement
from repro.core.operators.base import orient
from repro.core.pattern import Pattern
from repro.objects.graph import ObjectGraph
from repro.schema.graph import Association

__all__ = ["a_complement"]


def a_complement(
    alpha: AssociationSet,
    beta: AssociationSet,
    graph: ObjectGraph,
    assoc: Association,
    alpha_class: str | None = None,
    beta_class: str | None = None,
) -> AssociationSet:
    """Evaluate ``α |[R(A,B)] β`` against ``graph``."""
    a_cls, b_cls = orient(assoc, alpha_class, beta_class)
    alpha_rows = tuple(alpha.patterns_with_class(a_cls))
    beta_rows = tuple(beta.patterns_with_class(b_cls))

    out: set[Pattern] = set()
    if not beta_rows:
        # β empty or without B-instances: retain α's participating patterns.
        for pattern_a, _ in alpha_rows:
            out.add(pattern_a)
        return AssociationSet(out)
    if not alpha_rows:
        for pattern_b, _ in beta_rows:
            out.add(pattern_b)
        return AssociationSet(out)

    # Index β's participating instances once.  The original formulation
    # materialized ``complement_partners`` (an extent-sized frozenset) per
    # (pattern_a, a_m); probing the usually-small regular partner set per
    # candidate pair does the same complement test without ever building
    # the complement set.
    b_by_inst: dict = {}
    for pattern_b, b_instances in beta_rows:
        for b_n in b_instances:
            # complement edges are defined against the domain: only
            # instances present in the extent can appear in [R(A,B)]
            if graph.has_instance(b_n):
                b_by_inst.setdefault(b_n, []).append(pattern_b)

    recursive = assoc.left == assoc.right
    from_parts = Pattern._from_parts
    for pattern_a, a_instances in alpha_rows:
        va, ea = pattern_a._vertices, pattern_a._edges
        for a_m in a_instances:
            partners = graph.partners(assoc, a_m)
            for b_n, b_patterns in b_by_inst.items():
                if b_n in partners or (recursive and b_n == a_m):
                    continue
                connect = frozenset((complement(a_m, b_n),))
                for pattern_b in b_patterns:
                    out.add(
                        from_parts(
                            va | pattern_b._vertices,
                            ea | pattern_b._edges | connect,
                        )
                    )
    return AssociationSet(out)
