"""Primitive binary association patterns (edges).

Section 3.1 of the paper defines five primitive patterns.  Four of them are
binary and are modelled here as :class:`Edge` values:

* **Inter-pattern** ``(a_i b_j)`` — a regular edge: the two instances are
  associated in the object graph.
* **Complement-pattern** ``(~a_i b_j)`` — a complement edge: the two
  instances are *not* associated although their classes are.
* **D-Inter-pattern** ``(a_i~~b_j)`` — a *derived* regular edge standing for
  a path of regular edges whose interior is irrelevant.
* **D-Complement-pattern** — a derived complement edge standing for a path
  containing at least one complement edge.

The paper states: "A D-Inter-pattern is treated as an Inter-pattern and a
D-Complement-pattern is treated as a Complement-pattern in the algebraic
operations" (§3.1).  We therefore give an edge two independent properties:

* its :class:`Polarity` (``REGULAR`` or ``COMPLEMENT``) — part of the edge's
  *identity* (equality, hashing, containment);
* a ``derived`` flag — provenance only, excluded from identity, kept so that
  renderers can draw the paper's distinct arrow styles.

Patterns are non-directional graphs (``(a_i b_j) = (b_j a_i)``, §3.1), so an
edge canonicalizes its endpoints into a deterministic order at construction.
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.core.identity import IID
from repro.errors import PatternError

__all__ = ["Polarity", "Edge", "inter", "complement", "d_inter", "d_complement"]


class Polarity(enum.Enum):
    """Whether an edge asserts association or non-association."""

    REGULAR = "regular"
    COMPLEMENT = "complement"

    def __invert__(self) -> "Polarity":
        if self is Polarity.REGULAR:
            return Polarity.COMPLEMENT
        return Polarity.REGULAR


class Edge:
    """An undirected, polarized edge between two object instances.

    Identity (equality and hash) is ``(endpoints, polarity)``; the
    ``derived`` provenance flag is deliberately excluded so that a derived
    inter-pattern collapses with the equivalent plain inter-pattern inside an
    association-set, exactly as §3.1 prescribes.
    """

    __slots__ = ("_u", "_v", "_polarity", "_derived", "_hash")

    def __init__(
        self,
        u: IID,
        v: IID,
        polarity: Polarity = Polarity.REGULAR,
        *,
        derived: bool = False,
    ) -> None:
        if u == v:
            raise PatternError(f"self-loop edge on {u}: patterns are simple graphs")
        if v < u:
            u, v = v, u
        self._u = u
        self._v = v
        self._polarity = polarity
        self._derived = derived
        self._hash = hash((u, v, polarity))

    @property
    def u(self) -> IID:
        """First endpoint in canonical order."""
        return self._u

    @property
    def v(self) -> IID:
        """Second endpoint in canonical order."""
        return self._v

    @property
    def polarity(self) -> Polarity:
        return self._polarity

    @property
    def derived(self) -> bool:
        """Provenance flag: was this edge produced by A-Project?"""
        return self._derived

    @property
    def is_regular(self) -> bool:
        return self._polarity is Polarity.REGULAR

    @property
    def is_complement(self) -> bool:
        return self._polarity is Polarity.COMPLEMENT

    @property
    def endpoints(self) -> tuple[IID, IID]:
        return (self._u, self._v)

    @property
    def classes(self) -> frozenset[str]:
        """The (one or two) class names the edge spans."""
        return frozenset((self._u.cls, self._v.cls))

    def other(self, iid: IID) -> IID:
        """The endpoint opposite ``iid``."""
        if iid == self._u:
            return self._v
        if iid == self._v:
            return self._u
        raise PatternError(f"{iid} is not an endpoint of {self}")

    def touches(self, iid: IID) -> bool:
        return iid == self._u or iid == self._v

    def with_polarity(self, polarity: Polarity) -> "Edge":
        """A copy of this edge with the given polarity (same provenance)."""
        return Edge(self._u, self._v, polarity, derived=self._derived)

    def as_derived(self) -> "Edge":
        """A copy flagged as derived (identity unchanged)."""
        return Edge(self._u, self._v, self._polarity, derived=True)

    def __iter__(self) -> Iterator[IID]:
        yield self._u
        yield self._v

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return (
            self._u == other._u
            and self._v == other._v
            and self._polarity is other._polarity
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if self._polarity is Polarity.REGULAR:
            body = f"{self._u.label} {self._v.label}"
        else:
            body = f"~{self._u.label} {self._v.label}"
        return f"({body})"

    def __repr__(self) -> str:
        kind = "d_" if self._derived else ""
        kind += "inter" if self.is_regular else "complement"
        return f"Edge[{kind}]({self._u!r}, {self._v!r})"


def inter(u: IID, v: IID) -> Edge:
    """An Inter-pattern ``(u v)``: the instances are associated."""
    return Edge(u, v, Polarity.REGULAR)


def complement(u: IID, v: IID) -> Edge:
    """A Complement-pattern ``(~u v)``: the instances are not associated."""
    return Edge(u, v, Polarity.COMPLEMENT)


def d_inter(u: IID, v: IID) -> Edge:
    """A D-Inter-pattern: derived regular edge (identity equals ``inter``)."""
    return Edge(u, v, Polarity.REGULAR, derived=True)


def d_complement(u: IID, v: IID) -> Edge:
    """A D-Complement-pattern: derived complement edge."""
    return Edge(u, v, Polarity.COMPLEMENT, derived=True)
