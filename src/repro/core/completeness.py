"""Constructive completeness (§5).

The paper claims: "The A-algebra is complete in the sense that all
possible subdatabases that are derivable from an O-O database can be
expressed in terms of A-algebra expressions" (proof deferred to [SU90]).

This module makes the claim executable: :func:`expression_for` synthesizes,
for any target association-set whose patterns are consistent with the
object graph (regular edges present in 𝒜, complement edges absent from 𝒜,
edges spanning schema-adjacent classes), an algebra expression built only
from class extents, A-Select, Associate, A-Complement and A-Union that
evaluates to exactly that association-set.

Construction per pattern (the inductive step of the completeness proof):

1. pin the root instance with an instance-selecting σ;
2. add every further edge in BFS order — Associate for Inter-patterns,
   A-Complement for Complement-patterns, each annotated with the explicit
   ``[R(A,B)]`` the edge crosses.  Associate/A-Complement happily connect
   back into vertices already present, so cyclic patterns need no special
   machinery;
3. a final exact-match σ removes the variants introduced when a class has
   several instances in the pattern (the operators join through *any*
   instance of the end class).

The association-set is then the A-Union of its pattern expressions; the
empty set is ``σ(C)[false]`` for an arbitrary class.
"""

from __future__ import annotations

from repro.core.assoc_set import AssociationSet
from repro.core.edges import Edge
from repro.core.expression import (
    AssocSpec,
    Associate,
    Complement,
    Expr,
    Select,
    Union,
    ref,
)
from repro.core.identity import IID
from repro.core.pattern import Pattern
from repro.core.predicates import (
    Callback,
    ClassInstances,
    Comparison,
    Const,
    Not,
    TruePredicate,
)
from repro.errors import AlgebraError
from repro.objects.graph import ObjectGraph

__all__ = ["expression_for", "expression_for_pattern", "CompletenessError"]


class CompletenessError(AlgebraError):
    """The target is not a subdatabase derivable from this object graph."""


def _instance_selector(instance: IID) -> Expr:
    """``σ(C)[instances(C) = instance]`` — pins one Inner-pattern."""
    predicate = Comparison(ClassInstances(instance.cls), "=", Const(instance))
    return Select(ref(instance.cls), predicate)


def _exact_match(target: Pattern) -> Callback:
    return Callback(lambda pattern, graph: pattern == target, f"= {target}")


def _check_edge(graph: ObjectGraph, edge: Edge) -> AssocSpec:
    """Validate the edge against 𝒜 and produce its [R(A,B)] annotation."""
    try:
        assoc = graph.schema.resolve(edge.u.cls, edge.v.cls)
    except Exception as exc:
        raise CompletenessError(
            f"edge {edge} does not cross a schema association: {exc}"
        ) from exc
    if edge.is_regular and not graph.are_associated(assoc, edge.u, edge.v):
        raise CompletenessError(f"Inter-pattern {edge} is not present in 𝒜")
    if edge.is_complement and graph.are_associated(assoc, edge.u, edge.v):
        raise CompletenessError(f"Complement-pattern {edge} contradicts 𝒜")
    return AssocSpec(edge.u.cls, edge.v.cls, assoc.name)


def expression_for_pattern(pattern: Pattern, graph: ObjectGraph) -> Expr:
    """An algebra expression evaluating to exactly ``{pattern}``."""
    for vertex in pattern.vertices:
        graph.require_instance(vertex)
    if not pattern.is_connected():
        raise CompletenessError(f"{pattern} is not a connected pattern")

    root = min(pattern.vertices)
    expr = _instance_selector(root)
    visited = {root}
    pending: set[Edge] = set(pattern.edges)

    # Attach edges as their anchor end becomes visited; cycle-closing edges
    # connect two visited vertices and attach like any other (Associate and
    # A-Complement tolerate the right operand's vertex already occurring in
    # the left pattern).
    while pending:
        progressed = False
        for edge in sorted(
            pending, key=lambda e: (e.u, e.v, e.polarity.value)
        ):
            anchored = edge.u in visited or edge.v in visited
            if not anchored:
                continue
            u, v = edge.u, edge.v
            if u not in visited:
                u, v = v, u  # orient: u is the visited anchor
            spec = _check_edge(graph, Edge(u, v, edge.polarity))
            spec = AssocSpec(u.cls, v.cls, spec.name)
            node = Associate if edge.is_regular else Complement
            expr = node(expr, _instance_selector(v), spec)
            visited.add(v)
            pending.discard(edge)
            progressed = True
            break
        if not progressed:
            break
    if pending:  # pragma: no cover - unreachable for connected patterns
        raise CompletenessError(f"could not anchor edges {sorted(map(str, pending))}")

    if len(pattern.vertices) > 1 or pattern.edges:
        expr = Select(expr, _exact_match(pattern))
    return expr


def expression_for(target: AssociationSet, graph: ObjectGraph) -> Expr:
    """An algebra expression evaluating to exactly ``target``.

    Raises :class:`CompletenessError` when ``target`` is not derivable
    from ``graph`` (dangling instances, edges contradicting 𝒜, or edges
    between non-adjacent classes — derived patterns are *results* of
    algebra operations, not stored subdatabase content).
    """
    patterns = sorted(target, key=str)
    if not patterns:
        some_class = next(iter(graph.schema.class_names), None)
        if some_class is None:
            raise CompletenessError("cannot express φ over an empty schema")
        return Select(ref(some_class), Not(TruePredicate()))
    expr = expression_for_pattern(patterns[0], graph)
    for pattern in patterns[1:]:
        expr = Union(expr, expression_for_pattern(pattern, graph))
    return expr
