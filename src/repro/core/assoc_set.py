"""Association-sets: the operands of the nine A-algebra operators (§3.2).

An association-set is "a set of association patterns without duplicates".
:class:`AssociationSet` wraps a frozenset of :class:`~repro.core.pattern.Pattern`
objects and exposes the class-level bookkeeping the operator definitions
need (which classes occur, which instances of a class occur, which patterns
hold an instance of a class).

The empty association-set ``φ`` is a valid value (``AssociationSet.empty()``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Iterator, Mapping

from repro.core.identity import IID
from repro.core.pattern import Pattern

__all__ = ["AssociationSet"]


class AssociationSet:
    """An immutable, duplicate-free set of association patterns."""

    __slots__ = ("_patterns", "_hash", "_by_class")

    def __init__(self, patterns: Iterable[Pattern] = ()) -> None:
        # frozenset() of a frozenset is a no-op in CPython, so feeding an
        # already-frozen pattern set through here costs nothing extra; the
        # hash is computed lazily because intermediate sets built inside
        # operators are often iterated once and never hashed.
        self._patterns = frozenset(patterns)
        self._hash: int | None = None
        self._by_class: Mapping[str, tuple[tuple[Pattern, frozenset[IID]], ...]] | None
        self._by_class = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "AssociationSet":
        """The empty association-set φ."""
        return cls(())

    @classmethod
    def from_frozen(cls, patterns: frozenset[Pattern]) -> "AssociationSet":
        """Bulk-construct fast path: wrap an already-deduplicated frozenset
        of validated patterns without copying or revalidating it.

        Operators and the compact decode path build their result as a set
        of patterns that each went through a trusted constructor; wrapping
        that set is all the work left to do.
        """
        self = object.__new__(cls)
        self._patterns = patterns
        self._hash = None
        self._by_class = None
        return self

    @classmethod
    def of_inners(cls, iids: Iterable[IID]) -> "AssociationSet":
        """An association-set of Inner-patterns, one per instance.

        This is how a bare class name in an algebra expression denotes its
        extent: ``A`` evaluates to ``{(a1), (a2), ...}``.
        """
        return cls.from_frozen(frozenset(Pattern.inner(i) for i in iids))

    @classmethod
    def single(cls, pattern: Pattern) -> "AssociationSet":
        return cls((pattern,))

    # ------------------------------------------------------------------
    # set behaviour
    # ------------------------------------------------------------------

    @property
    def patterns(self) -> frozenset[Pattern]:
        return self._patterns

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._patterns)

    def __len__(self) -> int:
        return len(self._patterns)

    def __bool__(self) -> bool:
        return bool(self._patterns)

    def __contains__(self, pattern: object) -> bool:
        return pattern in self._patterns

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AssociationSet):
            return NotImplemented
        return self._patterns == other._patterns

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash(self._patterns)
        return h

    def __or__(self, other: "AssociationSet") -> "AssociationSet":
        return AssociationSet(self._patterns | other._patterns)

    def filter(self, keep: Callable[[Pattern], bool]) -> "AssociationSet":
        """A new association-set of the patterns satisfying ``keep``."""
        return AssociationSet(p for p in self._patterns if keep(p))

    def map(self, transform: Callable[[Pattern], Pattern]) -> "AssociationSet":
        """A new association-set of transformed patterns (deduplicated)."""
        return AssociationSet(transform(p) for p in self._patterns)

    # ------------------------------------------------------------------
    # class-level bookkeeping
    # ------------------------------------------------------------------

    def classes(self) -> frozenset[str]:
        """Every class with at least one Inner-pattern in some pattern."""
        out: set[str] = set()
        for p in self._patterns:
            out |= p.classes()
        return frozenset(out)

    def has_class(self, cls: str) -> bool:
        """Whether any pattern holds an Inner-pattern of ``cls``."""
        return any(p.has_class(cls) for p in self._patterns)

    def instances_of(self, cls: str) -> frozenset[IID]:
        """Every instance of ``cls`` occurring anywhere in the set."""
        out: set[IID] = set()
        for pattern, insts in self._indexed(cls):
            out |= insts
        return frozenset(out)

    def patterns_with_class(self, cls: str) -> Iterator[tuple[Pattern, frozenset[IID]]]:
        """Yield ``(pattern, instances-of-cls-in-pattern)`` pairs.

        Only patterns with at least one instance of ``cls`` are yielded.
        The index is built once per class and cached — the operator
        implementations iterate it repeatedly.
        """
        return iter(self._indexed(cls))

    def _indexed(self, cls: str) -> tuple[tuple[Pattern, frozenset[IID]], ...]:
        if self._by_class is None:
            index: dict[str, list[tuple[Pattern, frozenset[IID]]]] = defaultdict(list)
            for pattern in self._patterns:
                grouped: dict[str, set[IID]] = defaultdict(set)
                for vertex in pattern.vertices:
                    grouped[vertex.cls].add(vertex)
                for name, insts in grouped.items():
                    index[name].append((pattern, frozenset(insts)))
            self._by_class = {name: tuple(rows) for name, rows in index.items()}
        return self._by_class.get(cls, ())

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        if not self._patterns:
            return "{φ}"
        rows = sorted(str(p) for p in self._patterns)
        return "{" + ", ".join(rows) + "}"

    def __repr__(self) -> str:
        return f"AssociationSet({len(self._patterns)} patterns)"

    def pretty(self) -> str:
        """Multi-line rendering, one pattern per row (figure style)."""
        if not self._patterns:
            return "φ"
        return "\n".join(sorted(str(p) for p in self._patterns))
