"""Homogeneous association-sets (§3.2).

An association-set is *homogeneous* iff:

1. all patterns are formed by Inner-patterns from the same set of object
   classes; and
2. all patterns have the same number of Inner-patterns from each class in
   the set; and
3. all patterns have the same topology and their corresponding primitive
   patterns are of the same type.

Criteria (1) and (2) are the class multiset; criterion (3) is graph
isomorphism preserving class labels and edge polarity (recall that derived
edges are identified with their base type, so "same type" reduces to same
polarity).

Several of the paper's laws hold only for homogeneous operands
(idempotency of A-Intersect; the §4 distributivity conditions), so this
check is load-bearing for the optimizer, not just descriptive.
"""

from __future__ import annotations

from repro.core.assoc_set import AssociationSet
from repro.core.pattern import Pattern

__all__ = ["is_homogeneous", "heterogeneity_report", "representative"]


def is_homogeneous(aset: AssociationSet) -> bool:
    """Whether ``aset`` satisfies the three §3.2 homogeneity criteria.

    The empty set and singleton sets are trivially homogeneous.
    """
    patterns = list(aset)
    if len(patterns) <= 1:
        return True
    representative = patterns[0]
    rep_counts = representative.class_counts()
    for other in patterns[1:]:
        if other.class_counts() != rep_counts:
            return False
        if not representative.isomorphic_to(other):
            return False
    return True


def heterogeneity_report(aset: AssociationSet) -> list[str]:
    """Human-readable reasons why ``aset`` is heterogeneous.

    Returns an empty list when the set is homogeneous.  Used by the
    optimizer's explain output and by error messages.
    """
    patterns = sorted(aset, key=str)
    if len(patterns) <= 1:
        return []
    reasons: list[str] = []
    representative = patterns[0]
    rep_counts = representative.class_counts()
    for other in patterns[1:]:
        counts = other.class_counts()
        if set(counts) != set(rep_counts):
            reasons.append(
                f"{other} draws from classes {sorted(set(counts))} but "
                f"{representative} draws from {sorted(set(rep_counts))}"
            )
        elif counts != rep_counts:
            diff = {
                cls: (counts.get(cls, 0), rep_counts.get(cls, 0))
                for cls in set(counts) | set(rep_counts)
                if counts.get(cls, 0) != rep_counts.get(cls, 0)
            }
            reasons.append(f"{other} differs from {representative} in counts {diff}")
        elif not representative.isomorphic_to(other):
            reasons.append(f"{other} is not topology-isomorphic to {representative}")
    return reasons


def representative(aset: AssociationSet) -> Pattern | None:
    """A deterministic representative pattern (``None`` for the empty set)."""
    if not aset:
        return None
    return min(aset, key=str)
