"""A-algebra expressions: AST, shorthand resolution, and evaluation.

The paper writes queries as algebraic expressions such as::

    Π(TA*Grad*Student*Person*SS#)[SS#]
    Π(Section#*(Section!Room# + Section!Teacher))[Section#]

This module provides the expression tree behind that notation:

* :class:`ClassExtent` — a bare class name denotes the association-set of
  its extent's Inner-patterns;
* one node per operator, with Python operator overloading so expressions
  embed naturally (``ref("TA") * ref("Grad")``, ``a + b``, ``a - b``,
  ``a & b`` for ``•``, ``a ^ b`` for ``!``, ``a / b`` for ``÷``);
* the paper's shorthand rule for omitting ``[R(A,B)]``: a binary graph
  operator connects "the last class in a linear expression α and the first
  class in a linear expression β" when that association is unique — tracked
  via each node's ``head_class``/``tail_class``;
* an evaluator that accepts any :class:`~repro.obs.span.Tracer`: each
  node opens a span carrying its :class:`~repro.obs.span.OperatorKind`,
  output cardinality and wall time, so the span tree mirrors the
  expression tree.  :class:`EvalTrace` is the backward-compatible flat
  view over that tree (the optimizer's cost model is validated against
  these traces).

Nodes are immutable; rewriting (see :mod:`repro.optimizer`) builds new
trees.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.assoc_set import AssociationSet
from repro.core.operators import (
    a_complement,
    a_difference,
    a_divide,
    a_intersect,
    a_project,
    a_select,
    a_union,
    associate,
    non_associate,
)
from repro.core.operators.project import ChainTemplate, PathLink
from repro.core.predicates import Predicate
from repro.errors import EvaluationError
from repro.objects.graph import ObjectGraph
from repro.obs.span import OperatorKind, Span, Tracer
from repro.schema.graph import Association

__all__ = [
    "AssocSpec",
    "EvalTrace",
    "OperatorKind",
    "Expr",
    "ClassExtent",
    "Literal",
    "Associate",
    "Complement",
    "NonAssociate",
    "Intersect",
    "Union",
    "Difference",
    "Divide",
    "Select",
    "Project",
    "ref",
]


@dataclass(frozen=True)
class AssocSpec:
    """An explicit ``[R(A,B)]`` annotation on a binary graph operator.

    ``alpha_class`` is the end the left operand joins through and
    ``beta_class`` the end for the right operand; ``name`` picks one of
    several parallel associations.
    """

    alpha_class: str
    beta_class: str
    name: str | None = None

    def __str__(self) -> str:
        label = self.name if self.name is not None else "R"
        return f"[{label}({self.alpha_class},{self.beta_class})]"


class EvalTrace(Tracer):
    """Flat, backward-compatible view over a span-tree trace.

    Historically this recorded ``(expression-text, output-cardinality,
    seconds)`` tuples; it is now a :class:`~repro.obs.span.Tracer` whose
    :attr:`steps` derives those tuples from the completed spans, in
    completion order.  ``total_patterns`` is the sum of all intermediate
    cardinalities — the unit of "work" the paper's optimization section
    reasons about.  New code wanting the tree should pass a plain
    ``Tracer`` (or this, which *is* one) and read ``roots`` instead.
    """

    @property
    def steps(self) -> list[tuple[str, int, float]]:
        """``(expression-text, output-cardinality, seconds)`` tuples."""
        return [
            (span.name, span.output_cardinality or 0, span.seconds)
            for span in self.completed
        ]

    def record(self, node: "Expr", result: AssociationSet, seconds: float) -> None:
        """Append one pre-timed step (legacy API; prefer begin/finish)."""
        span = Span(
            str(node),
            getattr(node, "kind", OperatorKind.OTHER),
            start=0.0,
            end=seconds,
            output_cardinality=len(result),
        )
        self.roots.append(span)
        self.completed.append(span)

    @property
    def total_patterns(self) -> int:
        """Sum of every intermediate cardinality (the paper's work unit)."""
        return sum(size for _, size, _ in self.steps)

    @property
    def total_seconds(self) -> float:
        """Sum of every step's inclusive wall time."""
        return sum(seconds for _, _, seconds in self.steps)

    def pretty(self) -> str:
        """One aligned line per step, completion order."""
        lines = [
            f"{size:8d} patterns  {seconds * 1e3:8.2f} ms  {text}"
            for text, size, seconds in self.steps
        ]
        return "\n".join(lines)


class Expr(ABC):
    """Base class of every A-algebra expression node."""

    #: Structured operator classification, overridden per subclass.
    kind: OperatorKind = OperatorKind.OTHER

    @abstractmethod
    def _evaluate(self, graph: ObjectGraph, trace: Tracer | None) -> AssociationSet:
        """Operator-specific evaluation (children already handled)."""

    def evaluate(
        self, graph: ObjectGraph, trace: Tracer | None = None
    ) -> AssociationSet:
        """Evaluate the expression against an object graph.

        Closure property in action: the result is an association-set, so
        it can be wrapped in :class:`Literal` and processed further.
        With a :class:`~repro.obs.span.Tracer` (or :class:`EvalTrace`),
        every node opens a child span, so the recorded span tree mirrors
        this expression tree.
        """
        if trace is None:
            return self._evaluate(graph, None)
        span = trace.begin(str(self), self.kind)
        try:
            result = self._evaluate(graph, trace)
        except BaseException as exc:
            trace.finish(span, error=type(exc).__name__)
            raise
        trace.finish(span, output=len(result))
        return result

    # ------------------------------------------------------------------
    # shorthand association resolution (§3.3.2(1))
    # ------------------------------------------------------------------

    @property
    def head_class(self) -> str | None:
        """First class of this expression's linear rendering (if linear)."""
        return None

    @property
    def tail_class(self) -> str | None:
        """Last class of this expression's linear rendering (if linear)."""
        return None

    def children(self) -> tuple["Expr", ...]:
        """Direct subexpressions (for tree walks and rewriting)."""
        return ()

    # ------------------------------------------------------------------
    # embedded-DSL operator overloads
    # ------------------------------------------------------------------

    def __mul__(self, other: "Expr") -> "Associate":
        return Associate(self, _as_expr(other))

    def __or__(self, other: "Expr") -> "Complement":
        return Complement(self, _as_expr(other))

    def __xor__(self, other: "Expr") -> "NonAssociate":
        return NonAssociate(self, _as_expr(other))

    def __and__(self, other: "Expr") -> "Intersect":
        return Intersect(self, _as_expr(other))

    def __add__(self, other: "Expr") -> "Union":
        return Union(self, _as_expr(other))

    def __sub__(self, other: "Expr") -> "Difference":
        return Difference(self, _as_expr(other))

    def __truediv__(self, other: "Expr") -> "Divide":
        return Divide(self, _as_expr(other))

    def non_assoc(self, other: "Expr", spec: AssocSpec | None = None) -> "NonAssociate":
        return NonAssociate(self, _as_expr(other), spec)

    def where(self, predicate: Predicate) -> "Select":
        return Select(self, predicate)

    def project(
        self,
        templates: Iterable["ChainTemplate | str | Sequence[str]"],
        links: Iterable["PathLink | str | Sequence[str]"] = (),
    ) -> "Project":
        return Project(self, tuple(templates), tuple(links))

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        return self.__class__.__name__


def _as_expr(value: "Expr | AssociationSet") -> "Expr":
    if isinstance(value, Expr):
        return value
    if isinstance(value, AssociationSet):
        return Literal(value)
    raise EvaluationError(f"cannot use {value!r} as an algebra expression")


def ref(name: str) -> "ClassExtent":
    """A bare class name in an expression (its extent of Inner-patterns)."""
    return ClassExtent(name)


class ClassExtent(Expr):
    """A class name: evaluates to the Inner-patterns of its extent."""

    kind = OperatorKind.EXTENT

    def __init__(self, name: str) -> None:
        self.name = name

    def _evaluate(self, graph: ObjectGraph, trace: Tracer | None) -> AssociationSet:
        return AssociationSet.of_inners(graph.extent(self.name))

    @property
    def head_class(self) -> str | None:
        return self.name

    @property
    def tail_class(self) -> str | None:
        return self.name

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClassExtent) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("ClassExtent", self.name))


class Literal(Expr):
    """An already-computed association-set embedded in an expression.

    This is the closure property made concrete: any query result can be
    re-entered into a new expression.  ``head``/``tail`` optionally declare
    the end classes for the shorthand association resolution; without them
    a binary graph operator touching this literal needs an explicit
    :class:`AssocSpec`.
    """

    kind = OperatorKind.LITERAL

    def __init__(
        self,
        value: AssociationSet,
        label: str = "<literal>",
        head: str | None = None,
        tail: str | None = None,
    ) -> None:
        self.value = value
        self.label = label
        self._head = head
        self._tail = tail if tail is not None else head

    @property
    def head_class(self) -> str | None:
        return self._head

    @property
    def tail_class(self) -> str | None:
        return self._tail

    def _evaluate(self, graph: ObjectGraph, trace: Tracer | None) -> AssociationSet:
        return self.value

    def __str__(self) -> str:
        return self.label

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Literal", self.value))


class _BinaryGraphOp(Expr):
    """Common machinery of Associate / A-Complement / NonAssociate."""

    symbol = "?"

    def __init__(self, left: Expr, right: Expr, spec: AssocSpec | None = None) -> None:
        self.left = left
        self.right = right
        self.spec = spec

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def resolve(self, graph: ObjectGraph) -> tuple[Association, str, str]:
        """Resolve the association and orientation this node operates over.

        Explicit :class:`AssocSpec` wins; otherwise the paper's shorthand —
        tail class of the left linear expression, head class of the right —
        requires both to be defined and the association to be unique.
        """
        schema = graph.schema
        if self.spec is not None:
            assoc = schema.resolve(
                self.spec.alpha_class, self.spec.beta_class, self.spec.name
            )
            return assoc, self.spec.alpha_class, self.spec.beta_class
        a_cls = self.left.tail_class
        b_cls = self.right.head_class
        if a_cls is None or b_cls is None:
            raise EvaluationError(
                f"{self}: operands are not linear expressions; "
                f"annotate the operator with an explicit [R(A,B)]"
            )
        assoc = schema.resolve(a_cls, b_cls)
        return assoc, a_cls, b_cls

    @property
    def head_class(self) -> str | None:
        return self.left.head_class

    @property
    def tail_class(self) -> str | None:
        return self.right.tail_class

    def __str__(self) -> str:
        spec = str(self.spec) if self.spec is not None else ""
        return f"({self.left} {self.symbol}{spec} {self.right})"

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and other.left == self.left  # type: ignore[attr-defined]
            and other.right == self.right  # type: ignore[attr-defined]
            and other.spec == self.spec  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.left, self.right, self.spec))


class Associate(_BinaryGraphOp):
    """``α * β`` — concatenation over Inter-patterns."""

    symbol = "*"
    kind = OperatorKind.ASSOCIATE

    def _evaluate(self, graph: ObjectGraph, trace: Tracer | None) -> AssociationSet:
        assoc, a_cls, b_cls = self.resolve(graph)
        return associate(
            self.left.evaluate(graph, trace),
            self.right.evaluate(graph, trace),
            graph,
            assoc,
            a_cls,
            b_cls,
        )


class Complement(_BinaryGraphOp):
    """``α | β`` — concatenation over Complement-patterns."""

    symbol = "|"
    kind = OperatorKind.COMPLEMENT

    def _evaluate(self, graph: ObjectGraph, trace: Tracer | None) -> AssociationSet:
        assoc, a_cls, b_cls = self.resolve(graph)
        return a_complement(
            self.left.evaluate(graph, trace),
            self.right.evaluate(graph, trace),
            graph,
            assoc,
            a_cls,
            b_cls,
        )


class NonAssociate(_BinaryGraphOp):
    """``α ! β`` — mutually non-associated pattern pairs."""

    symbol = "!"
    kind = OperatorKind.NON_ASSOCIATE

    def _evaluate(self, graph: ObjectGraph, trace: Tracer | None) -> AssociationSet:
        assoc, a_cls, b_cls = self.resolve(graph)
        return non_associate(
            self.left.evaluate(graph, trace),
            self.right.evaluate(graph, trace),
            graph,
            assoc,
            a_cls,
            b_cls,
        )


class Intersect(Expr):
    """``α •{W} β`` — merge patterns agreeing on the instances of ``{W}``."""

    kind = OperatorKind.INTERSECT

    def __init__(
        self, left: Expr, right: Expr, classes: Iterable[str] | None = None
    ) -> None:
        self.left = left
        self.right = right
        self.classes = frozenset(classes) if classes is not None else None

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def _evaluate(self, graph: ObjectGraph, trace: Tracer | None) -> AssociationSet:
        return a_intersect(
            self.left.evaluate(graph, trace),
            self.right.evaluate(graph, trace),
            self.classes,
        )

    @property
    def head_class(self) -> str | None:
        return self.left.head_class or self.right.head_class

    @property
    def tail_class(self) -> str | None:
        return self.right.tail_class or self.left.tail_class

    def __str__(self) -> str:
        over = "{" + ",".join(sorted(self.classes)) + "}" if self.classes else ""
        return f"({self.left} •{over} {self.right})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Intersect)
            and other.left == self.left
            and other.right == self.right
            and other.classes == self.classes
        )

    def __hash__(self) -> int:
        return hash(("Intersect", self.left, self.right, self.classes))


class Union(Expr):
    """``α + β`` — heterogeneous set union."""

    kind = OperatorKind.UNION

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def _evaluate(self, graph: ObjectGraph, trace: Tracer | None) -> AssociationSet:
        return a_union(
            self.left.evaluate(graph, trace), self.right.evaluate(graph, trace)
        )

    @property
    def head_class(self) -> str | None:
        left, right = self.left.head_class, self.right.head_class
        return left if left == right else None

    @property
    def tail_class(self) -> str | None:
        left, right = self.left.tail_class, self.right.tail_class
        return left if left == right else None

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Union)
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("Union", self.left, self.right))


class Difference(Expr):
    """``α - β`` — drop minuend patterns containing a subtrahend pattern."""

    kind = OperatorKind.DIFFERENCE

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def _evaluate(self, graph: ObjectGraph, trace: Tracer | None) -> AssociationSet:
        return a_difference(
            self.left.evaluate(graph, trace), self.right.evaluate(graph, trace)
        )

    @property
    def head_class(self) -> str | None:
        return self.left.head_class

    @property
    def tail_class(self) -> str | None:
        return self.left.tail_class

    def __str__(self) -> str:
        return f"({self.left} - {self.right})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Difference)
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("Difference", self.left, self.right))


class Divide(Expr):
    """``α ÷{W} β`` — groups of α-patterns jointly containing β."""

    kind = OperatorKind.DIVIDE

    def __init__(
        self, left: Expr, right: Expr, classes: Iterable[str] | None = None
    ) -> None:
        self.left = left
        self.right = right
        self.classes = frozenset(classes) if classes is not None else None

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def _evaluate(self, graph: ObjectGraph, trace: Tracer | None) -> AssociationSet:
        return a_divide(
            self.left.evaluate(graph, trace),
            self.right.evaluate(graph, trace),
            self.classes,
        )

    @property
    def head_class(self) -> str | None:
        return self.left.head_class

    @property
    def tail_class(self) -> str | None:
        return self.left.tail_class

    def __str__(self) -> str:
        over = "{" + ",".join(sorted(self.classes)) + "}" if self.classes else ""
        return f"({self.left} ÷{over} {self.right})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Divide)
            and other.left == self.left
            and other.right == self.right
            and other.classes == self.classes
        )

    def __hash__(self) -> int:
        return hash(("Divide", self.left, self.right, self.classes))


class Select(Expr):
    """``σ(α)[P]``."""

    kind = OperatorKind.SELECT

    def __init__(self, operand: Expr, predicate: Predicate) -> None:
        self.operand = operand
        self.predicate = predicate

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def _evaluate(self, graph: ObjectGraph, trace: Tracer | None) -> AssociationSet:
        return a_select(self.operand.evaluate(graph, trace), self.predicate, graph)

    @property
    def head_class(self) -> str | None:
        return self.operand.head_class

    @property
    def tail_class(self) -> str | None:
        return self.operand.tail_class

    def __str__(self) -> str:
        return f"σ({self.operand})[{self.predicate}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Select)
            and other.operand == self.operand
            and other.predicate == self.predicate
        )

    def __hash__(self) -> int:
        return hash(("Select", self.operand, self.predicate))


class Project(Expr):
    """``Π(α)[E; T]``."""

    kind = OperatorKind.PROJECT

    def __init__(
        self,
        operand: Expr,
        templates: tuple["ChainTemplate | str | Sequence[str]", ...],
        links: tuple["PathLink | str | Sequence[str]", ...] = (),
    ) -> None:
        from repro.core.operators.project import _coerce_link, _coerce_template

        self.operand = operand
        self.templates = tuple(_coerce_template(t) for t in templates)
        self.links = tuple(_coerce_link(t) for t in links)

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def _evaluate(self, graph: ObjectGraph, trace: Tracer | None) -> AssociationSet:
        return a_project(self.operand.evaluate(graph, trace), self.templates, self.links)

    def __str__(self) -> str:
        e_part = ", ".join(str(t) for t in self.templates)
        t_part = "; " + ", ".join(str(t) for t in self.links) if self.links else ""
        return f"Π({self.operand})[{e_part}{t_part}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Project)
            and other.operand == self.operand
            and other.templates == self.templates
            and other.links == self.links
        )

    def __hash__(self) -> int:
        return hash(("Project", self.operand, self.templates, self.links))
