"""Query-by-pattern templates (§2, Figure 3).

The paper's user model: "the user can query the database by specifying
patterns of object associations as the search condition ... A complex
pattern of object associations may contain branches with logical AND and
OR conditions".  Figure 3 draws Query 2 as a class-level tree whose edges
are labelled with the operator to apply (``*``, ``|``) and whose branch
points carry an arc: a single arc = OR ("the two branches should be
A-Unioned"), a double arc = AND (the instance "be associated with both").

:class:`PatternTemplate` is that drawing as a data structure, rooted at a
class, with:

* an optional A-Select predicate per node;
* an edge *mode* (``"*"`` Associate or ``"|"`` A-Complement) and optional
  association name per child;
* a *branch* condition (``"and"`` / ``"or"``) per node with several
  children.

Two independent semantics are provided:

* :meth:`PatternTemplate.compile` — the paper's translation into the
  algebra: chains for edges, ``+`` for OR branches, ``•{branch class}``
  for AND branches (exactly how §3.3.4 builds the Query 2 expression);
* :func:`match` — a direct backtracking subgraph matcher over the object
  graph that never touches the algebra.

The two must agree on every template (property-tested in
``tests/properties/test_template_differential.py``), which makes the
matcher a differential-testing oracle for the whole operator pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.assoc_set import AssociationSet
from repro.core.edges import Edge, Polarity
from repro.core.expression import AssocSpec, Associate, Complement, Expr, Intersect, Select, Union, ref
from repro.core.identity import IID
from repro.core.pattern import Pattern
from repro.core.predicates import Predicate
from repro.errors import AlgebraError
from repro.objects.graph import ObjectGraph
from repro.schema.graph import SchemaGraph

__all__ = ["PatternTemplate", "TemplateError", "match"]


class TemplateError(AlgebraError):
    """The template is malformed for the schema it targets."""


@dataclass
class _ChildEdge:
    mode: str  # "*" or "|"
    child: "PatternTemplate"
    assoc_name: str | None = None


@dataclass
class PatternTemplate:
    """One node of a query-by-pattern tree (and the subtree below it)."""

    cls: str
    predicate: Predicate | None = None
    branch: str = "and"
    children: list[_ChildEdge] = field(default_factory=list)

    # ------------------------------------------------------------------
    # construction DSL
    # ------------------------------------------------------------------

    @classmethod
    def node(
        cls,
        class_name: str,
        predicate: Predicate | None = None,
        branch: str = "and",
    ) -> "PatternTemplate":
        if branch not in ("and", "or"):
            raise TemplateError(f"branch condition must be 'and' or 'or', got {branch!r}")
        return cls(class_name, predicate, branch)

    def link(
        self,
        child: "PatternTemplate | str",
        mode: str = "*",
        assoc_name: str | None = None,
    ) -> "PatternTemplate":
        """Attach a child (returns *self* for chaining)."""
        if mode not in ("*", "|"):
            raise TemplateError(f"edge mode must be '*' or '|', got {mode!r}")
        if isinstance(child, str):
            child = PatternTemplate.node(child)
        self.children.append(_ChildEdge(mode, child, assoc_name))
        return self

    def chain(self, *classes: str, mode: str = "*") -> "PatternTemplate":
        """Attach a linear chain of classes below this node."""
        here = self
        for class_name in classes:
            nxt = PatternTemplate.node(class_name)
            here.link(nxt, mode)
            here = nxt
        return self

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self, schema: SchemaGraph) -> None:
        """Check classes, associations, and class-uniqueness per path."""
        self._validate(schema, seen_on_path=set())

    def _validate(self, schema: SchemaGraph, seen_on_path: set[str]) -> None:
        if not schema.has_class(self.cls):
            raise TemplateError(f"unknown class {self.cls!r} in template")
        if self.cls in seen_on_path:
            raise TemplateError(
                f"class {self.cls!r} repeats along a template path; "
                f"the AND-branch • semantics require unique classes per path"
            )
        for edge in self.children:
            schema.resolve(self.cls, edge.child.cls, edge.assoc_name)
            edge.child._validate(schema, seen_on_path | {self.cls})

    # ------------------------------------------------------------------
    # compilation to the algebra (the §3.3.4 construction)
    # ------------------------------------------------------------------

    def compile(self, schema: SchemaGraph) -> Expr:
        """The template's A-algebra expression (head class = root class)."""
        self.validate(schema)
        return self._compile(schema)

    def _compile(self, schema: SchemaGraph) -> Expr:
        base: Expr = ref(self.cls)
        if self.predicate is not None:
            base = Select(base, self.predicate)
        if not self.children:
            return base
        branch_exprs: list[Expr] = []
        for edge in self.children:
            assoc = schema.resolve(self.cls, edge.child.cls, edge.assoc_name)
            spec = AssocSpec(self.cls, edge.child.cls, assoc.name)
            node = Associate if edge.mode == "*" else Complement
            branch_exprs.append(node(base, edge.child._compile(schema), spec))
        combined = branch_exprs[0]
        for expr in branch_exprs[1:]:
            if self.branch == "or":
                combined = Union(combined, expr)
            else:
                combined = Intersect(combined, expr, frozenset({self.cls}))
        return combined


# ----------------------------------------------------------------------
# direct matching (the oracle)
# ----------------------------------------------------------------------


def match(template: PatternTemplate, graph: ObjectGraph) -> AssociationSet:
    """All embeddings of the template, found WITHOUT the algebra.

    Returns the association-set of embedding patterns; must coincide with
    ``template.compile(schema).evaluate(graph)``.
    """
    template.validate(graph.schema)
    patterns: set[Pattern] = set()
    for anchor in sorted(graph.extent(template.cls)):
        for vertices, edges in _embeddings(template, graph, anchor):
            patterns.add(Pattern(vertices, edges))
    return AssociationSet(patterns)


def _embeddings(
    template: PatternTemplate, graph: ObjectGraph, anchor: IID
) -> Iterator[tuple[frozenset[IID], frozenset[Edge]]]:
    """Yield (vertices, edges) of every embedding rooted at ``anchor``."""
    if template.predicate is not None:
        if not template.predicate.evaluate(Pattern.inner(anchor), graph):
            return
    if not template.children:
        yield (frozenset({anchor}), frozenset())
        return

    per_child: list[list[tuple[frozenset[IID], frozenset[Edge]]]] = []
    for edge in template.children:
        assoc = graph.schema.resolve(
            template.cls, edge.child.cls, edge.assoc_name
        )
        if edge.mode == "*":
            partners = [
                p
                for p in graph.partners(assoc, anchor)
                if p.cls == edge.child.cls
            ]
            polarity = Polarity.REGULAR
        else:
            partners = list(graph.complement_partners(assoc, anchor))
            polarity = Polarity.COMPLEMENT
        found: list[tuple[frozenset[IID], frozenset[Edge]]] = []
        for partner in sorted(partners):
            connecting = Edge(anchor, partner, polarity)
            for vertices, edges in _embeddings(edge.child, graph, partner):
                found.append(
                    (vertices | {anchor}, edges | {connecting})
                )
        if edge.mode == "|" and not found and _subtree_is_empty(edge.child, graph):
            # A-Complement retention: when the child operand evaluates to φ
            # (no embedding anywhere), the compiled | retains the anchor
            # verbatim; mirror that so the oracle agrees.  (The symmetric
            # α-empty retention cannot arise here: the anchor exists.)
            found.append((frozenset({anchor}), frozenset()))
        per_child.append(found)

    if template.branch == "or" and len(template.children) > 1:
        for found in per_child:
            yield from found
        return
    # AND: the cross product of per-child embeddings, all sharing `anchor`.
    yield from _cross(per_child)


def _subtree_is_empty(template: PatternTemplate, graph: ObjectGraph) -> bool:
    """Whether the template subtree has no embedding anywhere in the graph."""
    for anchor in graph.extent(template.cls):
        for _ in _embeddings(template, graph, anchor):
            return False
    return True


def _cross(
    groups: list[list[tuple[frozenset[IID], frozenset[Edge]]]]
) -> Iterator[tuple[frozenset[IID], frozenset[Edge]]]:
    if any(not group for group in groups):
        return
    if len(groups) == 1:
        yield from groups[0]
        return
    for vertices, edges in groups[0]:
        for rest_vertices, rest_edges in _cross(groups[1:]):
            yield (vertices | rest_vertices, edges | rest_edges)
