"""Core of the reproduction: patterns, association-sets, operators, expressions."""

from repro.core.assoc_set import AssociationSet
from repro.core.edges import Edge, Polarity, complement, d_complement, d_inter, inter
from repro.core.expression import (
    AssocSpec,
    Associate,
    ClassExtent,
    Complement,
    Difference,
    Divide,
    EvalTrace,
    Expr,
    Intersect,
    Literal,
    NonAssociate,
    OperatorKind,
    Project,
    Select,
    Union,
    ref,
)
from repro.core.homogeneity import heterogeneity_report, is_homogeneous
from repro.core.identity import IID, OIDAllocator, iid
from repro.core.pattern import Pattern, Relationship
from repro.core.template import PatternTemplate, match

__all__ = [
    "IID",
    "OIDAllocator",
    "iid",
    "Edge",
    "Polarity",
    "inter",
    "complement",
    "d_inter",
    "d_complement",
    "Pattern",
    "Relationship",
    "AssociationSet",
    "is_homogeneous",
    "heterogeneity_report",
    "Expr",
    "ClassExtent",
    "Literal",
    "Associate",
    "Complement",
    "NonAssociate",
    "Intersect",
    "Union",
    "Difference",
    "Divide",
    "Select",
    "Project",
    "AssocSpec",
    "EvalTrace",
    "OperatorKind",
    "ref",
    "PatternTemplate",
    "match",
]
