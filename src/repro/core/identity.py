"""Object and instance identity.

The paper (§2, §3.3.1) distinguishes:

* **OID** — a system-wide unique *object* identifier.  One real-world object
  has exactly one OID.
* **IID** — an *instance* identifier: "a system-assigned object identifier
  (OID) prefixed by its class identification so that the object instances of
  an object in multiple classes can be unambiguously distinguished and the
  fact that these object instances are of the same object can easily be
  recognized" (§3.3.1).

Under the *dynamic inheritance* model assumed by the paper, an object that
participates in several classes of a generalization lattice (e.g. a teaching
assistant is simultaneously a ``TA``, a ``Grad``, a ``Student`` and a
``Person``) has one instance per class, all sharing the OID.

An :class:`IID` is an immutable value object; it is the vertex type of both
object graphs and association patterns.
"""

from __future__ import annotations

import itertools
from typing import Iterator, NamedTuple

__all__ = ["IID", "OIDAllocator", "iid"]


class IID(NamedTuple):
    """Instance identifier: a class name paired with an object identifier.

    ``IID`` is a :class:`~typing.NamedTuple` so that it is hashable, compact,
    and orders deterministically (by class name, then OID) — the canonical
    order used when rendering patterns in the paper's figure notation.
    """

    cls: str
    oid: int

    def same_object(self, other: "IID") -> bool:
        """Whether two instances represent the same underlying object.

        The paper's IID encoding makes this check trivial: two instances are
        representations of one object exactly when their OIDs coincide.
        """
        return self.oid == other.oid

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``a1`` for the instance of class ``A``.

        Multi-character class names render as ``Student#7``.
        """
        if len(self.cls) == 1:
            return f"{self.cls.lower()}{self.oid}"
        return f"{self.cls}#{self.oid}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label

    def __repr__(self) -> str:
        return f"IID({self.cls!r}, {self.oid})"


def iid(cls: str, oid: int) -> IID:
    """Convenience constructor mirroring the paper's ``a_i`` notation."""
    return IID(cls, oid)


class OIDAllocator:
    """Monotonic allocator of system-wide unique object identifiers.

    The allocator is deliberately simple (a counter): the paper only demands
    uniqueness.  It supports reservation of explicit OIDs so that datasets
    can pin the identifiers used in the paper's figures (``a1``, ``b2`` ...)
    while still allocating fresh ones safely afterwards.
    """

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)
        self._reserved: set[int] = set()

    def allocate(self) -> int:
        """Return the next unused OID."""
        for candidate in self._counter:
            if candidate not in self._reserved:
                return candidate
        raise AssertionError("unreachable: itertools.count is infinite")

    def reserve(self, oid: int) -> int:
        """Mark ``oid`` as used (idempotent) and return it."""
        self._reserved.add(oid)
        return oid

    def reserve_many(self, oids: Iterator[int] | list[int]) -> None:
        """Reserve every OID in ``oids``."""
        for oid in oids:
            self.reserve(oid)

    @property
    def reserved(self) -> frozenset[int]:
        """The explicitly reserved OIDs (not including counter allocations)."""
        return frozenset(self._reserved)
