"""Static validation of algebra expressions against a schema.

OQL-compiled expressions are schema-checked during parsing, but
expressions built with the Python DSL are not — a typo'd class name
surfaces only at evaluation time, possibly deep inside a large query.
:func:`validate_expression` walks a tree up front and reports *all*
problems at once:

* unknown classes in :class:`ClassExtent`, projection templates, links,
  intersect/divide class sets, and predicates;
* explicit :class:`AssocSpec` annotations that do not resolve;
* binary graph operators whose shorthand cannot resolve statically
  (non-linear operands without an annotation, missing or ambiguous
  associations).

The result is a list of human-readable problem strings; an empty list
means the expression is statically well-formed (evaluation may of course
still produce φ).
"""

from __future__ import annotations

from repro.core.expression import (
    Associate,
    ClassExtent,
    Complement,
    Difference,
    Divide,
    Expr,
    Intersect,
    Literal,
    NonAssociate,
    Project,
    Select,
    Union,
)
from repro.core.predicates import (
    And,
    Apply,
    ClassInstances,
    ClassValues,
    Comparison,
    Not,
    Or,
    Predicate,
    ValueExpr,
    ValueUnion,
)
from repro.errors import EvaluationError
from repro.schema.graph import SchemaGraph

__all__ = ["validate_expression", "assert_valid"]


def validate_expression(expr: Expr, schema: SchemaGraph) -> list[str]:
    """All statically detectable problems of ``expr`` under ``schema``."""
    problems: list[str] = []
    _walk(expr, schema, problems)
    return problems


def assert_valid(expr: Expr, schema: SchemaGraph) -> None:
    """Raise :class:`EvaluationError` listing every static problem."""
    problems = validate_expression(expr, schema)
    if problems:
        raise EvaluationError(
            f"invalid expression {expr}:\n  - " + "\n  - ".join(problems)
        )


def _check_class(name: str, schema: SchemaGraph, problems: list[str], where: str) -> None:
    if not schema.has_class(name):
        problems.append(f"unknown class {name!r} {where}")


def _walk(expr: Expr, schema: SchemaGraph, problems: list[str]) -> None:
    if isinstance(expr, ClassExtent):
        _check_class(expr.name, schema, problems, "as a class extent")
        return
    if isinstance(expr, Literal):
        return  # literals carry already-materialized data
    if isinstance(expr, (Associate, Complement, NonAssociate)):
        _walk(expr.left, schema, problems)
        _walk(expr.right, schema, problems)
        _check_graph_op(expr, schema, problems)
        return
    if isinstance(expr, (Intersect, Divide)):
        _walk(expr.left, schema, problems)
        _walk(expr.right, schema, problems)
        if expr.classes is not None:
            for name in expr.classes:
                _check_class(
                    name, schema, problems, f"in the {{W}} of {type(expr).__name__}"
                )
        return
    if isinstance(expr, (Union, Difference)):
        _walk(expr.left, schema, problems)
        _walk(expr.right, schema, problems)
        return
    if isinstance(expr, Select):
        _walk(expr.operand, schema, problems)
        _check_predicate(expr.predicate, schema, problems)
        return
    if isinstance(expr, Project):
        _walk(expr.operand, schema, problems)
        for template in expr.templates:
            for name in template.classes:
                _check_class(name, schema, problems, f"in template {template}")
        for link in expr.links:
            for name in link.classes:
                _check_class(name, schema, problems, f"in link {link}")
        return
    problems.append(f"unknown expression node {type(expr).__name__}")


def _check_graph_op(expr, schema: SchemaGraph, problems: list[str]) -> None:
    symbol = expr.symbol
    if expr.spec is not None:
        try:
            schema.resolve(
                expr.spec.alpha_class, expr.spec.beta_class, expr.spec.name
            )
        except Exception as exc:
            problems.append(f"annotation {expr.spec} on {symbol!r}: {exc}")
        return
    a_cls = expr.left.tail_class
    b_cls = expr.right.head_class
    if a_cls is None or b_cls is None:
        problems.append(
            f"{symbol!r} cannot resolve its association statically "
            f"(operands not linear); add an explicit [R(A,B)]"
        )
        return
    if not (schema.has_class(a_cls) and schema.has_class(b_cls)):
        return  # the unknown-class problem is already reported
    try:
        schema.resolve(a_cls, b_cls)
    except Exception as exc:
        problems.append(f"{symbol!r} between {a_cls!r} and {b_cls!r}: {exc}")


def _check_predicate(
    predicate: Predicate, schema: SchemaGraph, problems: list[str]
) -> None:
    if isinstance(predicate, Comparison):
        _check_value(predicate.left, schema, problems)
        _check_value(predicate.right, schema, problems)
    elif isinstance(predicate, (And, Or)):
        for operand in predicate.operands:
            _check_predicate(operand, schema, problems)
    elif isinstance(predicate, Not):
        _check_predicate(predicate.operand, schema, problems)
    # Callbacks and TruePredicate are opaque/trivial: nothing to check.


def _check_value(value: ValueExpr, schema: SchemaGraph, problems: list[str]) -> None:
    if isinstance(value, (ClassValues, ClassInstances)):
        _check_class(value.cls, schema, problems, "in a predicate")
    elif isinstance(value, Apply):
        _check_value(value.operand, schema, problems)
    elif isinstance(value, ValueUnion):
        for operand in value.operands:
            _check_value(operand, schema, problems)
