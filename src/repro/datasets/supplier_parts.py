"""The suppliers-and-parts example of §1.

The paper motivates the NonAssociate operator with: "Suppliers s1 and s2
supply Parts p1 and p2, respectively ... they do not have a language
construct for specifying the semantics that s1 does not supply p2 and s2
does not supply p1."

This dataset realizes exactly that situation (plus names and a couple of
extra instances so the complement structure is non-trivial), and the
examples / tests show the A-Complement and NonAssociate queries the other
languages cannot phrase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.identity import IID
from repro.objects.builder import GraphBuilder
from repro.objects.graph import ObjectGraph
from repro.schema.graph import SchemaGraph

__all__ = ["SupplierPartsDB", "supplier_parts"]


@dataclass
class SupplierPartsDB:
    """The populated suppliers-and-parts database."""

    schema: SchemaGraph
    graph: ObjectGraph
    suppliers: dict[str, IID] = field(default_factory=dict)
    parts: dict[str, IID] = field(default_factory=dict)


def supplier_parts() -> SupplierPartsDB:
    """Build the §1 suppliers/parts database.

    Supply edges: s1—p1, s2—p2, s3—p1, s3—p2.  Part p3 has no supplier.
    """
    schema = SchemaGraph("supplier-parts")
    schema.add_entity_class("Supplier")
    schema.add_entity_class("Part")
    schema.add_domain_class("SName")
    schema.add_domain_class("PName")
    schema.add_association("Supplier", "Part", "supplies")
    schema.add_association("Supplier", "SName")
    schema.add_association("Part", "PName")

    builder = GraphBuilder(schema)
    graph = builder.graph
    db = SupplierPartsDB(schema=schema, graph=graph)

    for key, name in (("s1", "Acme"), ("s2", "Bolt&Co"), ("s3", "Cogs Inc")):
        supplier = graph.add_instance("Supplier")
        builder.attach(supplier, "SName", name)
        db.suppliers[key] = supplier
    for key, name in (("p1", "gear"), ("p2", "axle"), ("p3", "flywheel")):
        part = graph.add_instance("Part")
        builder.attach(part, "PName", name)
        db.parts[key] = part

    supplies = [("s1", "p1"), ("s2", "p2"), ("s3", "p1"), ("s3", "p2")]
    for s_key, p_key in supplies:
        builder.link(db.suppliers[s_key], db.parts[p_key], "supplies")

    graph.validate()
    return db
