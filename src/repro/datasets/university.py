"""The university database of Figures 1 and 2.

The schema mirrors Figure 1: a generalization lattice rooted at ``Person``
(Student / Teacher; Grad / Undergrad under Student; Faculty under Teacher;
TA under *both* Grad and Teacher — the multiple-inheritance diamond Query 1
and Query 3 navigate), plus the aggregation structure around Department,
Course, Section and Enrollment.  Primitive classes (circles in the figure)
carry values: ``SS#``, ``Name``, ``GPA``, ``EarnedCredit``, ``Specialty``,
``Room#``, ``Section#``, ``Course#``.

``Name`` is a *shared* domain class: both ``Person`` and ``Department``
associate with it, exactly as the paper's Query 2 requires
(``σ(Name)[Name="CIS"]*Department``).

The population is chosen so that every paper query has a small,
hand-checkable answer (documented in each query's integration test):

* two TAs (Alice, Bob) — Query 1 returns their SS#s {333, 444};
* Alice majors in CIS and teaches in CIS; Bob majors in EE but teaches in
  CIS — Query 3 returns {"Alice"};
* section 102 has no room and section 201 has no teacher — Query 4 returns
  {102, 201};
* Carol is enrolled in both course 6010 and 6020; nobody else is — Query 5
  returns {"Carol"}.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.identity import IID
from repro.objects.builder import GraphBuilder
from repro.objects.graph import ObjectGraph
from repro.schema.graph import SchemaGraph

__all__ = ["UniversityDB", "university", "university_schema"]


@dataclass
class UniversityDB:
    """The populated university database plus named instance handles."""

    schema: SchemaGraph
    graph: ObjectGraph
    people: dict[str, dict[str, IID]] = field(default_factory=dict)
    departments: dict[str, IID] = field(default_factory=dict)
    courses: dict[int, IID] = field(default_factory=dict)
    sections: dict[int, IID] = field(default_factory=dict)


def university_schema() -> SchemaGraph:
    """Build the Figure 1 schema graph."""
    schema = SchemaGraph("university")

    for name in (
        "Person",
        "Student",
        "Grad",
        "Undergrad",
        "TA",
        "Teacher",
        "Faculty",
        "Department",
        "Course",
        "Section",
        "Enrollment",
    ):
        schema.add_entity_class(name)
    for name in (
        "SS#",
        "Name",
        "GPA",
        "EarnedCredit",
        "Specialty",
        "Room#",
        "Section#",
        "Course#",
    ):
        schema.add_domain_class(name)

    # Generalization lattice (Figure 1).  TA inherits through both Grad
    # and Teacher — the diamond under Person.
    schema.add_generalization("Student", "Person")
    schema.add_generalization("Teacher", "Person")
    schema.add_generalization("Grad", "Student")
    schema.add_generalization("Undergrad", "Student")
    schema.add_generalization("TA", "Grad")
    schema.add_generalization("TA", "Teacher")
    schema.add_generalization("Faculty", "Teacher")

    # Aggregations.
    schema.add_association("Person", "SS#")
    schema.add_association("Person", "Name")
    schema.add_association("Department", "Name")
    schema.add_association("Student", "GPA")
    schema.add_association("Student", "EarnedCredit")
    schema.add_association("Student", "Department")  # major
    schema.add_association("Student", "Section")  # takes
    schema.add_association("Student", "Enrollment")
    schema.add_association("Enrollment", "Course")
    schema.add_association("Teacher", "Section")  # teaches
    schema.add_association("Teacher", "Department")  # teaches in
    schema.add_association("Faculty", "Specialty")
    schema.add_association("Department", "Course")  # offers
    schema.add_association("Course", "Section")
    schema.add_association("Course", "Course#")
    schema.add_association("Section", "Section#")
    schema.add_association("Section", "Room#")
    schema.validate()
    return schema


def university() -> UniversityDB:
    """Build and populate the university database."""
    schema = university_schema()
    builder = GraphBuilder(schema)
    graph = builder.graph
    db = UniversityDB(schema=schema, graph=graph)

    # ------------------------------------------------------------------
    # departments and courses
    # ------------------------------------------------------------------
    for dept_name in ("CIS", "EE"):
        dept = graph.add_instance("Department")
        builder.attach(dept, "Name", dept_name)
        db.departments[dept_name] = dept

    course_plan = {6010: "CIS", 6020: "CIS", 4010: "CIS", 5000: "EE"}
    for number, dept_name in course_plan.items():
        course = graph.add_instance("Course")
        builder.attach(course, "Course#", number)
        builder.link(db.departments[dept_name], course)
        db.courses[number] = course

    # ------------------------------------------------------------------
    # sections: (section#, course#, room# or None)
    # ------------------------------------------------------------------
    section_plan = [
        (101, 6010, "R1"),
        (102, 6010, None),  # no room — Query 4
        (201, 6020, "R2"),
        (301, 4010, "R3"),
        (401, 5000, "R4"),
    ]
    for number, course_number, room in section_plan:
        section = graph.add_instance("Section")
        builder.attach(section, "Section#", number)
        if room is not None:
            builder.attach(section, "Room#", room)
        builder.link(db.courses[course_number], section)
        db.sections[number] = section

    # ------------------------------------------------------------------
    # people
    # ------------------------------------------------------------------
    def person(
        nickname: str,
        classes: list[str],
        name: str,
        ssn: int,
    ) -> dict[str, IID]:
        created = builder.add_object(classes)
        builder.attach(created["Person"], "Name", name)
        builder.attach(created["Person"], "SS#", ssn)
        db.people[nickname] = created
        return created

    faculty_classes = ["Faculty", "Teacher", "Person"]
    ta_classes = ["TA", "Grad", "Student", "Teacher", "Person"]

    newton = person("newton", faculty_classes, "Newton", 111)
    builder.attach(newton["Faculty"], "Specialty", "Databases")
    builder.link(newton["Teacher"], db.departments["CIS"])

    gauss = person("gauss", faculty_classes, "Gauss", 222)
    builder.attach(gauss["Faculty"], "Specialty", "AI")
    builder.link(gauss["Teacher"], db.departments["EE"])

    alice = person("alice", ta_classes, "Alice", 333)
    builder.attach(alice["Student"], "GPA", 3.9)
    builder.attach(alice["Student"], "EarnedCredit", 30)
    builder.link(alice["Student"], db.departments["CIS"])  # major
    builder.link(alice["Teacher"], db.departments["CIS"])  # teaches in

    bob = person("bob", ta_classes, "Bob", 444)
    builder.attach(bob["Student"], "GPA", 3.4)
    builder.attach(bob["Student"], "EarnedCredit", 24)
    builder.link(bob["Student"], db.departments["EE"])  # major: EE ...
    builder.link(bob["Teacher"], db.departments["CIS"])  # ... teaches in CIS

    carol = person("carol", ["Undergrad", "Student", "Person"], "Carol", 555)
    builder.attach(carol["Student"], "GPA", 3.5)
    builder.attach(carol["Student"], "EarnedCredit", 60)
    builder.link(carol["Student"], db.departments["CIS"])

    dave = person("dave", ["Grad", "Student", "Person"], "Dave", 666)
    builder.attach(dave["Student"], "GPA", 3.2)
    builder.attach(dave["Student"], "EarnedCredit", 90)
    builder.link(dave["Student"], db.departments["EE"])

    eve = person("eve", ["Undergrad", "Student", "Person"], "Eve", 777)
    builder.attach(eve["Student"], "GPA", 3.8)
    builder.attach(eve["Student"], "EarnedCredit", 45)
    builder.link(eve["Student"], db.departments["CIS"])

    frank = person("frank", ["Student", "Person"], "Frank", 888)
    builder.attach(frank["Student"], "GPA", 2.9)
    builder.attach(frank["Student"], "EarnedCredit", 20)
    builder.link(frank["Student"], db.departments["EE"])

    # ------------------------------------------------------------------
    # teaching assignments (section 201 has no teacher — Query 4)
    # ------------------------------------------------------------------
    builder.link(newton["Teacher"], db.sections[101])
    builder.link(alice["Teacher"], db.sections[102])
    builder.link(gauss["Teacher"], db.sections[301])
    builder.link(gauss["Teacher"], db.sections[401])

    # ------------------------------------------------------------------
    # section attendance ("takes")
    # ------------------------------------------------------------------
    takes = [
        (carol, 101),
        (dave, 101),
        (eve, 102),
        (carol, 201),
        (frank, 401),
    ]
    for student, section_number in takes:
        builder.link(student["Student"], db.sections[section_number])

    # ------------------------------------------------------------------
    # enrollments (student—Enrollment—course), for Query 5's divide
    # ------------------------------------------------------------------
    enrollments = [
        (carol, 6010),
        (carol, 6020),
        (dave, 6010),
        (eve, 6010),
        (frank, 5000),
    ]
    for student, course_number in enrollments:
        enrollment = graph.add_instance("Enrollment")
        builder.link(student["Student"], enrollment)
        builder.link(enrollment, db.courses[course_number])

    graph.validate()
    return db
