"""Datasets reproducing the paper's figures and running examples."""

from repro.datasets.figure7 import Figure7, figure7
from repro.datasets.parts_explosion import PartsDB, parts_explosion
from repro.datasets.supplier_parts import SupplierPartsDB, supplier_parts
from repro.datasets.university import UniversityDB, university

__all__ = [
    "Figure7",
    "figure7",
    "UniversityDB",
    "university",
    "SupplierPartsDB",
    "supplier_parts",
    "PartsDB",
    "parts_explosion",
]
