"""The sample database Association Graph of Figure 7.

The ICDE scan of Figure 7 is partly illegible, so the domain is
*reconstructed* from the constraints stated in the prose of the operator
examples (Figures 8a–8g).  Every constraint used is listed below; the
resulting graph satisfies all of them simultaneously:

Associate, Figure 8a (over ``R(B,C)``):
    * ``(b₁c₁)`` and ``(b₁c₂)`` exist — α¹ concatenates with β¹ and β².
    * ``b₂`` "is not associated with any Inner-pattern of class C".
    * ``c₄``'s only B-partner is ``b₃`` (β⁴ fails since no α pattern holds
      an instance associated with ``c₄``); ``c₃`` has no B-partner.

A-Complement, Figure 8b: complement partners follow from the above
(``b₁``: {c₃, c₄}; ``b₃``: {c₁, c₂, c₃}).

NonAssociate, Figure 8d: ``(b₂)`` is not associated with ``(c₄)`` nor
``(c₃)``, and no other α instance is associated with them.

Associativity counterexample, §3.3.2(1): with ``α = (a₁b₁, b₁c₂)``,
``β = (b₁c₁)``, ``γ = (d₁)``,

    ``(α *[R(A,B)] β) *[R(C,D)] γ = (a₁b₁, b₁c₁, b₁c₂, c₂d₁)``
    ``α *[R(A,B)] (β *[R(C,D)] γ) = φ``

which forces ``(c₂d₁) ∈ R(C,D)`` and ``(c₁d₁) ∉ R(C,D)`` — and that the
single printed result pattern is the *only* one also forces no other
C-partner of ``d₁``.

The remaining ``R(A,B)`` / ``R(C,D)`` edges make the other operand
patterns drawn in the figures genuine subgraphs of the object graph:
``(a₁b₁)``, ``(a₃b₂)``, ``(a₄b₃)``; ``(c₂d₁)``, ``(c₂d₂)``, ``(c₄d₃)``,
``(c₄d₄)``.  (``(c₁d₁)`` appears only as an *operand* pattern in Figure
8a — operands are arbitrary association-sets, not necessarily OG
subgraphs.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.identity import IID
from repro.objects.graph import ObjectGraph
from repro.schema.graph import Association, SchemaGraph

__all__ = ["Figure7", "figure7"]


@dataclass(frozen=True)
class Figure7:
    """The Figure 7 domain: schema, object graph, and named handles."""

    schema: SchemaGraph
    graph: ObjectGraph
    ab: Association
    bc: Association
    cd: Association
    a1: IID
    a2: IID
    a3: IID
    a4: IID
    b1: IID
    b2: IID
    b3: IID
    c1: IID
    c2: IID
    c3: IID
    c4: IID
    d1: IID
    d2: IID
    d3: IID
    d4: IID


def figure7() -> Figure7:
    """Build the reconstructed Figure 7 sample domain."""
    schema = SchemaGraph("figure7")
    for name in "ABCD":
        schema.add_entity_class(name)
    ab = schema.add_association("A", "B", "AB")
    bc = schema.add_association("B", "C", "BC")
    cd = schema.add_association("C", "D", "CD")

    graph = ObjectGraph(schema)
    instances: dict[str, IID] = {}
    # Per-class OIDs so that instance labels read exactly like the paper
    # (a1, b1, c1, ...).  The OID reuse across classes is harmless here:
    # the Figure 7 schema has no generalization edges, so no two classes
    # ever share an object and ``same_object`` is never consulted.
    for cls, count in (("A", 4), ("B", 3), ("C", 4), ("D", 4)):
        for index in range(1, count + 1):
            instances[f"{cls.lower()}{index}"] = graph.add_instance(cls, index)

    def link(assoc: Association, left: str, right: str) -> None:
        graph.add_edge(assoc, instances[left], instances[right])

    link(ab, "a1", "b1")
    link(ab, "a3", "b2")
    link(ab, "a4", "b3")

    link(bc, "b1", "c1")
    link(bc, "b1", "c2")
    link(bc, "b3", "c4")

    link(cd, "c2", "d1")
    link(cd, "c2", "d2")
    link(cd, "c4", "d3")
    link(cd, "c4", "d4")

    return Figure7(schema=schema, graph=graph, ab=ab, bc=bc, cd=cd, **instances)
