"""Bill-of-materials dataset: parallel associations and deep navigation.

The paper's schema definition allows several edges between two classes —
``A_ij(k)``, "where k is a number for distinguishing the edges from one
another when there is more than one edge between two vertices" — and the
``[R(A,B)]`` annotation exists precisely to disambiguate them.  None of
the university examples exercise that machinery, so this dataset does: a
classic part-explosion schema where each ``Usage`` (one line of a bill of
materials) connects to ``Part`` twice, once as *parent* and once as
*child*::

    PartName ─ Part ═══ Usage ─ Quantity        (═══ : two associations,
                                                  "parent" and "child")

Population (a small gearbox):

    gearbox  ─(1)→ housing
    gearbox  ─(2)→ shaft
    gearbox  ─(1)→ gear_train
    gear_train ─(3)→ gear
    gear     ─(1)→ shaft          (shared component!)
    spare_bolt                     (a part used nowhere)

Queries over it need explicit ``[parent(Part,Usage)]`` /
``[child(Usage,Part)]`` annotations — the shorthand is ambiguous by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.identity import IID
from repro.objects.builder import GraphBuilder
from repro.objects.graph import ObjectGraph
from repro.schema.graph import SchemaGraph

__all__ = ["PartsDB", "parts_explosion"]


@dataclass
class PartsDB:
    """The populated bill-of-materials database."""

    schema: SchemaGraph
    graph: ObjectGraph
    parts: dict[str, IID] = field(default_factory=dict)
    usages: list[IID] = field(default_factory=list)


def parts_explosion() -> PartsDB:
    """Build the gearbox bill-of-materials database."""
    schema = SchemaGraph("parts-explosion")
    schema.add_entity_class("Part")
    schema.add_entity_class("Usage")
    schema.add_domain_class("PartName")
    schema.add_domain_class("Quantity")
    # Two parallel associations between Part and Usage — A_ij(1), A_ij(2).
    schema.add_association("Part", "Usage", "parent")
    schema.add_association("Part", "Usage", "child")
    schema.add_association("Part", "PartName")
    schema.add_association("Usage", "Quantity")
    schema.validate()

    builder = GraphBuilder(schema)
    graph = builder.graph
    db = PartsDB(schema=schema, graph=graph)

    for name in ("gearbox", "housing", "shaft", "gear_train", "gear", "spare_bolt"):
        part = graph.add_instance("Part")
        builder.attach(part, "PartName", name)
        db.parts[name] = part

    bom = [
        ("gearbox", "housing", 1),
        ("gearbox", "shaft", 2),
        ("gearbox", "gear_train", 1),
        ("gear_train", "gear", 3),
        ("gear", "shaft", 1),
    ]
    parent = schema.resolve("Part", "Usage", "parent")
    child = schema.resolve("Part", "Usage", "child")
    for parent_name, child_name, quantity in bom:
        usage = graph.add_instance("Usage")
        graph.add_edge(parent, db.parts[parent_name], usage)
        graph.add_edge(child, db.parts[child_name], usage)
        builder.attach(usage, "Quantity", quantity)
        db.usages.append(usage)

    graph.validate()
    return db
