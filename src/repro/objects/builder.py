"""Convenience builder for populating object graphs.

The figure datasets and the examples need two recurring idioms:

* create an *object* that participates in several classes of a
  generalization lattice, with all its per-class instances sharing one OID
  and linked by regular edges along the is-a associations (dynamic
  inheritance, §2);
* attach primitive-class values (a name, a GPA) to a nonprimitive instance
  through an aggregation association in one call.

:class:`GraphBuilder` wraps an :class:`~repro.objects.graph.ObjectGraph`
with those idioms while keeping the underlying graph fully accessible.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.identity import IID
from repro.errors import ObjectGraphError
from repro.objects.graph import ObjectGraph
from repro.schema.graph import SchemaGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Fluent population helper over an object graph."""

    def __init__(self, schema: SchemaGraph, graph: ObjectGraph | None = None) -> None:
        self.schema = schema
        self.graph = graph if graph is not None else ObjectGraph(schema)

    def add_object(
        self,
        classes: Iterable[str] | str,
        oid: int | None = None,
        value: Any = None,
    ) -> dict[str, IID]:
        """Create one object with an instance in every class of ``classes``.

        Adjacent classes in the generalization lattice get their is-a edge
        added automatically, so ``add_object(["TA", "Grad", "Student",
        "Person"])`` yields the instance chain Query 1 navigates.

        Returns a mapping from class name to the created instance.
        """
        if isinstance(classes, str):
            classes = [classes]
        class_list = list(classes)
        if not class_list:
            raise ObjectGraphError("an object must participate in at least one class")
        if oid is None:
            oid = self.graph.new_oid()
        created: dict[str, IID] = {}
        for cls in class_list:
            created[cls] = self.graph.add_instance(cls, oid, value)
        # Wire generalization edges between the instances of this object.
        for cls, instance in created.items():
            for sup in self.schema.direct_superclasses(cls):
                if sup in created:
                    assoc = self.schema.resolve(cls, sup, f"isa_{cls}_{sup}")
                    self.graph.add_edge(assoc, instance, created[sup])
        return created

    def add_value(self, cls: str, value: Any, oid: int | None = None) -> IID:
        """Create a primitive-class instance carrying ``value``."""
        return self.graph.add_instance(cls, oid, value)

    def attach(
        self,
        owner: IID,
        cls: str,
        value: Any,
        assoc_name: str | None = None,
    ) -> IID:
        """Create a primitive instance and associate it with ``owner``.

        Reuses an existing instance of ``cls`` holding an equal value when
        one exists, so shared domain values (two students with GPA 3.8) map
        to one primitive object — matching the paper's object graphs where
        e.g. GPA values are objects in their own right.
        """
        matches = self.graph.find_by_value(cls, value)
        existing = min(matches) if matches else None
        target = existing if existing is not None else self.add_value(cls, value)
        assoc = self.schema.resolve(owner.cls, cls, assoc_name)
        self.graph.add_edge(assoc, owner, target)
        return target

    def link(self, a: IID, b: IID, assoc_name: str | None = None) -> None:
        """Associate two existing instances over the (named) association."""
        assoc = self.schema.resolve(a.cls, b.cls, assoc_name)
        self.graph.add_edge(assoc, a, b)

    def link_many(
        self, pairs: Iterable[tuple[IID, IID]], assoc_name: str | None = None
    ) -> None:
        for a, b in pairs:
            self.link(a, b, assoc_name)
