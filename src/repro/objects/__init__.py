"""Object Graph — the extensional view of an O-O database (§3.1)."""

from repro.objects.builder import GraphBuilder
from repro.objects.graph import ObjectGraph

__all__ = ["ObjectGraph", "GraphBuilder"]
