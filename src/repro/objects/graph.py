"""Object Graph — the extensional database and the domain 𝒜 (§3.1).

The object graph stores, per class, the *extent* (set of instance IIDs) and,
per association, the regular edges that hold between instances.  Complement
edges are **not stored** — the paper is explicit that "In an O-O database,
it is not necessary to explicitly store the complement-edges"; they are the
set-theoretic complement of the regular edges over the two extents and are
*derived* on demand by the views below.

Primitive-class instances additionally carry a self-describing value
(an age, a name, a GPA ...), which is what A-Select predicates compare.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterator, Mapping

from repro.core.identity import IID, OIDAllocator
from repro.errors import (
    InvalidEdgeError,
    ObjectGraphError,
    UnknownInstanceError,
)
from repro.schema.graph import Association, SchemaGraph

__all__ = ["ObjectGraph"]


class ObjectGraph:
    """A mutable extensional database over a :class:`SchemaGraph`."""

    def __init__(self, schema: SchemaGraph) -> None:
        self.schema = schema
        self._extents: dict[str, set[IID]] = defaultdict(set)
        self._values: dict[IID, Any] = {}
        # adjacency[assoc.key][iid] -> set of partner IIDs (symmetric)
        self._adjacency: dict[tuple[str, str, str], dict[IID, set[IID]]] = {}
        # value index: cls -> hashable value -> instances carrying it
        self._value_index: dict[str, dict[Any, set[IID]]] = defaultdict(dict)
        # edge count per association key, maintained on add/remove (O(1) reads
        # for the cost model, which asks constantly while ranking plans)
        self._edge_counts: dict[tuple[str, str, str], int] = {}
        #: Monotonic mutation counter.  Every state change bumps it, so the
        #: physical execution layer (:mod:`repro.exec`) can detect mutations
        #: that bypassed the :class:`~repro.engine.database.Database` event
        #: stream and drop its derived indexes/caches wholesale.
        self.version = 0
        self._oids = OIDAllocator()
        # observability: None until attach_metrics wires a registry in
        self.metrics = None

    def attach_metrics(self, registry: Any) -> None:
        """Wire instance/edge/scan accounting into a metrics registry.

        Idempotent; the :class:`~repro.engine.database.Database` facade
        calls this with its own registry.  The live-object gauges are
        (re)seeded from the current graph contents, so attaching after a
        bulk load or a :meth:`Database.restore` stays accurate.
        """
        self.metrics = registry
        self._m_instances_created = registry.counter(
            "repro_instances_created_total",
            "Instances added to the object graph, by class",
        )
        self._m_edges_created = registry.counter(
            "repro_edges_created_total",
            "Regular edges added to the object graph, by association",
        )
        self._m_extent_scans = registry.counter(
            "repro_extent_scans_total", "Class extent reads, by class"
        )
        self._m_instances = registry.gauge(
            "repro_instances", "Live instances in the object graph"
        )
        self._m_edges = registry.gauge(
            "repro_edges", "Live regular edges in the object graph"
        )
        self._m_instances.set(sum(len(ext) for ext in self._extents.values()))
        self._m_edges.set(
            sum(
                self.edge_count(self.schema.association(key))
                for key in self._adjacency
            )
        )

    # ------------------------------------------------------------------
    # instances
    # ------------------------------------------------------------------

    def new_oid(self) -> int:
        """Allocate a fresh system-wide object identifier."""
        return self._oids.allocate()

    def add_instance(self, cls: str, oid: int | None = None, value: Any = None) -> IID:
        """Create an instance of ``cls``.

        ``oid`` may be pinned (figure datasets do this) or left ``None`` to
        allocate a fresh one.  ``value`` is the self-describing value for
        primitive-class instances; it is also accepted for nonprimitive
        classes as an informal payload (e.g. a display name) but plays no
        algebraic role there.
        """
        self.schema.class_def(cls)  # raises UnknownClassError
        if oid is None:
            oid = self._oids.allocate()
        else:
            self._oids.reserve(oid)
        instance = IID(cls, oid)
        if instance in self._extents[cls]:
            raise ObjectGraphError(f"instance {instance} already exists")
        self._extents[cls].add(instance)
        self.version += 1
        if value is not None:
            self._values[instance] = value
            self._index_value(instance, value)
        if self.metrics is not None:
            self._m_instances_created.inc(cls=cls)
            self._m_instances.inc()
        return instance

    def _index_value(self, instance: IID, value: Any) -> None:
        try:
            bucket = self._value_index[instance.cls].setdefault(value, set())
        except TypeError:
            return  # unhashable values are legal, just not indexable
        bucket.add(instance)

    def _unindex_value(self, instance: IID, value: Any) -> None:
        try:
            bucket = self._value_index.get(instance.cls, {}).get(value)
        except TypeError:
            return
        if bucket is not None:
            bucket.discard(instance)

    def has_instance(self, instance: IID) -> bool:
        """Whether ``instance`` exists in its class extent."""
        return instance in self._extents.get(instance.cls, ())

    def require_instance(self, instance: IID) -> None:
        """Raise :class:`UnknownInstanceError` unless ``instance`` exists."""
        if not self.has_instance(instance):
            raise UnknownInstanceError(f"unknown instance {instance}")

    def remove_instance(self, instance: IID) -> None:
        """Delete an instance and every edge incident to it."""
        self.require_instance(instance)
        edges_removed = 0
        for key, adjacency in self._adjacency.items():
            partners = adjacency.pop(instance, None)
            if partners:
                edges_removed += len(partners)
                self._edge_counts[key] = self._edge_counts.get(key, 0) - len(partners)
                for partner in partners:
                    adjacency[partner].discard(instance)
        self._extents[instance.cls].discard(instance)
        old = self._values.pop(instance, None)
        if old is not None:
            self._unindex_value(instance, old)
        self.version += 1
        if self.metrics is not None:
            self._m_instances.dec()
            self._m_edges.dec(edges_removed)

    def extent(self, cls: str) -> frozenset[IID]:
        """The set of instances of ``cls`` (empty for a valid unused class)."""
        self.schema.class_def(cls)
        if self.metrics is not None:
            self._m_extent_scans.inc(cls=cls)
        return frozenset(self._extents.get(cls, ()))

    def extent_size(self, cls: str) -> int:
        """``len(extent(cls))`` without copying the extent.

        A statistics read, not a scan: it does not bump the extent-scan
        counter, so cost estimation does not pollute execution metrics.
        """
        self.schema.class_def(cls)
        return len(self._extents.get(cls, ()))

    def value(self, instance: IID) -> Any:
        """The self-describing value of a (typically primitive) instance."""
        self.require_instance(instance)
        return self._values.get(instance)

    def set_value(self, instance: IID, value: Any) -> None:
        """Replace the self-describing value carried by ``instance``."""
        self.require_instance(instance)
        old = self._values.get(instance)
        if old is not None:
            self._unindex_value(instance, old)
        self._values[instance] = value
        if value is not None:
            self._index_value(instance, value)
        self.version += 1

    def find_by_value(self, cls: str, value: Any) -> frozenset[IID]:
        """Instances of ``cls`` carrying exactly ``value`` (indexed lookup).

        O(1) for hashable values; falls back to an extent scan for
        unhashable ones.
        """
        self.schema.class_def(cls)
        try:
            return frozenset(self._value_index.get(cls, {}).get(value, ()))
        except TypeError:
            return frozenset(
                i for i in self.extent(cls) if self._values.get(i) == value
            )

    def instances(self) -> Iterator[IID]:
        """Every instance in the object graph."""
        for extent in self._extents.values():
            yield from extent

    def instances_of_object(self, oid: int) -> frozenset[IID]:
        """All class instances representing the object ``oid``.

        Under dynamic inheritance one object has an instance per class it
        participates in; the shared OID ties them together (§3.3.1).
        """
        return frozenset(i for i in self.instances() if i.oid == oid)

    # ------------------------------------------------------------------
    # regular edges
    # ------------------------------------------------------------------

    def _adj(self, assoc: Association) -> dict[IID, set[IID]]:
        return self._adjacency.setdefault(assoc.key, {})

    def add_edge(self, assoc: Association, a: IID, b: IID) -> None:
        """Record that ``a`` and ``b`` are associated over ``assoc``.

        Endpoint classes must match the association's two end classes (in
        either order — edges are bi-directional).  Adding an existing edge
        is a silent no-op (edges form a set).
        """
        self.require_instance(a)
        self.require_instance(b)
        if not assoc.joins(a.cls, b.cls):
            raise InvalidEdgeError(
                f"edge ({a}, {b}) does not fit association {assoc}"
            )
        adjacency = self._adj(assoc)
        new_edge = b not in adjacency.get(a, ())
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
        if new_edge:
            self._edge_counts[assoc.key] = self._edge_counts.get(assoc.key, 0) + 1
            self.version += 1
            if self.metrics is not None:
                self._m_edges_created.inc(assoc=assoc.name)
                self._m_edges.inc()

    def remove_edge(self, assoc: Association, a: IID, b: IID) -> None:
        """Remove the regular edge between ``a`` and ``b`` (must exist)."""
        adjacency = self._adj(assoc)
        if b not in adjacency.get(a, ()):
            raise InvalidEdgeError(f"edge ({a}, {b}) not present in {assoc}")
        adjacency[a].discard(b)
        adjacency[b].discard(a)
        self._edge_counts[assoc.key] = self._edge_counts.get(assoc.key, 0) - 1
        self.version += 1
        if self.metrics is not None:
            self._m_edges.dec()

    def are_associated(self, assoc: Association, a: IID, b: IID) -> bool:
        """Whether the Inter-pattern ``(a b)`` is in ``[R]`` in 𝒜."""
        return b in self._adjacency.get(assoc.key, {}).get(a, ())

    def partners(self, assoc: Association, instance: IID) -> frozenset[IID]:
        """Instances associated with ``instance`` over ``assoc``."""
        return frozenset(self._adjacency.get(assoc.key, {}).get(instance, ()))

    def edges(self, assoc: Association) -> Iterator[tuple[IID, IID]]:
        """Every regular edge of ``assoc``, once each.

        Oriented left-class first; for a recursive association each edge
        is reported once, smaller endpoint first.
        """
        adjacency = self._adjacency.get(assoc.key, {})
        recursive = assoc.left == assoc.right
        for instance, partners in adjacency.items():
            if recursive:
                for partner in partners:
                    if instance <= partner:
                        yield (instance, partner)
            elif instance.cls == assoc.left:
                for partner in partners:
                    yield (instance, partner)

    def edge_count(self, assoc: Association) -> int:
        """Number of regular edges stored for ``assoc`` (O(1), maintained)."""
        return self._edge_counts.get(assoc.key, 0)

    # ------------------------------------------------------------------
    # complement edges (derived, Figure 4)
    # ------------------------------------------------------------------

    def complement_partners(self, assoc: Association, instance: IID) -> frozenset[IID]:
        """Instances of the opposite class NOT associated with ``instance``.

        This is the derived complement-edge view: the opposite extent minus
        the regular partners.  For a recursive association the instance
        itself is excluded — patterns are simple graphs, so a self-loop
        complement edge ``(~p p)`` does not exist.
        """
        other_cls = assoc.other(instance.cls)
        out = self.extent(other_cls) - self.partners(assoc, instance)
        if assoc.left == assoc.right:
            out -= {instance}
        return out

    def are_complement(self, assoc: Association, a: IID, b: IID) -> bool:
        """Whether the Complement-pattern ``(~a b)`` is in ``[R]`` in 𝒜."""
        self.require_instance(a)
        self.require_instance(b)
        if not assoc.joins(a.cls, b.cls):
            return False
        return not self.are_associated(assoc, a, b)

    def complement_edges(self, assoc: Association) -> Iterator[tuple[IID, IID]]:
        """Every derived complement edge, oriented left-class first.

        O(|extent(left)| × |extent(right)|) in the worst case — complement
        edges are inherently dense; callers that only need the partners of
        specific instances should prefer :meth:`complement_partners`.
        """
        for a in sorted(self.extent(assoc.left)):
            for b in sorted(self.complement_partners(assoc, a)):
                yield (a, b)

    # ------------------------------------------------------------------
    # statistics (cost model inputs)
    # ------------------------------------------------------------------

    def statistics(self) -> Mapping[str, Any]:
        """Summary statistics of the graph, keyed for the optimizer."""
        class_sizes = {cls: len(ext) for cls, ext in self._extents.items() if ext}
        assoc_stats: dict[str, dict[str, float]] = {}
        for key, adjacency in self._adjacency.items():
            assoc = self.schema.association(key)
            n_edges = self.edge_count(assoc)
            left_n = len(self._extents.get(assoc.left, ()))
            right_n = len(self._extents.get(assoc.right, ()))
            possible = left_n * right_n or 1
            assoc_stats[assoc.name] = {
                "edges": n_edges,
                "left_extent": left_n,
                "right_extent": right_n,
                "density": n_edges / possible,
            }
        return {"classes": class_sizes, "associations": assoc_stats}

    def validate(self) -> None:
        """Check referential integrity of extents, values and edges."""
        for cls, extent in self._extents.items():
            for instance in extent:
                if instance.cls != cls:
                    raise ObjectGraphError(
                        f"instance {instance} filed under extent {cls!r}"
                    )
        for key, adjacency in self._adjacency.items():
            assoc = self.schema.association(key)
            for instance, partners in adjacency.items():
                if not self.has_instance(instance):
                    raise ObjectGraphError(f"dangling adjacency entry {instance}")
                for partner in partners:
                    if not self.has_instance(partner):
                        raise ObjectGraphError(
                            f"edge ({instance}, {partner}) references a "
                            f"deleted instance"
                        )
                    if not assoc.joins(instance.cls, partner.cls):
                        raise ObjectGraphError(
                            f"edge ({instance}, {partner}) violates {assoc}"
                        )
                    if instance not in adjacency.get(partner, ()):
                        raise ObjectGraphError(
                            f"asymmetric edge ({instance}, {partner}) in {assoc}"
                        )

    def __str__(self) -> str:
        n_instances = sum(len(ext) for ext in self._extents.values())
        n_edges = sum(
            self.edge_count(self.schema.association(key)) for key in self._adjacency
        )
        return f"ObjectGraph({n_instances} instances, {n_edges} edges)"
