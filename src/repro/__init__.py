"""repro — the Association Algebra (A-algebra) for object-oriented databases.

A faithful, from-scratch reproduction of

    Guo, Su & Lam, "An Association Algebra For Processing Object-Oriented
    Databases", ICDE 1991.

Public API tour
---------------
* :mod:`repro.schema` / :mod:`repro.objects` — schema graphs and object
  graphs (the intensional and extensional database, §3.1);
* :mod:`repro.core` — patterns, association-sets, the nine operators, the
  expression DSL (``ref("TA") * ref("Grad")``) and the algebraic laws;
* :mod:`repro.engine` — the :class:`~repro.engine.database.Database`
  facade tying everything together (query entry point:
  :meth:`~repro.engine.database.Database.query`);
* :mod:`repro.exec` — the physical execution engine behind it: adjacency
  and value indexes, a memoizing sub-plan cache and a parallel branch
  scheduler;
* :mod:`repro.oql` — the textual OQL front-end compiled to the algebra;
* :mod:`repro.optimizer` — law-based rewriting and a cardinality cost
  model (§4, Figure 10);
* :mod:`repro.relational` — a from-scratch relational algebra baseline;
* :mod:`repro.datasets` / :mod:`repro.datagen` — the paper's figures as
  data, plus synthetic workload generators.

Quickstart::

    from repro import Database, ref
    from repro.datasets import university

    db = Database.from_dataset(university())
    q1 = (ref("TA") * ref("Grad") * ref("Student") * ref("Person")
          * ref("SS#")).project(["SS#"])
    numbers = db.query(q1).values("SS#")
"""

from repro.core import (
    IID,
    AssocSpec,
    AssociationSet,
    EvalTrace,
    Expr,
    OperatorKind,
    Pattern,
    Polarity,
    Relationship,
    complement,
    d_complement,
    d_inter,
    inter,
    ref,
)
from repro.engine.database import Database, QueryResult
from repro.errors import ReproError
from repro.objects import GraphBuilder, ObjectGraph
from repro.schema import SchemaGraph

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Database",
    "QueryResult",
    "SchemaGraph",
    "ObjectGraph",
    "GraphBuilder",
    "AssociationSet",
    "Pattern",
    "IID",
    "Polarity",
    "Relationship",
    "inter",
    "complement",
    "d_inter",
    "d_complement",
    "Expr",
    "AssocSpec",
    "EvalTrace",
    "OperatorKind",
    "ref",
    "ReproError",
]
