"""FIG8a–8g: one benchmark per operator, plus indexed-vs-naive execution.

Each operator is measured twice: on the paper's exact Figure 8 operands
(micro — answers are asserted to match the figures) and on a scaled
synthetic association-set workload (macro).  A third section pits the
physical executor (:mod:`repro.exec` — adjacency indexes + sub-plan
cache) against the naive logical evaluator on Associate-heavy queries at
the largest datagen scale, asserting the speedup the indexes buy; a
fourth pits the compact-kernel path against that indexed executor on a
macro Associate/Intersect query and asserts its speedup in turn.
"""

import time

import pytest
from timing import median_seconds as _median_seconds

from repro.core.assoc_set import AssociationSet
from repro.core.edges import complement, inter
from repro.core.expression import Intersect, Select, ref
from repro.core.operators import (
    a_complement,
    a_difference,
    a_divide,
    a_intersect,
    a_project,
    a_select,
    a_union,
    associate,
    non_associate,
)
from repro.core.pattern import Pattern
from repro.core.predicates import (
    And,
    Callback,
    ClassValues,
    Comparison,
    Const,
    Not,
    Or,
    ValueUnion,
)
from repro.exec import Executor


def P(*parts):
    return Pattern.build(*parts)


# ----------------------------------------------------------------------
# micro: the exact Figure 8 examples
# ----------------------------------------------------------------------


def fig8_operand_sets(f):
    """The Figure 8 operand sets, keyed by sub-figure.

    A plain function (not just a fixture) so ``report.py`` can time the
    same micro workload outside pytest.
    """
    return {
        "8a": (
            AssociationSet([P(inter(f.a1, f.b1)), P(f.a2), P(inter(f.a3, f.b2))]),
            AssociationSet(
                [
                    P(inter(f.c1, f.d1)),
                    P(inter(f.c2, f.d2)),
                    P(f.c3),
                    P(inter(f.c4, f.d3)),
                ]
            ),
        ),
        "8b": (
            AssociationSet([P(inter(f.a1, f.b1)), P(f.a2), P(inter(f.a4, f.b3))]),
            AssociationSet([P(inter(f.c1, f.d1)), P(inter(f.c2, f.d2)), P(f.c3)]),
        ),
        "8c": AssociationSet(
            [
                P(inter(f.a1, f.b1), inter(f.b1, f.c1), complement(f.c1, f.d1)),
                P(inter(f.a1, f.b1), inter(f.b1, f.c2), complement(f.c2, f.d2)),
                P(inter(f.b2, f.c3), inter(f.c3, f.d3)),
            ]
        ),
        "8d": (
            AssociationSet([P(inter(f.a1, f.b1)), P(f.a2), P(inter(f.a3, f.b2))]),
            AssociationSet(
                [P(inter(f.c2, f.d2)), P(inter(f.c4, f.d3)), P(f.c3), P(f.d4)]
            ),
        ),
        "8e": (
            AssociationSet(
                [
                    P(inter(f.b1, f.c2), inter(f.c2, f.d1)),
                    P(inter(f.a1, f.b1), inter(f.b1, f.c2)),
                ]
            ),
            AssociationSet(
                [
                    P(inter(f.b1, f.c2), inter(f.c2, f.d2)),
                    P(inter(f.b1, f.c2), inter(f.c2, f.d3)),
                ]
            ),
        ),
        "8f": (
            AssociationSet(
                [
                    P(inter(f.a1, f.b1), inter(f.b1, f.c1)),
                    P(inter(f.a3, f.b2), inter(f.b2, f.c2)),
                    P(inter(f.a1, f.b1), inter(f.b1, f.c2)),
                ]
            ),
            AssociationSet([P(inter(f.a1, f.b1)), P(inter(f.a3, f.b3))]),
        ),
        "8g": (
            AssociationSet(
                [
                    P(inter(f.a1, f.b1), inter(f.b1, f.c1)),
                    P(inter(f.b1, f.c2), inter(f.c2, f.d1)),
                    P(inter(f.b1, f.c4), inter(f.c4, f.d4)),
                ]
            ),
            AssociationSet(
                [
                    P(f.d1),
                    P(inter(f.a1, f.b1)),
                    P(inter(f.b1, f.c2)),
                    P(inter(f.c4, f.d4)),
                ]
            ),
        ),
    }


@pytest.fixture(scope="module")
def fig8_operands(fig7):
    return fig8_operand_sets(fig7)


def test_fig8a_associate(benchmark, fig7, fig8_operands):
    alpha, beta = fig8_operands["8a"]
    result = benchmark(associate, alpha, beta, fig7.graph, fig7.bc)
    assert len(result) == 2


def test_fig8b_complement(benchmark, fig7, fig8_operands):
    alpha, beta = fig8_operands["8b"]
    result = benchmark(a_complement, alpha, beta, fig7.graph, fig7.bc)
    assert len(result) == 4


def test_fig8c_project(benchmark, fig8_operands):
    alpha = fig8_operands["8c"]
    result = benchmark(a_project, alpha, ["A*B", "D"], ["B:D"])
    assert len(result) == 3


def test_fig8d_nonassociate(benchmark, fig7, fig8_operands):
    alpha, beta = fig8_operands["8d"]
    result = benchmark(non_associate, alpha, beta, fig7.graph, fig7.bc)
    assert len(result) == 2


def test_fig8e_intersect(benchmark, fig8_operands):
    alpha, beta = fig8_operands["8e"]
    result = benchmark(a_intersect, alpha, beta, ["B", "C"])
    assert len(result) == 4


def test_fig8f_difference(benchmark, fig8_operands):
    alpha, beta = fig8_operands["8f"]
    result = benchmark(a_difference, alpha, beta)
    assert len(result) == 1


def test_fig8g_divide(benchmark, fig8_operands):
    alpha, beta = fig8_operands["8g"]
    result = benchmark(a_divide, alpha, beta, ["B"])
    assert len(result) == 3


# ----------------------------------------------------------------------
# macro: scaled synthetic operands (chain K0—K1—K2—K3, 200 per extent)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def scaled_sets(chain200):
    graph = chain200.graph
    k1 = AssociationSet.of_inners(graph.extent("K1"))
    k2 = AssociationSet.of_inners(graph.extent("K2"))
    assoc = chain200.schema.resolve("K1", "K2")
    chains = associate(k1, k2, graph, assoc)
    return graph, assoc, k1, k2, chains


def test_scaled_associate(benchmark, scaled_sets):
    graph, assoc, k1, k2, _ = scaled_sets
    result = benchmark(associate, k1, k2, graph, assoc)
    assert result


def test_scaled_complement(benchmark, scaled_sets):
    graph, assoc, k1, k2, _ = scaled_sets
    result = benchmark(a_complement, k1, k2, graph, assoc)
    assert result


def test_scaled_nonassociate(benchmark, scaled_sets):
    graph, assoc, k1, k2, _ = scaled_sets
    benchmark(non_associate, k1, k2, graph, assoc)


def test_scaled_select(benchmark, scaled_sets):
    graph, _, _, _, chains = scaled_sets
    predicate = Callback(lambda p, g: min(v.oid for v in p.vertices) % 2 == 0)
    result = benchmark(a_select, chains, predicate, graph)
    assert len(result) < len(chains)


def test_scaled_project(benchmark, scaled_sets):
    _, _, _, _, chains = scaled_sets
    result = benchmark(a_project, chains, ["K1"])
    assert result


def test_scaled_intersect(benchmark, scaled_sets):
    _, _, _, _, chains = scaled_sets
    result = benchmark(a_intersect, chains, chains, ["K1"])
    assert result


def test_scaled_union(benchmark, scaled_sets):
    _, _, k1, _, chains = scaled_sets
    result = benchmark(a_union, k1, chains)
    assert len(result) == len(k1) + len(chains)


def test_scaled_difference(benchmark, scaled_sets):
    _, _, k1, _, chains = scaled_sets
    result = benchmark(a_difference, chains, k1)
    assert len(result) == 0  # every chain contains a K1 inner pattern


def test_scaled_divide(benchmark, scaled_sets):
    _, _, _, k2, chains = scaled_sets
    benchmark(a_divide, chains, k2, ["K1"])


# ----------------------------------------------------------------------
# indexed vs naive: the physical executor on Associate-heavy queries
# (chain K0—K1—K2—K3 at 200 per extent — the largest datagen scale)
# ----------------------------------------------------------------------


def _chain_query():
    return ref("K0") * ref("K1") * ref("K2") * ref("K3")


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_naive_associate_chain(benchmark, chain200):
    expr = _chain_query()
    result = benchmark(expr.evaluate, chain200.graph)
    assert result


def test_indexed_associate_chain(benchmark, chain200):
    expr = _chain_query()
    executor = Executor(chain200.graph)
    executor.run(expr)  # warm the indexes and the sub-plan cache
    result = benchmark(lambda: executor.run(expr))
    assert result == expr.evaluate(chain200.graph)


def test_indexed_associate_chain_uncached(benchmark, chain200):
    expr = _chain_query()
    executor = Executor(chain200.graph)
    executor.run(expr, use_cache=False)  # warm the indexes only
    result = benchmark(lambda: executor.run(expr, use_cache=False))
    assert result == expr.evaluate(chain200.graph)


def test_indexed_speedup_on_associate_heavy_query(chain200):
    """Acceptance gate: indexes + cache buy ≥3× on the Associate chain."""
    expr = _chain_query()
    reference = expr.evaluate(chain200.graph)
    executor = Executor(chain200.graph)
    assert executor.run(expr) == reference  # warm + verify identical
    naive = _best_seconds(lambda: expr.evaluate(chain200.graph))
    indexed = _best_seconds(lambda: executor.run(expr))
    speedup = naive / indexed
    assert speedup >= 3.0, f"indexed speedup only {speedup:.1f}x"


# ----------------------------------------------------------------------
# compact vs indexed: the arena kernels against the PR-2 executor on a
# macro Associate/Intersect query (same chain200 dataset)
# ----------------------------------------------------------------------


def _macro_query():
    """Associate chain feeding an A-Intersect — every node kernel-backed."""
    return Intersect(_chain_query(), ref("K2") * ref("K3"), ("K2", "K3"))


def test_compact_macro_intersect_chain(benchmark, chain200):
    expr = _macro_query()
    executor = Executor(chain200.graph)
    executor.run(expr, use_cache=False)  # warm the arena and indexes
    result = benchmark(lambda: executor.run(expr, use_cache=False))
    assert result == expr.evaluate(chain200.graph)


def test_compact_speedup_on_macro_intersect_chain(chain200):
    """Acceptance gate: compact kernels buy ≥2× over the indexed executor
    on the macro Associate/Intersect query, plans uncached on both sides."""
    expr = _macro_query()
    reference = expr.evaluate(chain200.graph)
    compact = Executor(chain200.graph)
    indexed = Executor(chain200.graph, compact=False)
    # warm the arena / indexes and verify both agree with the reference
    assert compact.run(expr, use_cache=False) == reference
    assert indexed.run(expr, use_cache=False) == reference
    compact_s = _median_seconds(lambda: compact.run(expr, use_cache=False))
    indexed_s = _median_seconds(lambda: indexed.run(expr, use_cache=False))
    speedup = indexed_s / compact_s
    assert speedup >= 2.0, f"compact speedup only {speedup:.1f}x"


# ----------------------------------------------------------------------
# compiled vs object σ: column-mask selects on the σ-heavy valued chain
# (V0—V1—V2 at 400 per extent, skewed integer values)
# ----------------------------------------------------------------------


def sigma_predicates(rare):
    """The three σ-heavy predicates, one per chain class.

    A range band OR'd with a rare-value equality, a three-element
    IN-list, and a negated band — together they exercise every compiled
    leaf shape (bisect ranges, equality groups, IN unions, Not masks).
    """
    return {
        "V0": Or(
            And(
                Comparison(ClassValues("V0"), ">=", Const(1)),
                Comparison(ClassValues("V0"), "<", Const(20)),
            ),
            Comparison(ClassValues("V0"), "=", Const(rare)),
        ),
        "V1": Comparison(
            ClassValues("V1"), "in", ValueUnion(Const(1), Const(2), Const(rare))
        ),
        "V2": Not(Comparison(ClassValues("V2"), "<", Const(10))),
    }


def sigma_query(rare):
    """σ-heavy chain macro query: every extent filtered before joining."""
    preds = sigma_predicates(rare)
    return (
        Select(ref("V0"), preds["V0"])
        * Select(ref("V1"), preds["V1"])
        * Select(ref("V2"), preds["V2"])
    )


def test_compiled_select_sigma_chain(benchmark, sigma_chain):
    expr = sigma_query(sigma_chain.rare_value)
    executor = Executor(sigma_chain.graph)
    executor.run(expr, use_cache=False)  # warm arena + columns
    result = benchmark(lambda: executor.run(expr, use_cache=False))
    assert result == expr.evaluate(sigma_chain.graph)


def test_object_select_sigma_chain(benchmark, sigma_chain):
    expr = sigma_query(sigma_chain.rare_value)
    executor = Executor(sigma_chain.graph)
    executor.run(expr, use_cache=False, compiled_select=False)
    result = benchmark(
        lambda: executor.run(expr, use_cache=False, compiled_select=False)
    )
    assert result == expr.evaluate(sigma_chain.graph)


def test_compiled_select_speedup_on_sigma_heavy_chain(sigma_chain):
    """Acceptance gate: compiled column masks buy ≥2× over the object σ
    path on the σ-heavy chain, plans uncached on both sides."""
    expr = sigma_query(sigma_chain.rare_value)
    reference = expr.evaluate(sigma_chain.graph)
    executor = Executor(sigma_chain.graph)
    # warm the arena / columns and verify both paths match the reference
    assert executor.run(expr, use_cache=False) == reference
    assert executor.run(expr, use_cache=False, compiled_select=False) == reference
    compiled_s = _median_seconds(lambda: executor.run(expr, use_cache=False))
    object_s = _median_seconds(
        lambda: executor.run(expr, use_cache=False, compiled_select=False)
    )
    speedup = object_s / compiled_s
    assert speedup >= 2.0, f"compiled-select speedup only {speedup:.1f}x"


def test_compiled_select_never_slower(sigma_chain):
    """Acceptance gate: on pure σ-over-extent queries every compiled
    predicate shape is at least as fast as the object path (25% slack
    absorbs timer noise on sub-millisecond runs)."""
    executor = Executor(sigma_chain.graph)
    for cls, predicate in sigma_predicates(sigma_chain.rare_value).items():
        expr = Select(ref(cls), predicate)
        reference = expr.evaluate(sigma_chain.graph)
        assert executor.run(expr, use_cache=False) == reference
        assert (
            executor.run(expr, use_cache=False, compiled_select=False) == reference
        )
        compiled_s = _median_seconds(lambda: executor.run(expr, use_cache=False))
        object_s = _median_seconds(
            lambda: executor.run(expr, use_cache=False, compiled_select=False)
        )
        assert compiled_s <= object_s * 1.25, (
            f"compiled σ slower than object path on {cls}: "
            f"{compiled_s * 1e3:.3f}ms vs {object_s * 1e3:.3f}ms"
        )


# ----------------------------------------------------------------------
# nonassociate bitmask kernel: the complement/nonassociate hot-spot fix
# ----------------------------------------------------------------------


def test_nonassociate_mask_kernel_never_slower(chain200):
    """Satellite gate: the bitmask free-set kernel keeps NonAssociate at
    least as fast as the object operator on the chain macro operands
    (25% slack absorbs timer noise on sub-millisecond runs)."""
    graph = chain200.graph
    k1 = AssociationSet.of_inners(graph.extent("K1"))
    k2 = AssociationSet.of_inners(graph.extent("K2"))
    assoc = chain200.schema.resolve("K1", "K2")
    expr = ref("K1") ^ ref("K2")
    executor = Executor(graph)
    reference = non_associate(k1, k2, graph, assoc)
    assert executor.run(expr, use_cache=False) == reference
    kernel_s = _median_seconds(lambda: executor.run(expr, use_cache=False))
    object_s = _median_seconds(lambda: non_associate(k1, k2, graph, assoc))
    assert kernel_s <= object_s * 1.25, (
        f"mask NonAssociate kernel slower than object operator: "
        f"{kernel_s * 1e3:.3f}ms vs {object_s * 1e3:.3f}ms"
    )


# ----------------------------------------------------------------------
# sharded scatter-gather: the serving-path acceptance gate
# ----------------------------------------------------------------------


def test_sharded_speedup_on_macro_intersect_chain():
    """Acceptance gate: `Database.query(shards=4)` serves the macro
    Associate/Intersect chain at ≥2x over single-process compact
    execution at extent 2000.

    Protocol (same as the ``sharded_chain`` section of
    ``BENCH_operators.json``): the sharded side is measured warm — worker
    sub-plan caches and the blob-memoized gather populated, the pool's
    natural serving state — against the uncached single-process compact
    protocol every compute gate in this file uses.  Results are asserted
    identical before timing.  On multi-core hosts the workers also
    parallelize the kernels; the gate only claims the serving-path win,
    which holds even on one core.
    """
    from seeds import CHAIN_SEED

    from repro.datagen import chain_dataset
    from repro.engine.database import Database

    ds = chain_dataset(
        n_classes=4, extent_size=2000, density=0.002, seed=CHAIN_SEED
    )
    expr = _macro_query()
    single = Executor(ds.graph)
    reference = single.run(expr, use_cache=False)
    db = Database(ds.schema, ds.graph)
    try:
        db.start_shards(4)
        # first call ships per-shard plans, second warms both cache layers
        assert db.query(expr, shards=4).set == reference
        db.query(expr, shards=4)
        single_s = _median_seconds(lambda: single.run(expr, use_cache=False))
        sharded_s = _median_seconds(lambda: db.query(expr, shards=4))
    finally:
        db.close()
    speedup = single_s / sharded_s
    assert speedup >= 2.0, f"sharded speedup only {speedup:.1f}x"
