"""Mixed-workload throughput: 50 random navigation queries end to end.

The closest thing to a "TPC" for this engine: a deterministic mix of
chains, unions, non-association hops and projections over the scaled
university database, evaluated back to back — plus the same mix through
the optimizer first (does planning pay for itself on small queries?).
"""

import pytest

from repro.datagen.workloads import workload
from repro.optimizer import Optimizer


@pytest.fixture(scope="module")
def queries(scaled_db):
    return workload(scaled_db.schema, n_queries=50, max_hops=4, seed=11)


def test_mixed_workload(benchmark, scaled_db, queries):
    def run_all():
        total = 0
        for query in queries:
            total += len(query.evaluate(scaled_db.graph))
        return total

    total = benchmark(run_all)
    assert total > 0


def test_mixed_workload_optimized(benchmark, scaled_db, queries):
    optimizer = Optimizer(scaled_db.graph, max_candidates=20)
    plans = [optimizer.optimize(query).expr for query in queries]

    def run_all():
        total = 0
        for plan in plans:
            total += len(plan.evaluate(scaled_db.graph))
        return total

    total = benchmark(run_all)
    reference = sum(len(q.evaluate(scaled_db.graph)) for q in queries)
    assert total == reference


def test_planning_amortization(benchmark, scaled_db, queries):
    optimizer = Optimizer(scaled_db.graph, max_candidates=20)

    def plan_all():
        return [optimizer.optimize(query) for query in queries]

    plans = benchmark(plan_all)
    assert len(plans) == len(queries)
